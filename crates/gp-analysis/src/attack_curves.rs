//! Offline dictionary-attack curves (Figures 7 and 8).
//!
//! For each scheme parameterization, every field-study password is enrolled
//! under the scheme and attacked with the human-seeded dictionary built from
//! the lab-study passwords of the same image (§5.1).  The reported quantity
//! is the percentage of field passwords cracked, per image — the y-axis of
//! Figures 7 and 8; the x-axis is the grid-square size (Figure 7) or the
//! guaranteed tolerance `r` (Figure 8).

use crate::false_rates::ComparisonMode;
use gp_attacks::{parallel::evaluate_population_parallel, ClickPointPool, OfflineKnownGridAttack};
use gp_geometry::{ImageDims, Point};
use gp_passwords::{DiscretizationConfig, GraphicalPasswordSystem, PasswordPolicy, StoredPassword};
use gp_study::Dataset;
use serde::{Deserialize, Serialize};

/// Which discretization scheme a curve point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CurveScheme {
    /// Centered Discretization.
    Centered,
    /// Robust Discretization.
    Robust,
}

impl CurveScheme {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CurveScheme::Centered => "centered",
            CurveScheme::Robust => "robust",
        }
    }
}

/// One point of Figure 7 / Figure 8: a scheme, an image, a parameter value
/// and the resulting crack percentage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCurvePoint {
    /// Scheme the passwords were enrolled under.
    pub scheme: CurveScheme,
    /// Image the passwords belong to ("cars" / "pool").
    pub image: String,
    /// Parameter label (grid size for Figure 7, r for Figure 8).
    pub parameter: String,
    /// Grid-square size used by the scheme at this point (pixels).
    pub grid_size: f64,
    /// Guaranteed tolerance of the scheme at this point (pixels).
    pub guaranteed_r: f64,
    /// Number of target passwords evaluated.
    pub targets: usize,
    /// Number of targets cracked by the dictionary.
    pub cracked: usize,
    /// Percentage of targets cracked.
    pub percent_cracked: f64,
}

fn config_for(mode: &ComparisonMode, scheme: CurveScheme) -> DiscretizationConfig {
    match (mode, scheme) {
        (ComparisonMode::EqualGridSize { size }, CurveScheme::Centered) => {
            // Centered with grid squares of the given size: r = (size-1)/2
            // whole pixels (odd sizes) — expressed via the pixel-tolerance
            // constructor to keep the +0.5 convention.
            DiscretizationConfig::Centered {
                tolerance_px: ((size - 1.0) / 2.0).round() as u32,
            }
        }
        (ComparisonMode::EqualGridSize { size }, CurveScheme::Robust) => {
            DiscretizationConfig::Robust {
                r: size / 6.0,
                policy: gp_discretization::GridSelectionPolicy::MostCentered,
            }
        }
        (ComparisonMode::EqualR { r }, CurveScheme::Centered) => {
            DiscretizationConfig::Centered { tolerance_px: *r }
        }
        (ComparisonMode::EqualR { r }, CurveScheme::Robust) => DiscretizationConfig::Robust {
            r: *r as f64,
            policy: gp_discretization::GridSelectionPolicy::MostCentered,
        },
    }
}

/// Evaluate one curve point: enroll every field password of `image` under
/// the scheme and attack it with the lab-seeded dictionary for that image.
pub fn curve_point(
    field: &Dataset,
    lab: &Dataset,
    image: &str,
    image_dims: ImageDims,
    mode: &ComparisonMode,
    scheme: CurveScheme,
    threads: usize,
) -> AttackCurvePoint {
    let config = config_for(mode, scheme);
    // One hash iteration: enrollment hashing is not what the experiment
    // measures, and the attack evaluation itself is hash-free (matching).
    let system = GraphicalPasswordSystem::new(PasswordPolicy::new(image_dims, 5), config, 1);

    let pool = ClickPointPool::from_dataset(lab, image, 5);
    let attack = OfflineKnownGridAttack::new(pool);

    let targets: Vec<(StoredPassword, Vec<Point>)> = field
        .password_indices_for_image(image)
        .into_iter()
        .filter_map(|idx| {
            let record = &field.passwords[idx];
            let username = format!("{}-{}", record.image, idx);
            system
                .enroll(&username, &record.clicks)
                .ok()
                .map(|stored| (stored, record.clicks.clone()))
        })
        .collect();

    let summary = evaluate_population_parallel(&attack, &targets, threads);
    let built = config.build();
    AttackCurvePoint {
        scheme,
        image: image.to_string(),
        parameter: mode.label(),
        grid_size: built.grid_square_size(),
        guaranteed_r: built.guaranteed_tolerance(),
        targets: summary.targets,
        cracked: summary.cracked,
        percent_cracked: summary.percent_cracked(),
    }
}

fn curve(
    field: &Dataset,
    lab: &Dataset,
    image_dims: ImageDims,
    modes: &[ComparisonMode],
    threads: usize,
) -> Vec<AttackCurvePoint> {
    let mut points = Vec::new();
    for image in field.images() {
        for mode in modes {
            for scheme in [CurveScheme::Robust, CurveScheme::Centered] {
                points.push(curve_point(
                    field, lab, &image, image_dims, mode, scheme, threads,
                ));
            }
        }
    }
    points
}

/// Grid-square sizes swept by Figure 7.
pub const FIGURE7_GRID_SIZES: [f64; 3] = [9.0, 13.0, 19.0];

/// Tolerance values swept by Figure 8.
pub const FIGURE8_R_VALUES: [u32; 3] = [4, 6, 9];

/// Reproduce Figure 7: offline dictionary attack with known grid
/// identifiers, equal grid-square sizes for both schemes.
pub fn figure7(field: &Dataset, lab: &Dataset, threads: usize) -> Vec<AttackCurvePoint> {
    let modes: Vec<ComparisonMode> = FIGURE7_GRID_SIZES
        .iter()
        .map(|&size| ComparisonMode::EqualGridSize { size })
        .collect();
    curve(field, lab, ImageDims::STUDY, &modes, threads)
}

/// Reproduce Figure 8: offline dictionary attack with known grid
/// identifiers, equal guaranteed tolerance r for both schemes.
pub fn figure8(field: &Dataset, lab: &Dataset, threads: usize) -> Vec<AttackCurvePoint> {
    let modes: Vec<ComparisonMode> = FIGURE8_R_VALUES
        .iter()
        .map(|&r| ComparisonMode::EqualR { r })
        .collect();
    curve(field, lab, ImageDims::STUDY, &modes, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_study::{FieldStudyConfig, LabStudyConfig};

    fn datasets() -> (Dataset, Dataset) {
        (
            FieldStudyConfig::test_scale().generate(),
            LabStudyConfig::paper_scale().generate(),
        )
    }

    #[test]
    fn figure7_produces_a_point_per_image_scheme_and_size() {
        let (field, lab) = datasets();
        let points = figure7(&field, &lab, 2);
        // 2 images × 3 sizes × 2 schemes.
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.targets > 0);
            assert!(p.percent_cracked >= 0.0 && p.percent_cracked <= 100.0);
        }
    }

    #[test]
    fn figure7_equal_grid_sizes_give_similar_crack_rates() {
        // §5.1: "As expected, they performed similarly under this condition
        // since having grid-squares of similar size means that roughly the
        // same number of guesses would be accepted as correct."
        let (field, lab) = datasets();
        let points = figure7(&field, &lab, 2);
        for size in FIGURE7_GRID_SIZES {
            for image in field.images() {
                let find = |scheme: CurveScheme| {
                    points
                        .iter()
                        .find(|p| {
                            p.scheme == scheme
                                && p.image == image
                                && (p.grid_size - size).abs() < 0.6
                        })
                        .unwrap()
                        .percent_cracked
                };
                let robust = find(CurveScheme::Robust);
                let centered = find(CurveScheme::Centered);
                assert!(
                    (robust - centered).abs() <= 25.0,
                    "equal-size crack rates should be in the same ballpark: \
                     {image} {size}: robust {robust:.1}% vs centered {centered:.1}%"
                );
            }
        }
    }

    #[test]
    fn figure8_robust_is_cracked_substantially_more_than_centered() {
        // The paper's headline security result (r = 6: 45.1% vs 14.8% on
        // Cars; r = 9: up to 79% vs 26%).
        let (field, lab) = datasets();
        let points = figure8(&field, &lab, 2);
        for image in field.images() {
            for r in [6u32, 9] {
                let find = |scheme: CurveScheme| {
                    points
                        .iter()
                        .find(|p| {
                            p.scheme == scheme
                                && p.image == image
                                && p.parameter == format!("r={r}")
                        })
                        .unwrap()
                        .percent_cracked
                };
                let robust = find(CurveScheme::Robust);
                let centered = find(CurveScheme::Centered);
                assert!(
                    robust > centered,
                    "{image} r={r}: robust ({robust:.1}%) must be cracked more than centered ({centered:.1}%)"
                );
            }
            // And the gap at r = 9 should be large in absolute terms.
            let robust9 = points
                .iter()
                .find(|p| {
                    p.scheme == CurveScheme::Robust && p.image == image && p.parameter == "r=9"
                })
                .unwrap()
                .percent_cracked;
            let centered9 = points
                .iter()
                .find(|p| {
                    p.scheme == CurveScheme::Centered && p.image == image && p.parameter == "r=9"
                })
                .unwrap()
                .percent_cracked;
            assert!(
                robust9 >= centered9 + 10.0,
                "{image} r=9: expected a substantial gap, got robust {robust9:.1}% vs centered {centered9:.1}%"
            );
        }
    }

    #[test]
    fn crack_rate_grows_with_tolerance_for_both_schemes() {
        let (field, lab) = datasets();
        let points = figure8(&field, &lab, 2);
        for scheme in [CurveScheme::Robust, CurveScheme::Centered] {
            for image in field.images() {
                let rate = |r: u32| {
                    points
                        .iter()
                        .find(|p| {
                            p.scheme == scheme
                                && p.image == image
                                && p.parameter == format!("r={r}")
                        })
                        .unwrap()
                        .percent_cracked
                };
                assert!(
                    rate(9) >= rate(4),
                    "{image} {:?}: larger tolerance must not reduce crack rate",
                    scheme
                );
            }
        }
    }

    #[test]
    fn config_for_matches_mode_parameters() {
        let c = config_for(
            &ComparisonMode::EqualGridSize { size: 13.0 },
            CurveScheme::Centered,
        );
        assert_eq!(c.grid_square_size(), 13.0);
        let r = config_for(
            &ComparisonMode::EqualGridSize { size: 13.0 },
            CurveScheme::Robust,
        );
        assert!((r.guaranteed_tolerance() - 13.0 / 6.0).abs() < 1e-9);
        let c = config_for(&ComparisonMode::EqualR { r: 9 }, CurveScheme::Centered);
        assert_eq!(c.guaranteed_tolerance(), 9.5);
        let r = config_for(&ComparisonMode::EqualR { r: 9 }, CurveScheme::Robust);
        assert_eq!(r.grid_square_size(), 54.0);
    }
}
