//! ASCII renderings of the tolerance-region geometry (Figures 1, 5 and 6).
//!
//! These are illustrative rather than quantitative: they draw, to scale on a
//! character grid, the worst-case Robust Discretization square around a
//! click-point next to the centered-tolerance square a user would expect,
//! making the false-accept / false-reject regions visible in a terminal.

use gp_discretization::{DiscretizationScheme, GridSelectionPolicy, RobustDiscretization};
use gp_geometry::{Point, Rect};

/// The worst-case geometry of Figure 1: a click-point exactly `r` from two
/// edges of its Robust grid square, with the centered-tolerance square of
/// half-width `3r` (same area as the Robust square) overlaid.
pub fn figure1_worst_case(r: f64) -> WorstCaseGeometry {
    assert!(r > 0.0, "tolerance must be positive");
    // Construct the canonical worst case directly: robust square [0, 6r)²,
    // click at (r, r).
    let robust_square = Rect::new(0.0, 0.0, 6.0 * r, 6.0 * r);
    let click = Point::new(r, r);
    let centered_square = Rect::centered_square(click, 3.0 * r);
    WorstCaseGeometry {
        r,
        click,
        robust_square,
        centered_square,
    }
}

/// The realized geometry for an arbitrary click-point under a real Robust
/// Discretization instance (used by Figures 5/6-style comparisons).
pub fn realized_geometry(r: f64, click: Point) -> WorstCaseGeometry {
    let robust = RobustDiscretization::with_policy(r, GridSelectionPolicy::MostCentered)
        .expect("positive tolerance");
    WorstCaseGeometry {
        r,
        click,
        robust_square: robust.acceptance_region(&click),
        centered_square: Rect::centered_square(click, robust.guaranteed_tolerance()),
    }
}

/// Geometry underlying the diagrams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseGeometry {
    /// Guaranteed tolerance.
    pub r: f64,
    /// The original click-point.
    pub click: Point,
    /// The Robust Discretization grid square that would be hashed.
    pub robust_square: Rect,
    /// The centered-tolerance square the user likely expects.
    pub centered_square: Rect,
}

impl WorstCaseGeometry {
    /// Area where false rejects occur: inside the centered square, outside
    /// the Robust square.
    pub fn false_reject_area(&self) -> f64 {
        self.centered_square.area() - self.centered_square.overlap_area(&self.robust_square)
    }

    /// Area where false accepts occur: inside the Robust square, outside
    /// the centered square.
    pub fn false_accept_area(&self) -> f64 {
        self.robust_square.area() - self.robust_square.overlap_area(&self.centered_square)
    }

    /// Render the two squares on a character canvas.
    ///
    /// Legend: `o` = original click-point, `#` = false-accept region (Robust
    /// only), `.` = false-reject region (centered only), `=` = accepted by
    /// both, space = accepted by neither.
    pub fn render(&self, columns: usize) -> String {
        let min_x = self.robust_square.x0.min(self.centered_square.x0);
        let max_x = self.robust_square.x1.max(self.centered_square.x1);
        let min_y = self.robust_square.y0.min(self.centered_square.y0);
        let max_y = self.robust_square.y1.max(self.centered_square.y1);
        let columns = columns.max(10);
        let rows = (columns as f64 * (max_y - min_y) / (max_x - min_x) / 2.0).ceil() as usize;
        let rows = rows.max(5);

        let mut out = String::new();
        for row in 0..rows {
            let y = min_y + (row as f64 + 0.5) * (max_y - min_y) / rows as f64;
            for col in 0..columns {
                let x = min_x + (col as f64 + 0.5) * (max_x - min_x) / columns as f64;
                let p = Point::new(x, y);
                let in_robust = self.robust_square.contains(&p);
                let in_centered = self.centered_square.contains(&p);
                let is_click = self.click.chebyshev(&p) <= (max_x - min_x) / columns as f64;
                let ch = if is_click {
                    'o'
                } else {
                    match (in_robust, in_centered) {
                        (true, true) => '=',
                        (true, false) => '#',
                        (false, true) => '.',
                        (false, false) => ' ',
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

/// A complete Figure-1-style diagram with legend, for terminal display.
pub fn figure1_diagram(r: f64, columns: usize) -> String {
    let geometry = figure1_worst_case(r);
    let robust = RobustDiscretization::new(r).expect("positive tolerance");
    format!(
        "Worst-case Robust Discretization vs centered tolerance (r = {r})\n\
         Robust square: {:.0}x{:.0}  guaranteed tolerance: {:.0}  max accepted distance: {:.0}\n\
         false-accept area: {:.0} px^2   false-reject area: {:.0} px^2\n\
         legend: o original click, = accepted by both, # false accept (Robust only), . false reject (centered only)\n\n{}",
        robust.grid_square_size(),
        robust.grid_square_size(),
        robust.guaranteed_tolerance(),
        robust.maximum_accepted_distance(),
        geometry.false_accept_area(),
        geometry.false_reject_area(),
        geometry.render(columns)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_areas_match_figure1_arithmetic() {
        // Robust square 6r x 6r = 36r²; overlap with the 6r x 6r centered
        // square shifted so the click is r from two edges is 4r x 4r = 16r²
        // per axis pair → false regions of 20r² each.
        let g = figure1_worst_case(1.0);
        assert!((g.false_accept_area() - 20.0).abs() < 1e-9);
        assert!((g.false_reject_area() - 20.0).abs() < 1e-9);
        let g6 = figure1_worst_case(6.0);
        assert!((g6.false_accept_area() - 20.0 * 36.0).abs() < 1e-6);
    }

    #[test]
    fn render_contains_all_region_markers() {
        let g = figure1_worst_case(6.0);
        let canvas = g.render(60);
        assert!(canvas.contains('#'), "false-accept region missing");
        assert!(canvas.contains('.'), "false-reject region missing");
        assert!(canvas.contains('='), "shared region missing");
        assert!(canvas.contains('o'), "click-point missing");
        // Rectangular canvas: all lines same length.
        let lines: Vec<&str> = canvas.lines().collect();
        assert!(lines.len() >= 5);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn realized_geometry_contains_the_click_in_both_squares() {
        let g = realized_geometry(6.0, Point::new(123.0, 217.0));
        assert!(g.robust_square.contains(&g.click));
        assert!(g.centered_square.contains(&g.click));
        // The centered square is centered on the click; the robust square
        // generally is not.
        assert_eq!(g.centered_square.center(), g.click);
    }

    #[test]
    fn figure1_diagram_mentions_key_parameters() {
        let text = figure1_diagram(6.0, 60);
        assert!(text.contains("36x36"));
        assert!(text.contains("max accepted distance: 30"));
        assert!(text.contains("legend"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tolerance_rejected() {
        figure1_worst_case(0.0);
    }
}
