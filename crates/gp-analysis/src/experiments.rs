//! Experiment registry: one entry per table/figure of the paper, with a
//! uniform "generate data → run → render report" interface used by the
//! examples and the benchmark harness.

use crate::attack_curves::{figure7, figure8, AttackCurvePoint, CurveScheme};
use crate::diagrams::figure1_diagram;
use crate::false_rates::{table1, table2, FalseRateRow};
use crate::information_revealed::identifier_information;
use crate::password_space_table::table3;
use crate::report::{bits, pct, TextTable};
use gp_study::{Dataset, FieldStudyConfig, LabStudyConfig};
use serde::{Deserialize, Serialize};

/// How much data to generate and how many threads to use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Field-study configuration (targets of the usability and attack
    /// analysis).
    pub field: FieldStudyConfig,
    /// Lab-study configuration (dictionary source).
    pub lab: LabStudyConfig,
    /// Worker threads for the attack evaluation.
    pub threads: usize,
}

impl ExperimentScale {
    /// The paper's dataset dimensions (191 participants / 481 passwords /
    /// 3339 logins, 30 lab passwords per image).
    pub fn paper() -> Self {
        Self {
            field: FieldStudyConfig::paper_scale(),
            lab: LabStudyConfig::paper_scale(),
            threads: 4,
        }
    }

    /// A reduced scale for quick runs and CI.
    pub fn quick() -> Self {
        Self {
            field: FieldStudyConfig::test_scale(),
            lab: LabStudyConfig::paper_scale(),
            threads: 2,
        }
    }

    /// Generate the field dataset.
    pub fn field_dataset(&self) -> Dataset {
        self.field.generate()
    }

    /// Generate the lab dataset.
    pub fn lab_dataset(&self) -> Dataset {
        self.lab.generate()
    }
}

/// The experiments of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// Table 1 — false accept/reject rates at equal grid-square size.
    Table1,
    /// Table 2 — false accept/reject rates at equal guaranteed tolerance.
    Table2,
    /// Table 3 — theoretical full password space.
    Table3,
    /// Figure 7 — offline dictionary attack, equal grid-square sizes.
    Figure7,
    /// Figure 8 — offline dictionary attack, equal guaranteed tolerance.
    Figure8,
    /// §5.2 — information revealed by the stored grid identifiers.
    InformationRevealed,
    /// Figure 1 — worst-case tolerance-region geometry (illustrative).
    Figure1,
}

impl Experiment {
    /// All experiments in paper order.
    pub fn all() -> [Experiment; 7] {
        [
            Experiment::Figure1,
            Experiment::Table1,
            Experiment::Table2,
            Experiment::Table3,
            Experiment::Figure7,
            Experiment::Figure8,
            Experiment::InformationRevealed,
        ]
    }

    /// Stable identifier (used for bench names and CSV files).
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Figure7 => "figure7",
            Experiment::Figure8 => "figure8",
            Experiment::InformationRevealed => "information_revealed",
            Experiment::Figure1 => "figure1",
        }
    }

    /// One-line description shown in reports.
    pub fn description(&self) -> &'static str {
        match self {
            Experiment::Table1 => {
                "False accept/reject rates for Robust Discretization, equal grid-square sizes"
            }
            Experiment::Table2 => {
                "False accept/reject rates for Robust Discretization, equal guaranteed tolerance r"
            }
            Experiment::Table3 => "Bitsize of the theoretical full password space (5 clicks)",
            Experiment::Figure7 => {
                "Offline dictionary attack with known grid identifiers, equal grid-square sizes"
            }
            Experiment::Figure8 => {
                "Offline dictionary attack with known grid identifiers, equal r values"
            }
            Experiment::InformationRevealed => {
                "Bits of clear-text information revealed by stored grid identifiers"
            }
            Experiment::Figure1 => "Worst-case tolerance-region geometry (illustrative diagram)",
        }
    }

    /// Run the experiment and render its report.
    pub fn run(&self, scale: &ExperimentScale) -> String {
        match self {
            Experiment::Table1 => {
                let dataset = scale.field_dataset();
                render_false_rates("Table 1", "Grid Size", &table1(&dataset))
            }
            Experiment::Table2 => {
                let dataset = scale.field_dataset();
                render_false_rates("Table 2", "r", &table2(&dataset))
            }
            Experiment::Table3 => render_table3(),
            Experiment::Figure7 => {
                let field = scale.field_dataset();
                let lab = scale.lab_dataset();
                render_attack_curve("Figure 7", &figure7(&field, &lab, scale.threads))
            }
            Experiment::Figure8 => {
                let field = scale.field_dataset();
                let lab = scale.lab_dataset();
                render_attack_curve("Figure 8", &figure8(&field, &lab, scale.threads))
            }
            Experiment::InformationRevealed => render_information_revealed(),
            Experiment::Figure1 => figure1_diagram(6.0, 66),
        }
    }
}

fn render_false_rates(title: &str, key_column: &str, rows: &[FalseRateRow]) -> String {
    let mut table = TextTable::new(&[
        key_column,
        "Robust r",
        "Robust grid",
        "Centered grid",
        "Logins",
        "Robust false accept",
        "Robust false reject",
        "Centered false accept",
        "Centered false reject",
    ]);
    for row in rows {
        table.push_row(vec![
            row.label.clone(),
            format!("{:.2}", row.robust_r),
            format!("{:.0}x{:.0}", row.robust_grid_size, row.robust_grid_size),
            format!(
                "{:.0}x{:.0}",
                row.centered_grid_size, row.centered_grid_size
            ),
            row.logins.to_string(),
            pct(row.false_accept_pct),
            pct(row.false_reject_pct),
            pct(row.centered_false_accept_pct),
            pct(row.centered_false_reject_pct),
        ]);
    }
    format!("{title}: false accept and reject rates\n{}", table.render())
}

fn render_table3() -> String {
    let mut table = TextTable::new(&[
        "Image",
        "Grid Size",
        "Centered r",
        "Robust r",
        "Squares/Grid",
        "Pswd Space (bits)",
    ]);
    for row in table3() {
        table.push_row(vec![
            row.image.to_string(),
            format!("{:.0}x{:.0}", row.grid_size, row.grid_size),
            format!("{:.1}", row.centered_r),
            format!("{:.2}", row.robust_r),
            row.squares_per_grid.to_string(),
            bits(row.password_space_bits),
        ]);
    }
    format!(
        "Table 3: bitsize of full theoretical password space for 5-click passwords\n{}",
        table.render()
    )
}

fn render_attack_curve(title: &str, points: &[AttackCurvePoint]) -> String {
    let mut table = TextTable::new(&[
        "Image",
        "Parameter",
        "Scheme",
        "Grid",
        "Guaranteed r",
        "Targets",
        "Cracked",
        "% cracked",
    ]);
    for p in points {
        table.push_row(vec![
            p.image.clone(),
            p.parameter.clone(),
            p.scheme.label().to_string(),
            format!("{:.0}x{:.0}", p.grid_size, p.grid_size),
            format!("{:.1}", p.guaranteed_r),
            p.targets.to_string(),
            p.cracked.to_string(),
            pct(p.percent_cracked),
        ]);
    }
    format!(
        "{title}: offline dictionary attack with known grid identifiers\n{}",
        table.render()
    )
}

fn render_information_revealed() -> String {
    let rows = identifier_information(&[4, 6, 8, 9, 12]);
    let mut table = TextTable::new(&[
        "r",
        "Robust identifier bits",
        "Centered identifier bits",
        "Centered identifiers",
    ]);
    for row in rows {
        table.push_row(vec![
            row.r.to_string(),
            format!("{:.2}", row.robust_bits),
            format!("{:.2}", row.centered_bits),
            row.centered_identifiers.to_string(),
        ]);
    }
    format!(
        "Information revealed by clear-text grid identifiers (section 5.2)\n{}",
        table.render()
    )
}

/// Extract the robust-vs-centered crack percentages for one image and
/// parameter from a set of curve points (convenience for EXPERIMENTS.md and
/// tests).
pub fn crack_percentages(
    points: &[AttackCurvePoint],
    image: &str,
    parameter: &str,
) -> Option<(f64, f64)> {
    let robust = points
        .iter()
        .find(|p| p.scheme == CurveScheme::Robust && p.image == image && p.parameter == parameter)?
        .percent_cracked;
    let centered = points
        .iter()
        .find(|p| {
            p.scheme == CurveScheme::Centered && p.image == image && p.parameter == parameter
        })?
        .percent_cracked;
    Some((robust, centered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_has_id_and_description() {
        for e in Experiment::all() {
            assert!(!e.id().is_empty());
            assert!(!e.description().is_empty());
        }
        // Identifiers are unique.
        let ids: std::collections::BTreeSet<_> = Experiment::all().iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), Experiment::all().len());
    }

    #[test]
    fn table3_and_information_reports_render_without_data() {
        let scale = ExperimentScale::quick();
        let t3 = Experiment::Table3.run(&scale);
        assert!(t3.contains("451x331"));
        assert!(t3.contains("640x480"));
        assert!(t3.contains("54.4"));
        let info = Experiment::InformationRevealed.run(&scale);
        assert!(info.contains("Robust identifier bits"));
        let fig1 = Experiment::Figure1.run(&scale);
        assert!(fig1.contains("legend"));
    }

    #[test]
    fn table1_and_table2_reports_render_at_quick_scale() {
        let scale = ExperimentScale::quick();
        let t1 = Experiment::Table1.run(&scale);
        assert!(t1.contains("Table 1"));
        assert!(t1.contains("9x9"));
        assert!(t1.contains("19x19"));
        let t2 = Experiment::Table2.run(&scale);
        assert!(t2.contains("r=4"));
        assert!(t2.contains("54x54"));
    }

    #[test]
    fn figure8_report_renders_and_exposes_percentages() {
        let scale = ExperimentScale::quick();
        let field = scale.field_dataset();
        let lab = scale.lab_dataset();
        let points = figure8(&field, &lab, scale.threads);
        let (robust, centered) = crack_percentages(&points, "cars", "r=9").unwrap();
        assert!(robust >= centered);
        let rendered = render_attack_curve("Figure 8", &points);
        assert!(rendered.contains("% cracked"));
        assert!(rendered.contains("cars"));
        assert!(rendered.contains("pool"));
    }
}
