//! False-accept / false-reject analysis (Tables 1 and 2).
//!
//! Definitions (§2.2.1 and §4.1 of the paper), relative to the
//! *centered-tolerance* square the user most plausibly expects:
//!
//! * **False reject** — a login attempt that lies within the centered
//!   tolerance of every original click-point but is nevertheless rejected
//!   by Robust Discretization (some click fell outside its off-center grid
//!   square).
//! * **False accept** — a login attempt accepted by Robust Discretization
//!   although some click lies outside the centered tolerance.
//!
//! Centered Discretization has zero of both *by construction*; the analysis
//! verifies that and quantifies Robust's rates under the two comparison
//! regimes the paper uses:
//!
//! * **Equal grid-square size** (Table 1): both schemes use squares of the
//!   same side, so Robust's guaranteed `r` shrinks to `size/6`.
//! * **Equal `r`** (Table 2): both schemes guarantee the same minimum
//!   tolerance, so Robust's squares balloon to `6r` and false rejects
//!   disappear while false accepts grow.

use gp_discretization::prelude::*;
use gp_geometry::Point;
use gp_study::Dataset;
use serde::{Deserialize, Serialize};

/// Which quantity is held equal between the two schemes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComparisonMode {
    /// Both schemes use grid squares of this side length (pixels).
    EqualGridSize {
        /// Square side length in pixels.
        size: f64,
    },
    /// Both schemes guarantee this minimum tolerance (whole pixels).
    EqualR {
        /// Guaranteed tolerance in whole pixels.
        r: u32,
    },
}

impl ComparisonMode {
    /// The centered-tolerance half-width used as the reference region.
    pub fn reference_tolerance(&self) -> f64 {
        match self {
            // A grid square of side `s` centers a tolerance of (s-1)/2 whole
            // pixels, i.e. s/2 in the continuous model.
            ComparisonMode::EqualGridSize { size } => size / 2.0,
            ComparisonMode::EqualR { r } => *r as f64 + 0.5,
        }
    }

    /// The Robust Discretization scheme under this comparison.
    pub fn robust(&self) -> RobustDiscretization {
        match self {
            ComparisonMode::EqualGridSize { size } => {
                RobustDiscretization::from_grid_square_size(*size).expect("positive size")
            }
            ComparisonMode::EqualR { r } => {
                RobustDiscretization::new(*r as f64).expect("positive tolerance")
            }
        }
    }

    /// The Centered Discretization scheme under this comparison.
    pub fn centered(&self) -> CenteredDiscretization {
        match self {
            ComparisonMode::EqualGridSize { size } => {
                CenteredDiscretization::from_grid_square_size(*size).expect("positive size")
            }
            ComparisonMode::EqualR { r } => CenteredDiscretization::from_pixel_tolerance(*r),
        }
    }

    /// Human-readable label for report rows.
    pub fn label(&self) -> String {
        match self {
            ComparisonMode::EqualGridSize { size } => format!("{size:.0}x{size:.0}"),
            ComparisonMode::EqualR { r } => format!("r={r}"),
        }
    }
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalseRateRow {
    /// Row label (grid size or r value).
    pub label: String,
    /// Grid-square size used by Robust Discretization (pixels).
    pub robust_grid_size: f64,
    /// Guaranteed tolerance of Robust Discretization (pixels).
    pub robust_r: f64,
    /// Grid-square size used by Centered Discretization (pixels).
    pub centered_grid_size: f64,
    /// Number of login attempts replayed.
    pub logins: usize,
    /// Percentage of login attempts falsely accepted by Robust.
    pub false_accept_pct: f64,
    /// Percentage of login attempts falsely rejected by Robust.
    pub false_reject_pct: f64,
    /// Percentage of login attempts falsely accepted by Centered (always 0;
    /// kept as an explicit column so the invariant is visible in reports).
    pub centered_false_accept_pct: f64,
    /// Percentage of login attempts falsely rejected by Centered (always 0).
    pub centered_false_reject_pct: f64,
}

/// Per-login classification against one comparison mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoginClassification {
    within_centered_tolerance: bool,
    accepted_by_robust: bool,
    accepted_by_centered: bool,
}

fn classify_login(
    mode: &ComparisonMode,
    original: &[Point],
    attempt: &[Point],
) -> LoginClassification {
    let tolerance = mode.reference_tolerance();
    let robust = mode.robust();
    let centered = mode.centered();
    let within_centered_tolerance = original
        .iter()
        .zip(attempt.iter())
        .all(|(o, a)| o.chebyshev(a) <= tolerance);
    let accepted_by_robust = original
        .iter()
        .zip(attempt.iter())
        .all(|(o, a)| robust.accepts(o, a));
    let accepted_by_centered = original
        .iter()
        .zip(attempt.iter())
        .all(|(o, a)| centered.accepts(o, a));
    LoginClassification {
        within_centered_tolerance,
        accepted_by_robust,
        accepted_by_centered,
    }
}

/// Replay every login attempt of the dataset under one comparison mode.
pub fn false_rates(dataset: &Dataset, mode: ComparisonMode) -> FalseRateRow {
    let mut logins = 0usize;
    let mut robust_false_accepts = 0usize;
    let mut robust_false_rejects = 0usize;
    let mut centered_false_accepts = 0usize;
    let mut centered_false_rejects = 0usize;

    for login in &dataset.logins {
        let original = &dataset.passwords[login.password_index].clicks;
        let c = classify_login(&mode, original, &login.clicks);
        logins += 1;
        if c.accepted_by_robust && !c.within_centered_tolerance {
            robust_false_accepts += 1;
        }
        if !c.accepted_by_robust && c.within_centered_tolerance {
            robust_false_rejects += 1;
        }
        if c.accepted_by_centered && !c.within_centered_tolerance {
            centered_false_accepts += 1;
        }
        if !c.accepted_by_centered && c.within_centered_tolerance {
            centered_false_rejects += 1;
        }
    }

    let pct = |count: usize| {
        if logins == 0 {
            0.0
        } else {
            100.0 * count as f64 / logins as f64
        }
    };
    let robust = mode.robust();
    let centered = mode.centered();
    FalseRateRow {
        label: mode.label(),
        robust_grid_size: robust.grid_square_size(),
        robust_r: robust.guaranteed_tolerance(),
        centered_grid_size: centered.grid_square_size(),
        logins,
        false_accept_pct: pct(robust_false_accepts),
        false_reject_pct: pct(robust_false_rejects),
        centered_false_accept_pct: pct(centered_false_accepts),
        centered_false_reject_pct: pct(centered_false_rejects),
    }
}

/// Grid-square sizes used by the paper's Table 1.
pub const TABLE1_GRID_SIZES: [f64; 3] = [9.0, 13.0, 19.0];

/// Tolerance values used by the paper's Table 2.
pub const TABLE2_R_VALUES: [u32; 3] = [4, 6, 9];

/// Reproduce Table 1: false accept/reject rates when both schemes use
/// grid squares of equal size (9×9, 13×13, 19×19).
pub fn table1(dataset: &Dataset) -> Vec<FalseRateRow> {
    TABLE1_GRID_SIZES
        .iter()
        .map(|&size| false_rates(dataset, ComparisonMode::EqualGridSize { size }))
        .collect()
}

/// Reproduce Table 2: false accept/reject rates when both schemes guarantee
/// the same minimum tolerance (r = 4, 6, 9).
pub fn table2(dataset: &Dataset) -> Vec<FalseRateRow> {
    TABLE2_R_VALUES
        .iter()
        .map(|&r| false_rates(dataset, ComparisonMode::EqualR { r }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_study::FieldStudyConfig;

    fn dataset() -> Dataset {
        FieldStudyConfig::test_scale().generate()
    }

    #[test]
    fn comparison_mode_parameters_match_paper_tables() {
        // Table 1: 9x9 squares ⇒ robust r = 1.50; 13x13 ⇒ 2.17; 19x19 ⇒ 3.17.
        let m = ComparisonMode::EqualGridSize { size: 9.0 };
        assert!((m.robust().guaranteed_tolerance() - 1.5).abs() < 1e-9);
        assert_eq!(m.centered().grid_square_size(), 9.0);
        // Table 2: r = 6 ⇒ robust squares 36x36, centered squares 13x13.
        let m = ComparisonMode::EqualR { r: 6 };
        assert_eq!(m.robust().grid_square_size(), 36.0);
        assert_eq!(m.centered().grid_square_size(), 13.0);
    }

    #[test]
    fn centered_has_zero_false_rates_in_equal_r_mode() {
        let data = dataset();
        for row in table2(&data) {
            assert_eq!(row.centered_false_accept_pct, 0.0, "{}", row.label);
            assert_eq!(row.centered_false_reject_pct, 0.0, "{}", row.label);
        }
    }

    #[test]
    fn robust_has_essentially_zero_false_rejects_in_equal_r_mode() {
        // Everything strictly within r is guaranteed accepted by Robust, so
        // false rejects all but vanish when r is held equal (Table 2's 0%
        // column).  A residual sliver remains possible on pixel data: a
        // click enrolled exactly r from its half-open square edge rejects a
        // login exactly r away in that direction.  That boundary case must
        // stay well under one percent of logins.
        let data = dataset();
        for row in table2(&data) {
            assert!(
                row.false_reject_pct < 1.0,
                "{}: false rejects should be (essentially) zero, got {:.2}%",
                row.label,
                row.false_reject_pct
            );
        }
    }

    #[test]
    fn robust_shows_false_accepts_in_equal_r_mode() {
        let data = dataset();
        let rows = table2(&data);
        // At r = 4 (24x24 robust squares) a noticeable share of imperfect
        // re-entries lands outside ±4 px yet inside the big square.
        assert!(
            rows[0].false_accept_pct > 1.0,
            "expected measurable false accepts at r=4, got {}",
            rows[0].false_accept_pct
        );
        // False accepts shrink as r grows (fewer logins fall outside the
        // centered tolerance at all).
        assert!(rows[0].false_accept_pct >= rows[2].false_accept_pct);
    }

    #[test]
    fn robust_shows_false_rejects_in_equal_grid_mode() {
        let data = dataset();
        let rows = table1(&data);
        // With equal (small) squares Robust's guaranteed r is tiny, so many
        // accurate re-entries are falsely rejected — the paper's headline
        // usability problem (21.1% at 13x13).
        assert!(
            rows[0].false_reject_pct > 5.0,
            "expected substantial false rejects at 9x9, got {}",
            rows[0].false_reject_pct
        );
        // The 19x19 rate is lower than the 9x9 rate (Table 1 shows 10.0%
        // versus 21.8%).
        assert!(rows[2].false_reject_pct < rows[0].false_reject_pct);
    }

    #[test]
    fn centered_false_rates_are_zero_in_equal_grid_mode_too() {
        let data = dataset();
        for row in table1(&data) {
            assert_eq!(row.centered_false_accept_pct, 0.0);
            assert_eq!(row.centered_false_reject_pct, 0.0);
        }
    }

    #[test]
    fn rows_report_dataset_size_and_labels() {
        let data = dataset();
        let rows = table1(&data);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "9x9");
        assert_eq!(rows[0].logins, data.login_count());
        let rows2 = table2(&data);
        assert_eq!(rows2[1].label, "r=6");
    }

    #[test]
    fn empty_dataset_yields_zero_rates() {
        let row = false_rates(&Dataset::new(), ComparisonMode::EqualR { r: 6 });
        assert_eq!(row.logins, 0);
        assert_eq!(row.false_accept_pct, 0.0);
        assert_eq!(row.false_reject_pct, 0.0);
    }

    #[test]
    fn a_false_accept_and_false_reject_can_be_constructed_by_hand() {
        use gp_study::{LoginRecord, PasswordRecord};
        // One password whose clicks sit at (6, 6).  Under equal r = 6 the
        // most-centered robust grid is grid 2, whose square spans
        // [-12, 24)² — so a login at (20, 20), 14 px away, is outside the
        // ±6.5 centered tolerance yet accepted by Robust (false accept).
        // Under equal grid size 9 the selected square is [0, 9)², so a
        // login at (10, 6), only 4 px away, is inside the ±4.5 centered
        // tolerance yet rejected by Robust (false reject).
        let original = Point::new(6.0, 6.0);
        let dataset = Dataset {
            passwords: vec![PasswordRecord {
                user_id: 0,
                image: "cars".into(),
                clicks: vec![original; 5],
            }],
            logins: vec![
                LoginRecord {
                    password_index: 0,
                    clicks: vec![Point::new(20.0, 20.0); 5], // 14 px away
                },
                LoginRecord {
                    password_index: 0,
                    clicks: vec![Point::new(10.0, 6.0); 5], // 4 px away
                },
            ],
        };
        let row = false_rates(&dataset, ComparisonMode::EqualR { r: 6 });
        assert!(row.false_accept_pct > 0.0);
        assert_eq!(row.false_reject_pct, 0.0);
        let row = false_rates(&dataset, ComparisonMode::EqualGridSize { size: 9.0 });
        assert!(row.false_reject_pct > 0.0);
    }
}
