//! Information revealed by the clear-text grid identifiers (§5.2).
//!
//! Robust Discretization stores one of three grid indices (2 bits); Centered
//! Discretization stores the per-axis offsets, `log2((2r)²)` bits.  The
//! paper argues this extra clear-text information does not enable better
//! attacks than those already analyzed, but quantifies it; this module
//! reproduces that quantification across a sweep of tolerances.

use gp_discretization::{identifier_bits, SchemeKind};
use serde::{Deserialize, Serialize};

/// One row of the information-revealed comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdentifierInfoRow {
    /// Guaranteed tolerance (whole pixels).
    pub r: u32,
    /// Bits of clear information stored per click by Robust Discretization.
    pub robust_bits: f64,
    /// Bits of clear information stored per click by Centered Discretization.
    pub centered_bits: f64,
    /// Number of distinct grid identifiers Centered can emit (`(2r+1)²` at
    /// whole-pixel granularity).
    pub centered_identifiers: u64,
}

/// Compute the comparison for a sweep of tolerance values.
pub fn identifier_information(r_values: &[u32]) -> Vec<IdentifierInfoRow> {
    r_values
        .iter()
        .map(|&r| {
            let real_r = r as f64 + 0.5;
            let side = (2.0 * real_r).round() as u64;
            IdentifierInfoRow {
                r,
                robust_bits: identifier_bits(SchemeKind::Robust, real_r),
                centered_bits: identifier_bits(SchemeKind::Centered, real_r),
                centered_identifiers: side * side,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_always_reveals_about_two_bits() {
        for row in identifier_information(&[4, 6, 8, 9, 12]) {
            assert!((row.robust_bits - 3f64.log2()).abs() < 1e-9);
            assert!(row.robust_bits < 2.0);
        }
    }

    #[test]
    fn centered_reveals_more_bits_as_r_grows() {
        let rows = identifier_information(&[4, 6, 9]);
        assert!(rows[0].centered_bits < rows[1].centered_bits);
        assert!(rows[1].centered_bits < rows[2].centered_bits);
        // Paper example: r = 8 ⇒ about 8 bits.
        let r8 = &identifier_information(&[8])[0];
        assert!((r8.centered_bits - (2.0 * 8.5f64).powi(2).log2()).abs() < 1e-9);
        assert!(r8.centered_bits > 7.5 && r8.centered_bits < 8.6);
    }

    #[test]
    fn centered_identifier_count_matches_grid_square_area() {
        // r = 9 ⇒ 19×19 = 361 identifiers, the §3.2 example.
        let row = &identifier_information(&[9])[0];
        assert_eq!(row.centered_identifiers, 361);
    }
}
