//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the synthetic study data.
//!
//! | Paper artifact | Module / entry point |
//! |---|---|
//! | Table 1 — false accept/reject rates, equal grid-square size | [`false_rates::table1`] |
//! | Table 2 — false accept/reject rates, equal `r` | [`false_rates::table2`] |
//! | Table 3 — theoretical password-space bits | [`password_space_table::table3`] |
//! | Figure 7 — offline dictionary attack, equal grid-square size | [`attack_curves::figure7`] |
//! | Figure 8 — offline dictionary attack, equal `r` | [`attack_curves::figure8`] |
//! | §5.2 — information revealed by stored grid identifiers | [`information_revealed`] |
//! | Figures 1/5/6 — tolerance-region geometry | [`diagrams`] |
//!
//! [`experiments::Experiment`] wraps all of the above behind a uniform
//! `run()` interface used by the examples and the bench harness, and
//! [`report`] renders rows as aligned text tables or CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_curves;
pub mod diagrams;
pub mod experiments;
pub mod false_rates;
pub mod information_revealed;
pub mod password_space_table;
pub mod report;

pub use attack_curves::{figure7, figure8, AttackCurvePoint};
pub use experiments::{crack_percentages, Experiment, ExperimentScale};
pub use false_rates::{table1, table2, ComparisonMode, FalseRateRow};
pub use information_revealed::{identifier_information, IdentifierInfoRow};
pub use password_space_table::{table3, PasswordSpaceRow};
