//! Theoretical password-space table (Table 3).

use gp_discretization::{PasswordSpace, SchemeKind};
use gp_geometry::ImageDims;
use serde::{Deserialize, Serialize};

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PasswordSpaceRow {
    /// Image dimensions this row refers to.
    pub image: ImageDims,
    /// Grid-square side length in pixels.
    pub grid_size: f64,
    /// Guaranteed tolerance under Centered Discretization for this grid size.
    pub centered_r: f64,
    /// Guaranteed tolerance under Robust Discretization for this grid size.
    pub robust_r: f64,
    /// Number of grid squares per grid on this image.
    pub squares_per_grid: u64,
    /// Theoretical full password space for 5-click passwords, in bits.
    pub password_space_bits: f64,
}

/// Grid sizes listed in Table 3.
pub const TABLE3_GRID_SIZES: [f64; 6] = [9.0, 13.0, 19.0, 24.0, 36.0, 54.0];

/// Image sizes listed in Table 3.
pub const TABLE3_IMAGES: [ImageDims; 2] = [ImageDims::STUDY, ImageDims::VGA];

/// Number of clicks per password used in Table 3.
pub const TABLE3_CLICKS: u32 = 5;

/// Reproduce Table 3: bitsize of the full theoretical password space for
/// 5-click passwords over both image sizes and all listed grid sizes.
pub fn table3() -> Vec<PasswordSpaceRow> {
    let mut rows = Vec::new();
    for image in TABLE3_IMAGES {
        for grid_size in TABLE3_GRID_SIZES {
            let space = PasswordSpace::new(image, grid_size, TABLE3_CLICKS);
            rows.push(PasswordSpaceRow {
                image,
                grid_size,
                centered_r: SchemeKind::Centered.r_for_grid_size(grid_size),
                robust_r: SchemeKind::Robust.r_for_grid_size(grid_size),
                squares_per_grid: space.squares_per_grid(),
                password_space_bits: space.bits(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(image: ImageDims, grid: f64) -> PasswordSpaceRow {
        table3()
            .into_iter()
            .find(|r| r.image == image && r.grid_size == grid)
            .expect("row exists")
    }

    #[test]
    fn has_twelve_rows() {
        assert_eq!(table3().len(), 12);
    }

    #[test]
    fn matches_paper_values_451x331() {
        let expectations = [
            (9.0, 4.0, 1.50, 1887, 54.4),
            (13.0, 6.0, 13.0 / 6.0, 910, 49.1),
            (19.0, 9.0, 19.0 / 6.0, 432, 43.8),
            (24.0, 11.5, 4.0, 266, 40.3),
            (36.0, 17.5, 6.0, 130, 35.1),
            (54.0, 26.5, 9.0, 63, 29.9),
        ];
        for (grid, c_r, r_r, squares, bits) in expectations {
            let row = row(ImageDims::STUDY, grid);
            assert_eq!(row.centered_r, c_r, "grid {grid}");
            assert!((row.robust_r - r_r).abs() < 0.01, "grid {grid}");
            assert_eq!(row.squares_per_grid, squares, "grid {grid}");
            assert!(
                ((row.password_space_bits * 10.0).round() / 10.0 - bits).abs() < 1e-9,
                "grid {grid}: {} vs {}",
                row.password_space_bits,
                bits
            );
        }
    }

    #[test]
    fn matches_paper_values_640x480() {
        let expectations = [
            (9.0, 3888, 59.6),
            (13.0, 1850, 54.3),
            (19.0, 884, 48.9),
            (24.0, 540, 45.4),
            (36.0, 252, 39.9),
            (54.0, 108, 33.8),
        ];
        for (grid, squares, bits) in expectations {
            let row = row(ImageDims::VGA, grid);
            assert_eq!(row.squares_per_grid, squares, "grid {grid}");
            assert!(
                ((row.password_space_bits * 10.0).round() / 10.0 - bits).abs() < 1e-9,
                "grid {grid}"
            );
        }
    }

    #[test]
    fn bits_shrink_as_grid_size_grows() {
        for image in TABLE3_IMAGES {
            let rows: Vec<_> = table3().into_iter().filter(|r| r.image == image).collect();
            for pair in rows.windows(2) {
                assert!(pair[0].password_space_bits > pair[1].password_space_bits);
            }
        }
    }
}
