//! Rendering of experiment results as aligned text tables and CSV.

/// A simple column-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.  The cell count must match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated; cells containing commas are quoted).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a floating-point percentage with one decimal, as the paper does.
pub fn pct(value: f64) -> String {
    format!("{value:.1}%")
}

/// Format a bit count with one decimal, as the paper does.
pub fn bits(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["Grid", "False Accept", "False Reject"]);
        t.push_row(vec!["9x9".into(), "3.5%".into(), "21.8%".into()]);
        t.push_row(vec!["13x13".into(), "1.7%".into(), "21.1%".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Grid"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "False Accept" starts at the same offset in header
        // and data rows.
        let col = lines[0].find("False Accept").unwrap();
        assert_eq!(&lines[2][col..col + 4], "3.5%");
        assert_eq!(&lines[3][col..col + 4], "1.7%");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(21.07), "21.1%");
        assert_eq!(bits(54.32), "54.3");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
