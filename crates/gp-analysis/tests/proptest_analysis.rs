//! Property-based tests for the analysis layer: the paper's qualitative
//! claims must hold for *any* synthetic population, not just the default
//! calibration.

use gp_analysis::{table1, table2, ComparisonMode};
use gp_discretization::DiscretizationScheme;
use gp_study::{ClickAccuracy, FieldStudyConfig, UserModel};
use proptest::prelude::*;

fn small_study(
    seed: u64,
    tight: f64,
    sloppy: f64,
    fraction: f64,
    affinity: f64,
) -> gp_study::Dataset {
    FieldStudyConfig {
        participants: 10,
        total_passwords: 20,
        total_logins: 120,
        user_model: UserModel {
            hotspot_affinity: affinity,
            min_separation: 10.0,
            accuracy: ClickAccuracy {
                tight_sigma: tight,
                sloppy_sigma: sloppy,
                sloppy_fraction: fraction,
            },
            clicks_per_password: 5,
        },
        seed,
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Centered Discretization records zero false accepts and rejects for
    /// every population, accuracy mixture and comparison mode.
    #[test]
    fn centered_false_rates_are_always_zero(
        seed in any::<u64>(),
        tight in 0.5..4.0f64,
        sloppy in 4.0..15.0f64,
        fraction in 0.0..0.5f64,
        affinity in 0.0..1.0f64,
    ) {
        let dataset = small_study(seed, tight, sloppy, fraction, affinity);
        for row in table1(&dataset).into_iter().chain(table2(&dataset)) {
            prop_assert_eq!(row.centered_false_accept_pct, 0.0);
            prop_assert_eq!(row.centered_false_reject_pct, 0.0);
        }
    }

    /// At equal r, Robust's false rejects stay (essentially) zero and all
    /// reported percentages are valid percentages, for any population.
    #[test]
    fn equal_r_false_rejects_stay_negligible(
        seed in any::<u64>(),
        tight in 0.5..4.0f64,
        sloppy in 4.0..15.0f64,
        fraction in 0.0..0.5f64,
    ) {
        let dataset = small_study(seed, tight, sloppy, fraction, 0.8);
        for row in table2(&dataset) {
            // Only the exact-boundary pixel case can produce a false reject
            // at equal r, so the rate stays a small residual regardless of
            // how sloppy the population is (false accepts, by contrast,
            // routinely reach tens of percent).
            prop_assert!(row.false_reject_pct <= 5.0,
                "{}: unexpected false-reject rate {:.2}%", row.label, row.false_reject_pct);
            prop_assert!((0.0..=100.0).contains(&row.false_accept_pct));
            prop_assert!((0.0..=100.0).contains(&row.false_reject_pct));
        }
    }

    /// The comparison-mode constructors keep the defining relationship
    /// between grid size and tolerance for arbitrary parameters.
    #[test]
    fn comparison_mode_parameter_relationships(size in 3.0..120.0f64, r in 1u32..40) {
        let equal_grid = ComparisonMode::EqualGridSize { size };
        prop_assert!((equal_grid.robust().grid_square_size() - size).abs() < 1e-9);
        prop_assert!((equal_grid.centered().grid_square_size() - size).abs() < 1e-9);

        let equal_r = ComparisonMode::EqualR { r };
        prop_assert!((equal_r.robust().grid_square_size() - 6.0 * r as f64).abs() < 1e-9);
        prop_assert!((equal_r.centered().grid_square_size() - (2.0 * r as f64 + 1.0)).abs() < 1e-9);
        // Robust's squares are always larger at equal r — the security cost.
        prop_assert!(equal_r.robust().grid_square_size() > equal_r.centered().grid_square_size());
    }
}
