//! Human-seeded attack dictionaries.
//!
//! §5.1: "We used the click-points collected in the lab study and generated
//! a dictionary containing all possible 5-click-point permutations as
//! entries.  Thirty lab passwords were used for each image, giving
//! dictionaries with ≈ 2³⁶ entries."  Thirty passwords × five clicks give a
//! pool of 150 points; the dictionary is every ordered arrangement of five
//! *distinct* pool points, so its size is `150·149·148·147·146 ≈ 6.9·10¹⁰`.
//!
//! Materializing 2³⁶ entries is neither possible nor necessary:
//! [`ClickPointPool`] stores only the pool and exposes
//!
//! * exact entry counting,
//! * lazy enumeration (for brute-force validation on reduced pools), and
//! * deterministic sampling (for online-attack simulations),
//!
//! while the offline attack in [`crate::offline`] answers "does any entry
//! crack this target?" by matching pool points against the target's grid
//! squares, which is exact and avoids enumeration entirely.

use gp_geometry::Point;
use gp_study::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// The pool of candidate click-points harvested from a source dataset, from
/// which dictionary entries (ordered k-permutations) are drawn.
#[derive(Debug, Clone, PartialEq)]
pub struct ClickPointPool {
    /// Candidate click-points (deduplicated exact coordinates, order
    /// preserved from harvesting).
    points: Vec<Point>,
    /// Number of click-points per dictionary entry (5 for PassPoints).
    clicks_per_entry: usize,
}

impl ClickPointPool {
    /// Build a pool from explicit points.
    pub fn new(points: Vec<Point>, clicks_per_entry: usize) -> Self {
        assert!(clicks_per_entry > 0, "entries need at least one click");
        // Dedup on the exact bit patterns of the coordinates: O(n) with a
        // hash set instead of the O(n²) scan-per-point this used to do,
        // which mattered once pools grew past the 150-point lab scale.
        // Bit-pattern equality matches `Point`'s derived `PartialEq` for
        // every coordinate the harvesters produce (no NaNs, and -0.0 vs
        // 0.0 does not occur in click data).
        let mut seen = std::collections::HashSet::with_capacity(points.len());
        let mut deduped: Vec<Point> = Vec::with_capacity(points.len());
        for p in points {
            if seen.insert((p.x.to_bits(), p.y.to_bits())) {
                deduped.push(p);
            }
        }
        Self {
            points: deduped,
            clicks_per_entry,
        }
    }

    /// Harvest every click-point of every password created on `image` in
    /// the source dataset (the paper's lab study).
    pub fn from_dataset(source: &Dataset, image: &str, clicks_per_entry: usize) -> Self {
        let points: Vec<Point> = source
            .password_indices_for_image(image)
            .into_iter()
            .flat_map(|i| source.passwords[i].clicks.iter().copied())
            .collect();
        Self::new(points, clicks_per_entry)
    }

    /// The candidate points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of candidate points in the pool.
    pub fn pool_size(&self) -> usize {
        self.points.len()
    }

    /// Clicks per dictionary entry.
    pub fn clicks_per_entry(&self) -> usize {
        self.clicks_per_entry
    }

    /// Exact number of dictionary entries: the number of ordered
    /// `clicks_per_entry`-permutations of the pool, `n·(n−1)·…`.
    pub fn entry_count(&self) -> u128 {
        let n = self.points.len() as u128;
        let k = self.clicks_per_entry as u128;
        if n < k {
            return 0;
        }
        let mut count: u128 = 1;
        for i in 0..k {
            count = count.saturating_mul(n - i);
        }
        count
    }

    /// Dictionary size in bits (`log2(entry_count)`), the figure the paper
    /// quotes ("a 36-bit dictionary").
    pub fn entry_bits(&self) -> f64 {
        let count = self.entry_count();
        if count == 0 {
            0.0
        } else {
            (count as f64).log2()
        }
    }

    /// Lazily enumerate every dictionary entry in lexicographic index
    /// order.  Only usable for small pools (the iterator is exact but the
    /// full paper-scale dictionary has ~7·10¹⁰ entries).
    pub fn enumerate(&self) -> PermutationIter<'_> {
        PermutationIter::new(&self.points, self.clicks_per_entry)
    }

    /// Draw `count` dictionary entries uniformly at random (with
    /// replacement across entries, without replacement within an entry),
    /// deterministically for a given RNG.
    pub fn sample_entries<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Vec<Point>> {
        let mut out = Vec::with_capacity(count);
        if self.points.len() < self.clicks_per_entry {
            return out;
        }
        for _ in 0..count {
            let mut entry: Vec<Point> = self
                .points
                .choose_multiple(rng, self.clicks_per_entry)
                .copied()
                .collect();
            entry.shuffle(rng);
            out.push(entry);
        }
        out
    }

    /// A reduced pool containing only the first `n` points — used to keep
    /// brute-force validation runs tractable.
    pub fn truncated(&self, n: usize) -> Self {
        Self {
            points: self.points.iter().take(n).copied().collect(),
            clicks_per_entry: self.clicks_per_entry,
        }
    }
}

/// Iterator over all ordered k-permutations of a point slice.
#[derive(Debug)]
pub struct PermutationIter<'a> {
    points: &'a [Point],
    k: usize,
    /// Current selection as indices into `points`; empty once exhausted.
    indices: Vec<usize>,
    /// Scratch: which indices are currently used.
    used: Vec<bool>,
    started: bool,
    done: bool,
}

impl<'a> PermutationIter<'a> {
    fn new(points: &'a [Point], k: usize) -> Self {
        let done = points.len() < k;
        Self {
            points,
            k,
            indices: Vec::with_capacity(k),
            used: vec![false; points.len()],
            started: false,
            done,
        }
    }

    /// Advance to the next permutation (simple backtracking over index
    /// vectors in lexicographic order).
    fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        if !self.started {
            self.started = true;
            // First permutation: indices 0, 1, …, k-1.
            for i in 0..self.k {
                self.indices.push(i);
                self.used[i] = true;
            }
            return true;
        }
        // Increment the last position to the next unused index, backtracking
        // when exhausted.
        loop {
            let Some(&last) = self.indices.last() else {
                self.done = true;
                return false;
            };
            self.used[last] = false;
            self.indices.pop();
            // Find the next unused index greater than `last`.
            let mut candidate = last + 1;
            while candidate < self.points.len() && self.used[candidate] {
                candidate += 1;
            }
            if candidate < self.points.len() {
                self.indices.push(candidate);
                self.used[candidate] = true;
                // Fill the remaining positions with the smallest unused indices.
                while self.indices.len() < self.k {
                    let next = (0..self.points.len())
                        .find(|&i| !self.used[i])
                        .expect("pool is at least k large");
                    self.indices.push(next);
                    self.used[next] = true;
                }
                return true;
            }
            // Otherwise keep backtracking; loop continues.
        }
    }
}

impl PermutationIter<'_> {
    /// Advance to the next entry, writing its points into the caller's
    /// buffer instead of allocating — the form the batched brute-force
    /// guess loop consumes.  Returns `false` once exhausted (leaving `out`
    /// cleared).
    pub fn next_into(&mut self, out: &mut Vec<Point>) -> bool {
        out.clear();
        if self.advance() {
            out.extend(self.indices.iter().map(|&i| self.points[i]));
            true
        } else {
            false
        }
    }
}

impl<'a> Iterator for PermutationIter<'a> {
    type Item = Vec<Point>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.advance() {
            Some(self.indices.iter().map(|&i| self.points[i]).collect())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_study::LabStudyConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::BTreeSet;

    fn small_pool(n: usize, k: usize) -> ClickPointPool {
        let points = (0..n).map(|i| Point::new(i as f64 * 10.0, 5.0)).collect();
        ClickPointPool::new(points, k)
    }

    #[test]
    fn entry_count_matches_permutation_formula() {
        assert_eq!(small_pool(5, 3).entry_count(), 60);
        assert_eq!(small_pool(4, 4).entry_count(), 24);
        assert_eq!(small_pool(3, 4).entry_count(), 0);
        assert_eq!(
            small_pool(150, 5).entry_count(),
            150 * 149 * 148 * 147 * 146
        );
    }

    #[test]
    fn paper_scale_dictionary_is_about_36_bits() {
        // 30 lab passwords × 5 clicks = 150 points (minus any exact-duplicate
        // coordinates), ~2^36 entries.
        let lab = LabStudyConfig::paper_scale().generate();
        for image in ["cars", "pool"] {
            let pool = ClickPointPool::from_dataset(&lab, image, 5);
            assert!(pool.pool_size() >= 140, "pool size {}", pool.pool_size());
            assert!(pool.pool_size() <= 150);
            let bits = pool.entry_bits();
            assert!(
                (35.0..37.0).contains(&bits),
                "{image} dictionary is {bits:.1} bits"
            );
        }
    }

    #[test]
    fn enumeration_yields_exactly_the_permutations() {
        let pool = small_pool(4, 2);
        let entries: Vec<Vec<Point>> = pool.enumerate().collect();
        assert_eq!(entries.len(), 12);
        // All entries distinct, all points within an entry distinct.
        let as_keys: BTreeSet<String> = entries.iter().map(|e| format!("{:?}", e)).collect();
        assert_eq!(as_keys.len(), 12);
        for e in &entries {
            assert_ne!(e[0], e[1]);
        }
    }

    #[test]
    fn enumeration_count_matches_formula_for_k5() {
        let pool = small_pool(7, 5);
        assert_eq!(pool.enumerate().count() as u128, pool.entry_count());
    }

    #[test]
    fn sampling_produces_valid_entries() {
        let pool = small_pool(10, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let entries = pool.sample_entries(&mut rng, 100);
        assert_eq!(entries.len(), 100);
        for e in &entries {
            assert_eq!(e.len(), 5);
            let set: BTreeSet<String> = e.iter().map(|p| format!("{p}")).collect();
            assert_eq!(set.len(), 5, "points within an entry must be distinct");
        }
    }

    #[test]
    fn duplicate_points_are_deduplicated() {
        let pool = ClickPointPool::new(
            vec![
                Point::new(1.0, 1.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ],
            2,
        );
        assert_eq!(pool.pool_size(), 2);
    }

    #[test]
    fn truncated_pool_shrinks() {
        let pool = small_pool(20, 5).truncated(8);
        assert_eq!(pool.pool_size(), 8);
        assert_eq!(pool.clicks_per_entry(), 5);
    }

    #[test]
    fn empty_or_undersized_pools_are_harmless() {
        let pool = small_pool(3, 5);
        assert_eq!(pool.entry_count(), 0);
        assert_eq!(pool.entry_bits(), 0.0);
        assert_eq!(pool.enumerate().count(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pool.sample_entries(&mut rng, 5).is_empty());
    }
}
