//! Cost model for the offline attack **without** known grid identifiers.
//!
//! §5.1: "in the unusual case where only the hashed passwords are known,
//! the size of attack dictionaries to have the same attack efficacy would
//! have to increase significantly.  For each dictionary entry, attackers
//! would need to compute a hash for each possible grid identifier
//! combination.  This would require significantly more work for Centered
//! Discretization since the number of grids is proportional to the size of
//! the grid-squares (13×13 grid-squares implies 13² = 169 grid identifiers).
//! Conversely, Robust Discretization has only 3 possible grids."
//!
//! This module quantifies that work factor, and — because the paper also
//! notes iterated hashing as a mitigation — folds the iteration count into
//! the per-guess cost.

use crate::dictionary::ClickPointPool;
use gp_discretization::DiscretizationScheme;
use serde::{Deserialize, Serialize};

/// Work-factor model for a hash-only offline attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashOnlyCostModel {
    /// Number of dictionary entries the attacker will try.
    pub dictionary_entries: u128,
    /// Number of possible clear grid identifiers per click
    /// (3 for Robust, `(2r)²` for Centered).
    pub grid_identifiers_per_click: u64,
    /// Clicks per password.
    pub clicks: u32,
    /// Hash iterations per guess (the `h^1000` hardening).
    pub hash_iterations: u32,
}

impl HashOnlyCostModel {
    /// Build the model for a scheme and dictionary.
    pub fn for_scheme(
        scheme: &dyn DiscretizationScheme,
        pool: &ClickPointPool,
        hash_iterations: u32,
    ) -> Self {
        Self {
            dictionary_entries: pool.entry_count(),
            grid_identifiers_per_click: scheme.num_grid_identifiers(),
            clicks: pool.clicks_per_entry() as u32,
            hash_iterations: hash_iterations.max(1),
        }
    }

    /// Number of grid-identifier combinations that must be tried per
    /// dictionary entry: `identifiers ^ clicks`.
    pub fn grid_combinations(&self) -> f64 {
        (self.grid_identifiers_per_click as f64).powi(self.clicks as i32)
    }

    /// Total number of SHA-256 compressions (guesses × grid combinations ×
    /// iterations), as a floating-point work factor.
    pub fn total_hash_operations(&self) -> f64 {
        self.dictionary_entries as f64 * self.grid_combinations() * self.hash_iterations as f64
    }

    /// The work factor in bits (`log2` of the hash-operation count).
    pub fn work_bits(&self) -> f64 {
        let ops = self.total_hash_operations();
        if ops <= 0.0 {
            0.0
        } else {
            ops.log2()
        }
    }

    /// Extra work, in bits, relative to the known-grid-identifier attack on
    /// the same dictionary (which needs one grid combination per entry).
    pub fn extra_bits_vs_known_grid(&self) -> f64 {
        self.grid_combinations().log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_discretization::{CenteredDiscretization, RobustDiscretization};
    use gp_geometry::Point;

    fn pool() -> ClickPointPool {
        ClickPointPool::new(
            (0..150)
                .map(|i| Point::new(i as f64, (i % 37) as f64))
                .collect(),
            5,
        )
    }

    #[test]
    fn robust_needs_only_3_to_the_5_combinations() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let model = HashOnlyCostModel::for_scheme(&scheme, &pool(), 1);
        assert_eq!(model.grid_identifiers_per_click, 3);
        assert_eq!(model.grid_combinations(), 243.0);
        assert!((model.extra_bits_vs_known_grid() - 243f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn centered_combinations_grow_with_grid_size() {
        // 13x13 squares (r = 6) ⇒ 169 identifiers per click, per the paper.
        let scheme = CenteredDiscretization::from_grid_square_size(13.0).unwrap();
        let model = HashOnlyCostModel::for_scheme(&scheme, &pool(), 1);
        assert_eq!(model.grid_identifiers_per_click, 169);
        assert!((model.grid_combinations() - 169f64.powi(5)).abs() < 1.0);
        // Centered makes the hash-only attack much harder than Robust.
        let robust =
            HashOnlyCostModel::for_scheme(&RobustDiscretization::new(6.0).unwrap(), &pool(), 1);
        assert!(model.work_bits() > robust.work_bits() + 25.0);
    }

    #[test]
    fn iterated_hashing_adds_about_ten_bits_at_1000_iterations() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let base = HashOnlyCostModel::for_scheme(&scheme, &pool(), 1);
        let hardened = HashOnlyCostModel::for_scheme(&scheme, &pool(), 1000);
        let delta = hardened.work_bits() - base.work_bits();
        assert!((delta - 1000f64.log2()).abs() < 1e-9);
        assert!(
            delta > 9.9 && delta < 10.0,
            "1000 iterations ≈ +10 bits, got {delta}"
        );
    }

    #[test]
    fn dictionary_size_drives_base_cost() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let model = HashOnlyCostModel::for_scheme(&scheme, &pool(), 1);
        // Dictionary is ~2^36; with 3^5 combinations the total is ~2^43.9.
        assert!((model.work_bits() - (pool().entry_bits() + 243f64.log2())).abs() < 1e-6);
    }

    #[test]
    fn zero_entry_dictionary_costs_nothing() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let empty = ClickPointPool::new(vec![], 5);
        let model = HashOnlyCostModel::for_scheme(&scheme, &empty, 1000);
        assert_eq!(model.total_hash_operations(), 0.0);
        assert_eq!(model.work_bits(), 0.0);
    }
}
