//! Automated hotspot-based dictionary construction.
//!
//! §2.1 cites two attack families: human-seeded dictionaries (harvested
//! passwords) and automated image-processing attacks (Dirik et al.), which
//! predict likely click-points directly from the image.  With the synthetic
//! image substrate the "image processing" step reduces to reading the
//! hotspot map; the resulting candidate points feed the same offline /
//! online attack machinery as the human-seeded pool, letting the analysis
//! crate compare both dictionary sources.

use crate::dictionary::ClickPointPool;
use gp_study::SyntheticImage;

/// A dictionary pool derived from an image's hotspot map rather than from
/// harvested passwords.
#[derive(Debug, Clone)]
pub struct HotspotDictionary {
    pool: ClickPointPool,
    /// How many of the image's hotspots (most popular first) were used.
    pub hotspots_used: usize,
}

impl HotspotDictionary {
    /// Build a pool from the `top_n` most popular hotspots of an image.
    /// Each hotspot contributes its center point.
    pub fn from_image(image: &SyntheticImage, top_n: usize, clicks_per_entry: usize) -> Self {
        let mut hotspots: Vec<_> = image.hotspots.iter().collect();
        hotspots.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
        let used = top_n.min(hotspots.len());
        let points = hotspots[..used].iter().map(|h| h.center).collect();
        Self {
            pool: ClickPointPool::new(points, clicks_per_entry),
            hotspots_used: used,
        }
    }

    /// The candidate-point pool, usable with
    /// [`OfflineKnownGridAttack`](crate::offline::OfflineKnownGridAttack).
    pub fn pool(&self) -> &ClickPointPool {
        &self.pool
    }

    /// Consume into the underlying pool.
    pub fn into_pool(self) -> ClickPointPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineKnownGridAttack;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, GraphicalPasswordSystem, PasswordPolicy};
    use gp_study::UserModel;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pool_uses_most_popular_hotspots_first() {
        let image = SyntheticImage::cars();
        let d = HotspotDictionary::from_image(&image, 10, 5);
        assert_eq!(d.hotspots_used, 10);
        assert_eq!(d.pool().pool_size(), 10);
        // Every point is one of the image's hotspot centers.
        for p in d.pool().points() {
            assert!(image.hotspots.iter().any(|h| h.center == *p));
        }
        // Requesting more hotspots than exist is clamped.
        let all = HotspotDictionary::from_image(&image, 999, 5);
        assert_eq!(all.hotspots_used, image.hotspots.len());
    }

    #[test]
    fn hotspot_dictionary_cracks_hotspot_clicking_users() {
        // Users with maximal hotspot affinity are vulnerable to the
        // automated dictionary; this is the Dirik-style result.
        let image = SyntheticImage::cars();
        let model = UserModel {
            hotspot_affinity: 1.0,
            ..UserModel::study_default()
        };
        let mut rng = StdRng::seed_from_u64(77);
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::robust(9.0),
            1,
        );
        let attack =
            OfflineKnownGridAttack::new(HotspotDictionary::from_image(&image, 30, 5).into_pool());
        let mut cracked = 0;
        let trials = 40;
        for i in 0..trials {
            let clicks = model.choose_password(&mut rng, &image);
            let stored = system.enroll(&format!("u{i}"), &clicks).unwrap();
            if attack.cracks(&stored, &clicks) {
                cracked += 1;
            }
        }
        assert!(
            cracked > trials / 4,
            "hotspot dictionary should crack a substantial share, got {cracked}/{trials}"
        );
    }

    #[test]
    fn uniform_clicking_users_resist_the_hotspot_dictionary() {
        let image = SyntheticImage::cars();
        let model = UserModel {
            hotspot_affinity: 0.0,
            ..UserModel::study_default()
        };
        let mut rng = StdRng::seed_from_u64(78);
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::centered(9),
            1,
        );
        let attack =
            OfflineKnownGridAttack::new(HotspotDictionary::from_image(&image, 30, 5).into_pool());
        let mut cracked = 0;
        let trials = 40;
        for i in 0..trials {
            let clicks = model.choose_password(&mut rng, &image);
            let stored = system.enroll(&format!("u{i}"), &clicks).unwrap();
            if attack.cracks(&stored, &clicks) {
                cracked += 1;
            }
        }
        assert!(
            cracked <= trials / 10,
            "uniform clickers should mostly resist the hotspot dictionary, got {cracked}/{trials}"
        );
    }
}
