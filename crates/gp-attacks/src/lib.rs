//! Attack suite for click-based graphical passwords.
//!
//! Reproduces the security analysis of §5 of the paper:
//!
//! * [`dictionary`] — the **human-seeded dictionary**: all ordered
//!   5-point permutations of the click-points harvested from the lab study
//!   (30 passwords × 5 clicks = 150 points per image ⇒ ≈ 2³⁶ entries),
//!   the construction of Thorpe & van Oorschot that the paper adopts.
//! * [`offline`] — the **offline dictionary attack with known grid
//!   identifiers** (Figures 7 and 8): the attacker holds the password file
//!   (clear grid identifiers + hashes) and tests every dictionary entry.
//!   Both an exact evaluation shortcut (set-membership matching, used for
//!   the full-scale experiments) and an honest brute-force mode (hash every
//!   entry, used to validate the shortcut on small pools) are provided.
//! * [`hash_only`] — the cost model for the attack **without** known grid
//!   identifiers (§5.1): every entry must be hashed under every possible
//!   grid identifier combination, multiplying the work by `3^clicks` for
//!   Robust but `((2r)²)^clicks` for Centered.
//! * [`online`] — the **online dictionary attack** against the login
//!   interface, throttled by an account-lockout policy.
//! * [`hotspot`] — an automated (image-processing style) attack that builds
//!   its dictionary from the image's hotspot map instead of harvested
//!   passwords, in the spirit of Dirik et al.
//! * [`metrics`] — aggregation of attack outcomes (fraction of passwords
//!   cracked, per image and overall).
//! * [`parallel`] — multi-threaded evaluation of an attack over a large
//!   target population.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dictionary;
pub mod hash_only;
pub mod hotspot;
pub mod metrics;
pub mod offline;
pub mod online;
pub mod parallel;

pub use dictionary::ClickPointPool;
pub use hash_only::HashOnlyCostModel;
pub use hotspot::HotspotDictionary;
pub use metrics::{AttackOutcome, AttackSummary};
pub use offline::OfflineKnownGridAttack;
pub use online::{LockoutPolicy, OnlineAttack, OnlineOutcome};
pub use parallel::{default_threads, evaluate_population_auto, evaluate_population_parallel};
