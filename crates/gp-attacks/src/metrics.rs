//! Aggregation of attack outcomes.

use serde::{Deserialize, Serialize};

/// The outcome of attacking one target password.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Index of the target in the evaluated population.
    pub target_index: usize,
    /// Whether the attack recovered (an equivalent of) the password.
    pub cracked: bool,
}

/// Aggregate results of an attack over a population of targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Number of targets evaluated.
    pub targets: usize,
    /// Number of targets cracked.
    pub cracked: usize,
}

impl AttackSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, cracked: bool) {
        self.targets += 1;
        if cracked {
            self.cracked += 1;
        }
    }

    /// Merge another summary into this one (used by the parallel runner).
    pub fn merge(&mut self, other: &AttackSummary) {
        self.targets += other.targets;
        self.cracked += other.cracked;
    }

    /// Fraction of targets cracked (0 when no targets were evaluated).
    pub fn fraction_cracked(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.cracked as f64 / self.targets as f64
        }
    }

    /// Percentage of targets cracked.
    pub fn percent_cracked(&self) -> f64 {
        100.0 * self.fraction_cracked()
    }
}

impl core::fmt::Display for AttackSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{} cracked ({:.1}%)",
            self.cracked,
            self.targets,
            self.percent_cracked()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fraction() {
        let mut s = AttackSummary::new();
        assert_eq!(s.fraction_cracked(), 0.0);
        s.record(true);
        s.record(false);
        s.record(true);
        s.record(false);
        assert_eq!(s.targets, 4);
        assert_eq!(s.cracked, 2);
        assert_eq!(s.fraction_cracked(), 0.5);
        assert_eq!(s.percent_cracked(), 50.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = AttackSummary {
            targets: 10,
            cracked: 3,
        };
        let b = AttackSummary {
            targets: 5,
            cracked: 5,
        };
        a.merge(&b);
        assert_eq!(
            a,
            AttackSummary {
                targets: 15,
                cracked: 8
            }
        );
    }

    #[test]
    fn display_is_readable() {
        let s = AttackSummary {
            targets: 8,
            cracked: 2,
        };
        assert_eq!(s.to_string(), "2/8 cracked (25.0%)");
    }
}
