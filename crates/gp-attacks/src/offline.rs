//! Offline dictionary attack with known grid identifiers (§5.1, Figures 7–8).
//!
//! Threat model: the attacker has obtained the server's password file, so
//! for each account they hold the clear grid identifiers and the salted
//! hash.  Every dictionary entry can therefore be discretized against the
//! *target's own* grids before hashing, which is what makes the attack
//! cheap ("each guess can be mapped directly to the user's stored grid
//! identifiers to compute the hash rather than having to iterate through
//! all possible grid combinations").
//!
//! Two evaluation modes are provided:
//!
//! * [`OfflineKnownGridAttack::cracks`] — the exact *evaluation shortcut*
//!   used for the paper-scale experiments.  Because the dictionary consists
//!   of all ordered permutations of a point pool, a target is cracked iff
//!   distinct pool points can be assigned to the five click positions such
//!   that each lands in the target's grid square for that position — a
//!   bipartite matching question answered without enumerating the ≈ 2³⁶
//!   entries.  (This uses the experimenter's knowledge of the target's true
//!   grid squares, exactly as the paper's own post-hoc analysis did.)
//! * [`OfflineKnownGridAttack::brute_force`] — the honest attacker: walk
//!   the dictionary, hash every candidate, compare against the stored hash.
//!   Used to validate the shortcut on reduced pools and to measure
//!   per-guess cost in the benchmarks.

use crate::dictionary::ClickPointPool;
use crate::metrics::AttackSummary;
use gp_crypto::{ct_eq, Digest, SaltedHasher, Sha256};
use gp_discretization::DiscretizedClick;
use gp_geometry::{GridCell, Point};
use gp_passwords::{GraphicalPasswordSystem, StoredPassword};
use std::collections::HashSet;

/// Maximum number of pre-image fingerprints remembered for deduplication
/// during one brute-force walk (16 bytes each → ~16 MiB of keys).  Beyond
/// the cap, new pre-images are still hashed and compared correctly — they
/// just stop being added to the dedupe set, so a pathological pool degrades
/// to extra hashing work instead of unbounded memory.
const DEDUPE_CAP: usize = 1 << 20;

/// 128-bit fingerprint of a pre-image for the dedupe set: the truncated
/// SHA-256 keeps keys fixed-size (no per-key heap allocation) and makes an
/// accidental collision — which would skip a distinct candidate —
/// cryptographically negligible.
fn fingerprint(pre_image: &[u8]) -> [u8; 16] {
    let digest = Sha256::digest(pre_image);
    digest[..16].try_into().expect("digest is 32 bytes")
}

/// Offline dictionary attack against password files with clear grid
/// identifiers.
#[derive(Debug, Clone)]
pub struct OfflineKnownGridAttack {
    pool: ClickPointPool,
}

/// Result of a brute-force dictionary walk against one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceOutcome {
    /// Index (0-based) of the first dictionary entry that matched, if any.
    pub success_at: Option<u64>,
    /// Number of dictionary entries evaluated (on success, entries up to
    /// and including the first match).
    pub guesses: u64,
    /// Number of `h^k` computations actually performed.  Strictly fewer
    /// than `guesses` whenever distinct entries discretize to the same
    /// pre-image for this target — the batched pipeline hashes each unique
    /// pre-image once.
    pub hashed: u64,
}

impl OfflineKnownGridAttack {
    /// Build the attack from a dictionary pool.
    pub fn new(pool: ClickPointPool) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ClickPointPool {
        &self.pool
    }

    /// The target's grid squares, recovered from its stored clear
    /// identifiers and the original click-points (experimenter knowledge
    /// used only for evaluation).
    fn target_cells(stored: &StoredPassword, original: &[Point]) -> Option<Vec<GridCell>> {
        if original.len() != stored.clicks.len() {
            return None;
        }
        let scheme = stored.config.build();
        stored
            .clicks
            .iter()
            .zip(original.iter())
            .map(|(record, click)| scheme.try_locate(&record.grid_id, click).ok())
            .collect()
    }

    /// Exact evaluation: does the dictionary contain at least one entry the
    /// system would accept for this stored record?
    ///
    /// Equivalent to running [`brute_force`](Self::brute_force) over the
    /// full dictionary (see the `shortcut_agrees_with_brute_force` test),
    /// but runs in `O(pool × clicks)` instead of `O(pool^clicks)`.
    pub fn cracks(&self, stored: &StoredPassword, original: &[Point]) -> bool {
        let Some(cells) = Self::target_cells(stored, original) else {
            return false;
        };
        if self.pool.pool_size() < stored.clicks.len() {
            return false;
        }
        let scheme = stored.config.build();
        // candidates[i] = pool indices whose point falls in the target's
        // grid square for click position i.
        let candidates: Vec<Vec<usize>> = stored
            .clicks
            .iter()
            .zip(cells.iter())
            .map(|(record, cell)| {
                self.pool
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        scheme
                            .try_locate(&record.grid_id, p)
                            .map(|c| c == *cell)
                            .unwrap_or(false)
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        distinct_assignment_exists(&candidates)
    }

    /// Evaluate the attack over a population of `(stored, original clicks)`
    /// targets.
    pub fn evaluate_population(&self, targets: &[(StoredPassword, Vec<Point>)]) -> AttackSummary {
        let mut summary = AttackSummary::new();
        for (stored, original) in targets {
            summary.record(self.cracks(stored, original));
        }
        summary
    }

    /// Honest brute force: evaluate every dictionary entry (in enumeration
    /// order) against the stored record until a match is found or `limit`
    /// entries have been tried.
    ///
    /// Semantically identical to hashing each entry through
    /// [`GraphicalPasswordSystem::verify`] (the
    /// `shortcut_agrees_with_brute_force` tests pin this down), but runs
    /// the batched zero-allocation pipeline:
    ///
    /// 1. entries are enumerated into reused buffers (no per-entry `Vec`),
    /// 2. each entry is discretized against the target's own grids and
    ///    encoded into a reused pre-image buffer,
    /// 3. entries whose pre-image was already seen for this target are
    ///    *deduplicated* — nearby pool points land in the same grid squares,
    ///    so the expensive `h^k` is computed once per unique pre-image,
    /// 4. unique pre-images are hashed [`gp_crypto::LANES`] at a time
    ///    through [`SaltedHasher::iterated_many_into`] with the target's
    ///    precomputed salt midstate.
    pub fn brute_force(
        &self,
        system: &GraphicalPasswordSystem,
        stored: &StoredPassword,
        limit: u64,
    ) -> BruteForceOutcome {
        let total_entries = u64::try_from(self.pool.entry_count()).unwrap_or(u64::MAX);
        let evaluable = total_entries.min(limit);

        // Provenance checks `verify` performs per attempt, hoisted out of
        // the loop: if the record cannot match this system or pool shape at
        // all, every entry is a non-cracking guess.
        let hasher = system.hasher();
        let expected_salt = hasher.salt_for(stored.username.as_bytes());
        if stored.hash.iterations != system.iterations()
            || stored.hash.salt != expected_salt
            || stored.clicks.len() != self.pool.clicks_per_entry()
            || stored.clicks.len() != stored.policy.clicks
        {
            return BruteForceOutcome {
                success_at: None,
                guesses: evaluable,
                hashed: 0,
            };
        }

        let scheme = stored.config.build();
        let salted = SaltedHasher::new(&stored.hash.salt);
        let iterations = stored.hash.iterations;
        let target_digest = stored.hash.digest;
        let image = stored.policy.image;

        // Reused per-guess buffers: steady state allocates only when a new
        // unique pre-image is interned.
        let mut entry: Vec<Point> = Vec::with_capacity(stored.clicks.len());
        let mut discretized: Vec<DiscretizedClick> = Vec::with_capacity(stored.clicks.len());
        let mut pre_image: Vec<u8> = Vec::new();
        let mut seen: HashSet<[u8; 16]> = HashSet::new();
        let mut batch: Vec<(Vec<u8>, [u8; 16], u64)> = Vec::with_capacity(gp_crypto::LANES);
        let mut digests: Vec<Digest> = Vec::with_capacity(gp_crypto::LANES);

        let mut guesses = 0u64;
        let mut hashed = 0u64;
        let mut iter = self.pool.enumerate();

        // Fingerprints enter `seen` only at flush time, so each unique
        // pre-image is copied out of the scratch buffer exactly once; the
        // in-flight batch is deduped by linear scan (it holds at most LANES
        // entries).  Message references live in a stack array, so a flush
        // allocates nothing.
        let flush = |batch: &mut Vec<(Vec<u8>, [u8; 16], u64)>,
                     digests: &mut Vec<Digest>,
                     seen: &mut HashSet<[u8; 16]>,
                     hashed: &mut u64|
         -> Option<u64> {
            if batch.is_empty() {
                return None;
            }
            let mut messages: [&[u8]; gp_crypto::LANES] = [&[]; gp_crypto::LANES];
            for (slot, (pre_image, _, _)) in messages.iter_mut().zip(batch.iter()) {
                *slot = pre_image.as_slice();
            }
            salted.iterated_many_into(&messages[..batch.len()], iterations, digests);
            *hashed += batch.len() as u64;
            let mut first_match: Option<u64> = None;
            for (digest, (_, _, entry_index)) in digests.iter().zip(batch.iter()) {
                if ct_eq(digest, &target_digest)
                    && first_match.is_none_or(|current| *entry_index < current)
                {
                    first_match = Some(*entry_index);
                }
            }
            for (_, fp, _) in batch.drain(..) {
                if seen.len() < DEDUPE_CAP {
                    seen.insert(fp);
                }
            }
            first_match
        };

        while guesses < limit && iter.next_into(&mut entry) {
            let entry_index = guesses;
            guesses += 1;

            // Discretize against the target's own grids; entries that fail
            // (click outside image, undecodable identifier) are guesses
            // that can never match, exactly as `verify` treats them.
            discretized.clear();
            let mut valid = true;
            for (record, click) in stored.clicks.iter().zip(entry.iter()) {
                if !image.contains_point(click) {
                    valid = false;
                    break;
                }
                match scheme.try_locate(&record.grid_id, click) {
                    Ok(cell) => discretized.push(DiscretizedClick {
                        grid_id: record.grid_id,
                        cell,
                    }),
                    Err(_) => {
                        valid = false;
                        break;
                    }
                }
            }
            if !valid {
                continue;
            }

            StoredPassword::encode_clicks_into(&discretized, &mut pre_image);
            let fp = fingerprint(&pre_image);
            if seen.contains(&fp) || batch.iter().any(|(queued, _, _)| *queued == pre_image) {
                continue;
            }
            batch.push((pre_image.clone(), fp, entry_index));

            if batch.len() == gp_crypto::LANES {
                if let Some(success_at) = flush(&mut batch, &mut digests, &mut seen, &mut hashed) {
                    return BruteForceOutcome {
                        success_at: Some(success_at),
                        guesses: success_at + 1,
                        hashed,
                    };
                }
            }
        }

        if let Some(success_at) = flush(&mut batch, &mut digests, &mut seen, &mut hashed) {
            return BruteForceOutcome {
                success_at: Some(success_at),
                guesses: success_at + 1,
                hashed,
            };
        }
        BruteForceOutcome {
            success_at: None,
            guesses,
            hashed,
        }
    }
}

/// Whether a system of distinct representatives exists: one pool index per
/// position, all distinct, each drawn from that position's candidate list.
/// Positions are processed scarcest-first with backtracking; with ≤ 5
/// positions this is effectively constant time.
fn distinct_assignment_exists(candidates: &[Vec<usize>]) -> bool {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].len());
    let mut used = std::collections::HashSet::new();
    fn backtrack(
        order: &[usize],
        pos: usize,
        candidates: &[Vec<usize>],
        used: &mut std::collections::HashSet<usize>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let slot = order[pos];
        for &candidate in &candidates[slot] {
            if used.insert(candidate) {
                if backtrack(order, pos + 1, candidates, used) {
                    return true;
                }
                used.remove(&candidate);
            }
        }
        false
    }
    backtrack(&order, 0, candidates, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, PasswordPolicy};

    fn system(config: DiscretizationConfig, clicks: usize) -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(PasswordPolicy::new(ImageDims::STUDY, clicks), config, 1)
    }

    fn original_clicks() -> Vec<Point> {
        vec![
            Point::new(50.0, 60.0),
            Point::new(150.0, 90.0),
            Point::new(250.0, 160.0),
            Point::new(350.0, 230.0),
            Point::new(120.0, 300.0),
        ]
    }

    #[test]
    fn distinct_assignment_basic_cases() {
        assert!(distinct_assignment_exists(&[vec![0], vec![1]]));
        assert!(!distinct_assignment_exists(&[vec![0], vec![0]]));
        assert!(distinct_assignment_exists(&[vec![0, 1], vec![0]]));
        assert!(!distinct_assignment_exists(&[vec![], vec![1]]));
        // Classic Hall violation: three positions sharing two candidates.
        assert!(!distinct_assignment_exists(&[
            vec![0, 1],
            vec![0, 1],
            vec![0, 1]
        ]));
        assert!(distinct_assignment_exists(&[
            vec![0, 1],
            vec![0, 1],
            vec![2]
        ]));
    }

    #[test]
    fn dictionary_containing_the_password_cracks_it() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        // Pool = the victim's own points plus noise: attack must succeed.
        let mut points = original.clone();
        points.push(Point::new(400.0, 20.0));
        points.push(Point::new(40.0, 200.0));
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(attack.cracks(&stored, &original));
    }

    #[test]
    fn near_miss_pool_within_tolerance_also_cracks() {
        // Pool points a few pixels off the victim's clicks still land in the
        // same grid squares, so the attack succeeds — the essence of
        // hotspot-driven guessing.
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let points: Vec<Point> = original.iter().map(|p| p.offset(4.0, -3.0)).collect();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(attack.cracks(&stored, &original));
    }

    #[test]
    fn far_pool_does_not_crack() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let points: Vec<Point> = original.iter().map(|p| p.offset(60.0, 45.0)).collect();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(!attack.cracks(&stored, &original));
    }

    #[test]
    fn robust_larger_squares_crack_more_than_centered_at_equal_r() {
        // A pool offset just beyond r from the victim's points: always
        // outside Centered's acceptance region (which is exactly ±r), but
        // inside Robust's much larger 6r squares for these targets — the
        // false-accept surface Figure 8 exploits.
        let original = original_clicks();
        let offset: Vec<Point> = original.iter().map(|p| p.offset(7.0, 7.0)).collect();
        let pool = ClickPointPool::new(offset, 5);
        let attack = OfflineKnownGridAttack::new(pool);

        let sys_c = system(DiscretizationConfig::centered(6), 5);
        let stored_c = sys_c.enroll("victim", &original).unwrap();
        let sys_r = system(DiscretizationConfig::robust(6.0), 5);
        let stored_r = sys_r.enroll("victim", &original).unwrap();

        assert!(
            !attack.cracks(&stored_c, &original),
            "centered should resist a 7px-off pool at r=6"
        );
        assert!(
            attack.cracks(&stored_r, &original),
            "robust's 36px squares should admit a 7px-off pool"
        );
    }

    #[test]
    fn shortcut_agrees_with_brute_force_on_small_pools() {
        // Exhaustively compare the matching shortcut with honest hashing on
        // a reduced problem (3 clicks, pools of 6 points).
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();

        for (label, pool_points) in [
            (
                "contains the password",
                vec![
                    Point::new(61.0, 58.0),
                    Point::new(199.0, 123.0),
                    Point::new(322.0, 247.0),
                    Point::new(10.0, 10.0),
                    Point::new(400.0, 300.0),
                    Point::new(90.0, 200.0),
                ],
            ),
            (
                "misses one click",
                vec![
                    Point::new(61.0, 58.0),
                    Point::new(199.0, 123.0),
                    Point::new(10.0, 10.0),
                    Point::new(400.0, 300.0),
                    Point::new(90.0, 200.0),
                    Point::new(250.0, 50.0),
                ],
            ),
            (
                "single shared point for two positions",
                vec![
                    // One point inside the grid square of click 0 AND click 1
                    // is impossible (they are far apart), so emulate scarcity:
                    // only one candidate each for clicks 0 and 1, distinct.
                    Point::new(60.0, 60.0),
                    Point::new(200.0, 120.0),
                    Point::new(320.0, 250.0),
                    Point::new(440.0, 20.0),
                    Point::new(30.0, 300.0),
                    Point::new(380.0, 80.0),
                ],
            ),
        ] {
            let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, clicks));
            let shortcut = attack.cracks(&stored, &original);
            let brute = attack
                .brute_force(&sys, &stored, u64::MAX)
                .success_at
                .is_some();
            assert_eq!(shortcut, brute, "disagreement on case {label:?}");
        }
    }

    /// The obviously-correct specification: hash every entry through the
    /// public `verify`, one at a time.
    fn brute_force_reference(
        attack: &OfflineKnownGridAttack,
        system: &GraphicalPasswordSystem,
        stored: &StoredPassword,
        limit: u64,
    ) -> (Option<u64>, u64) {
        let mut guesses = 0u64;
        for entry in attack.pool.enumerate() {
            if guesses >= limit {
                break;
            }
            guesses += 1;
            if system.verify(stored, &entry).unwrap_or(false) {
                return (Some(guesses - 1), guesses);
            }
        }
        (None, guesses)
    }

    #[test]
    fn batched_brute_force_matches_per_entry_reference() {
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();
        // Pools chosen so the first match lands at different depths (and
        // sometimes nowhere), exercising batch-boundary and remainder paths.
        let pools: Vec<Vec<Point>> = vec![
            // Match possible: near-duplicates of the victim's points.
            original
                .iter()
                .map(|p| p.offset(1.0, -1.0))
                .chain((0..6).map(|i| Point::new(15.0 + 40.0 * i as f64, 300.0)))
                .collect(),
            // No match: everything far away.
            (0..7)
                .map(|i| Point::new(10.0 + 30.0 * i as f64, 20.0))
                .collect(),
            // Match buried late: decoys enumerate first.
            (0..5)
                .map(|i| Point::new(400.0, 10.0 + 40.0 * i as f64))
                .chain(original.iter().map(|p| p.offset(-2.0, 2.0)))
                .collect(),
        ];
        for (pi, points) in pools.into_iter().enumerate() {
            let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, clicks));
            for limit in [0u64, 1, 5, 16, 17, 100, u64::MAX] {
                let batched = attack.brute_force(&sys, &stored, limit);
                let (ref_success, ref_guesses) =
                    brute_force_reference(&attack, &sys, &stored, limit);
                assert_eq!(batched.success_at, ref_success, "pool {pi}, limit {limit}");
                assert_eq!(batched.guesses, ref_guesses, "pool {pi}, limit {limit}");
                // Hashing never exceeds the evaluated entries, modulo the
                // in-flight batch that contained the first match.
                assert!(batched.hashed <= batched.guesses + gp_crypto::LANES as u64);
            }
        }
    }

    #[test]
    fn duplicate_pre_images_are_hashed_once() {
        // A tight cluster of pool points all lands in the victim's grid
        // squares, so thousands of entries collapse to very few unique
        // pre-images; dedupe must collapse the hashing work accordingly.
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(9), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();
        // 9 points: three tight clusters of three, one cluster per click.
        let points: Vec<Point> = original
            .iter()
            .flat_map(|p| [p.offset(0.0, 0.0), p.offset(1.0, 1.0), p.offset(-1.0, -1.0)])
            .collect();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, clicks));
        // The victim IS crackable (the clusters sit in its grid squares);
        // the batched pipeline must find the same first entry per-entry
        // verification finds, with bounded hashing work.
        let hit = attack.brute_force(&sys, &stored, u64::MAX);
        let (ref_success, ref_guesses) = brute_force_reference(&attack, &sys, &stored, u64::MAX);
        assert!(hit.success_at.is_some());
        assert_eq!(hit.success_at, ref_success);
        assert_eq!(hit.guesses, ref_guesses);
        assert!(hit.hashed <= hit.guesses + gp_crypto::LANES as u64);

        // Full-enumeration dedupe accounting needs a target this pool can
        // never crack: enroll one far (>> tolerance) from every cluster.
        let far: Vec<Point> = original.iter().map(|p| p.offset(80.0, 40.0)).collect();
        let other = sys.enroll("other", &far).unwrap();
        let miss = attack.brute_force(&sys, &other, u64::MAX);
        assert!(miss.success_at.is_none());
        assert_eq!(miss.guesses, 9 * 8 * 7);
        assert!(
            miss.hashed < miss.guesses / 4,
            "clustered pool must dedupe heavily: hashed {} of {} guesses",
            miss.hashed,
            miss.guesses
        );
    }

    #[test]
    fn brute_force_short_circuits_foreign_records() {
        // A record enrolled under different iterations can never match;
        // the pipeline reports every entry as a guess without hashing.
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let other_sys = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, clicks),
            DiscretizationConfig::centered(6),
            2,
        );
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = other_sys.enroll("victim", &original).unwrap();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(original.clone(), clicks));
        let outcome = attack.brute_force(&sys, &stored, u64::MAX);
        assert_eq!(outcome.success_at, None);
        assert_eq!(outcome.guesses, 6);
        assert_eq!(outcome.hashed, 0);
        // And the reference agrees on the outcome.
        let (ref_success, ref_guesses) = brute_force_reference(&attack, &sys, &stored, u64::MAX);
        assert_eq!(outcome.success_at, ref_success);
        assert_eq!(outcome.guesses, ref_guesses);
    }

    #[test]
    fn brute_force_respects_the_guess_limit() {
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();
        let pool = ClickPointPool::new(
            (0..8)
                .map(|i| Point::new(10.0 + i as f64 * 30.0, 15.0))
                .collect(),
            clicks,
        );
        let attack = OfflineKnownGridAttack::new(pool);
        let outcome = attack.brute_force(&sys, &stored, 10);
        assert_eq!(outcome.guesses, 10);
        assert!(outcome.success_at.is_none());
    }

    #[test]
    fn evaluate_population_counts_cracked_targets() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let far: Vec<Point> = original.iter().map(|p| p.offset(80.0, -40.0)).collect();
        let stored_far = sys.enroll("other", &far).unwrap();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(original.clone(), 5));
        let summary = attack.evaluate_population(&[(stored, original.clone()), (stored_far, far)]);
        assert_eq!(summary.targets, 2);
        assert_eq!(summary.cracked, 1);
        assert_eq!(summary.fraction_cracked(), 0.5);
    }

    #[test]
    fn undersized_pool_cannot_crack() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(original[..3].to_vec(), 5));
        assert!(!attack.cracks(&stored, &original));
    }
}
