//! Offline dictionary attack with known grid identifiers (§5.1, Figures 7–8).
//!
//! Threat model: the attacker has obtained the server's password file, so
//! for each account they hold the clear grid identifiers and the salted
//! hash.  Every dictionary entry can therefore be discretized against the
//! *target's own* grids before hashing, which is what makes the attack
//! cheap ("each guess can be mapped directly to the user's stored grid
//! identifiers to compute the hash rather than having to iterate through
//! all possible grid combinations").
//!
//! Two evaluation modes are provided:
//!
//! * [`OfflineKnownGridAttack::cracks`] — the exact *evaluation shortcut*
//!   used for the paper-scale experiments.  Because the dictionary consists
//!   of all ordered permutations of a point pool, a target is cracked iff
//!   distinct pool points can be assigned to the five click positions such
//!   that each lands in the target's grid square for that position — a
//!   bipartite matching question answered without enumerating the ≈ 2³⁶
//!   entries.  (This uses the experimenter's knowledge of the target's true
//!   grid squares, exactly as the paper's own post-hoc analysis did.)
//! * [`OfflineKnownGridAttack::brute_force`] — the honest attacker: walk
//!   the dictionary, hash every candidate, compare against the stored hash.
//!   Used to validate the shortcut on reduced pools and to measure
//!   per-guess cost in the benchmarks.

use crate::dictionary::ClickPointPool;
use crate::metrics::AttackSummary;
use gp_geometry::{GridCell, Point};
use gp_passwords::{GraphicalPasswordSystem, StoredPassword};

/// Offline dictionary attack against password files with clear grid
/// identifiers.
#[derive(Debug, Clone)]
pub struct OfflineKnownGridAttack {
    pool: ClickPointPool,
}

/// Result of a brute-force dictionary walk against one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceOutcome {
    /// Index (0-based) of the first dictionary entry that matched, if any.
    pub success_at: Option<u64>,
    /// Number of entries hashed and compared.
    pub guesses: u64,
}

impl OfflineKnownGridAttack {
    /// Build the attack from a dictionary pool.
    pub fn new(pool: ClickPointPool) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ClickPointPool {
        &self.pool
    }

    /// The target's grid squares, recovered from its stored clear
    /// identifiers and the original click-points (experimenter knowledge
    /// used only for evaluation).
    fn target_cells(stored: &StoredPassword, original: &[Point]) -> Option<Vec<GridCell>> {
        if original.len() != stored.clicks.len() {
            return None;
        }
        let scheme = stored.config.build();
        stored
            .clicks
            .iter()
            .zip(original.iter())
            .map(|(record, click)| scheme.try_locate(&record.grid_id, click).ok())
            .collect()
    }

    /// Exact evaluation: does the dictionary contain at least one entry the
    /// system would accept for this stored record?
    ///
    /// Equivalent to running [`brute_force`](Self::brute_force) over the
    /// full dictionary (see the `shortcut_agrees_with_brute_force` test),
    /// but runs in `O(pool × clicks)` instead of `O(pool^clicks)`.
    pub fn cracks(&self, stored: &StoredPassword, original: &[Point]) -> bool {
        let Some(cells) = Self::target_cells(stored, original) else {
            return false;
        };
        if self.pool.pool_size() < stored.clicks.len() {
            return false;
        }
        let scheme = stored.config.build();
        // candidates[i] = pool indices whose point falls in the target's
        // grid square for click position i.
        let candidates: Vec<Vec<usize>> = stored
            .clicks
            .iter()
            .zip(cells.iter())
            .map(|(record, cell)| {
                self.pool
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        scheme
                            .try_locate(&record.grid_id, p)
                            .map(|c| c == *cell)
                            .unwrap_or(false)
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        distinct_assignment_exists(&candidates)
    }

    /// Evaluate the attack over a population of `(stored, original clicks)`
    /// targets.
    pub fn evaluate_population(
        &self,
        targets: &[(StoredPassword, Vec<Point>)],
    ) -> AttackSummary {
        let mut summary = AttackSummary::new();
        for (stored, original) in targets {
            summary.record(self.cracks(stored, original));
        }
        summary
    }

    /// Honest brute force: hash every dictionary entry (in enumeration
    /// order) against the stored record until a match is found or `limit`
    /// entries have been tried.
    pub fn brute_force(
        &self,
        system: &GraphicalPasswordSystem,
        stored: &StoredPassword,
        limit: u64,
    ) -> BruteForceOutcome {
        let mut guesses = 0u64;
        for entry in self.pool.enumerate() {
            if guesses >= limit {
                break;
            }
            guesses += 1;
            if system.verify(stored, &entry).unwrap_or(false) {
                return BruteForceOutcome {
                    success_at: Some(guesses - 1),
                    guesses,
                };
            }
        }
        BruteForceOutcome {
            success_at: None,
            guesses,
        }
    }
}

/// Whether a system of distinct representatives exists: one pool index per
/// position, all distinct, each drawn from that position's candidate list.
/// Positions are processed scarcest-first with backtracking; with ≤ 5
/// positions this is effectively constant time.
fn distinct_assignment_exists(candidates: &[Vec<usize>]) -> bool {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].len());
    let mut used = std::collections::HashSet::new();
    fn backtrack(
        order: &[usize],
        pos: usize,
        candidates: &[Vec<usize>],
        used: &mut std::collections::HashSet<usize>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let slot = order[pos];
        for &candidate in &candidates[slot] {
            if used.insert(candidate) {
                if backtrack(order, pos + 1, candidates, used) {
                    return true;
                }
                used.remove(&candidate);
            }
        }
        false
    }
    backtrack(&order, 0, candidates, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, PasswordPolicy};

    fn system(config: DiscretizationConfig, clicks: usize) -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(PasswordPolicy::new(ImageDims::STUDY, clicks), config, 1)
    }

    fn original_clicks() -> Vec<Point> {
        vec![
            Point::new(50.0, 60.0),
            Point::new(150.0, 90.0),
            Point::new(250.0, 160.0),
            Point::new(350.0, 230.0),
            Point::new(120.0, 300.0),
        ]
    }

    #[test]
    fn distinct_assignment_basic_cases() {
        assert!(distinct_assignment_exists(&[vec![0], vec![1]]));
        assert!(!distinct_assignment_exists(&[vec![0], vec![0]]));
        assert!(distinct_assignment_exists(&[vec![0, 1], vec![0]]));
        assert!(!distinct_assignment_exists(&[vec![], vec![1]]));
        // Classic Hall violation: three positions sharing two candidates.
        assert!(!distinct_assignment_exists(&[vec![0, 1], vec![0, 1], vec![0, 1]]));
        assert!(distinct_assignment_exists(&[vec![0, 1], vec![0, 1], vec![2]]));
    }

    #[test]
    fn dictionary_containing_the_password_cracks_it() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        // Pool = the victim's own points plus noise: attack must succeed.
        let mut points = original.clone();
        points.push(Point::new(400.0, 20.0));
        points.push(Point::new(40.0, 200.0));
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(attack.cracks(&stored, &original));
    }

    #[test]
    fn near_miss_pool_within_tolerance_also_cracks() {
        // Pool points a few pixels off the victim's clicks still land in the
        // same grid squares, so the attack succeeds — the essence of
        // hotspot-driven guessing.
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let points: Vec<Point> = original.iter().map(|p| p.offset(4.0, -3.0)).collect();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(attack.cracks(&stored, &original));
    }

    #[test]
    fn far_pool_does_not_crack() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let points: Vec<Point> = original.iter().map(|p| p.offset(60.0, 45.0)).collect();
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 5));
        assert!(!attack.cracks(&stored, &original));
    }

    #[test]
    fn robust_larger_squares_crack_more_than_centered_at_equal_r() {
        // A pool offset just beyond r from the victim's points: always
        // outside Centered's acceptance region (which is exactly ±r), but
        // inside Robust's much larger 6r squares for these targets — the
        // false-accept surface Figure 8 exploits.
        let original = original_clicks();
        let offset: Vec<Point> = original.iter().map(|p| p.offset(7.0, 7.0)).collect();
        let pool = ClickPointPool::new(offset, 5);
        let attack = OfflineKnownGridAttack::new(pool);

        let sys_c = system(DiscretizationConfig::centered(6), 5);
        let stored_c = sys_c.enroll("victim", &original).unwrap();
        let sys_r = system(DiscretizationConfig::robust(6.0), 5);
        let stored_r = sys_r.enroll("victim", &original).unwrap();

        assert!(!attack.cracks(&stored_c, &original), "centered should resist a 7px-off pool at r=6");
        assert!(attack.cracks(&stored_r, &original), "robust's 36px squares should admit a 7px-off pool");
    }

    #[test]
    fn shortcut_agrees_with_brute_force_on_small_pools() {
        // Exhaustively compare the matching shortcut with honest hashing on
        // a reduced problem (3 clicks, pools of 6 points).
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();

        for (label, pool_points) in [
            (
                "contains the password",
                vec![
                    Point::new(61.0, 58.0),
                    Point::new(199.0, 123.0),
                    Point::new(322.0, 247.0),
                    Point::new(10.0, 10.0),
                    Point::new(400.0, 300.0),
                    Point::new(90.0, 200.0),
                ],
            ),
            (
                "misses one click",
                vec![
                    Point::new(61.0, 58.0),
                    Point::new(199.0, 123.0),
                    Point::new(10.0, 10.0),
                    Point::new(400.0, 300.0),
                    Point::new(90.0, 200.0),
                    Point::new(250.0, 50.0),
                ],
            ),
            (
                "single shared point for two positions",
                vec![
                    // One point inside the grid square of click 0 AND click 1
                    // is impossible (they are far apart), so emulate scarcity:
                    // only one candidate each for clicks 0 and 1, distinct.
                    Point::new(60.0, 60.0),
                    Point::new(200.0, 120.0),
                    Point::new(320.0, 250.0),
                    Point::new(440.0, 20.0),
                    Point::new(30.0, 300.0),
                    Point::new(380.0, 80.0),
                ],
            ),
        ] {
            let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, clicks));
            let shortcut = attack.cracks(&stored, &original);
            let brute = attack
                .brute_force(&sys, &stored, u64::MAX)
                .success_at
                .is_some();
            assert_eq!(shortcut, brute, "disagreement on case {label:?}");
        }
    }

    #[test]
    fn brute_force_respects_the_guess_limit() {
        let clicks = 3usize;
        let sys = system(DiscretizationConfig::centered(6), clicks);
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = sys.enroll("victim", &original).unwrap();
        let pool = ClickPointPool::new(
            (0..8).map(|i| Point::new(10.0 + i as f64 * 30.0, 15.0)).collect(),
            clicks,
        );
        let attack = OfflineKnownGridAttack::new(pool);
        let outcome = attack.brute_force(&sys, &stored, 10);
        assert_eq!(outcome.guesses, 10);
        assert!(outcome.success_at.is_none());
    }

    #[test]
    fn evaluate_population_counts_cracked_targets() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let far: Vec<Point> = original.iter().map(|p| p.offset(80.0, -40.0)).collect();
        let stored_far = sys.enroll("other", &far).unwrap();
        let attack =
            OfflineKnownGridAttack::new(ClickPointPool::new(original.clone(), 5));
        let summary = attack.evaluate_population(&[
            (stored, original.clone()),
            (stored_far, far),
        ]);
        assert_eq!(summary.targets, 2);
        assert_eq!(summary.cracked, 1);
        assert_eq!(summary.fraction_cracked(), 0.5);
    }

    #[test]
    fn undersized_pool_cannot_crack() {
        let sys = system(DiscretizationConfig::centered(9), 5);
        let original = original_clicks();
        let stored = sys.enroll("victim", &original).unwrap();
        let attack =
            OfflineKnownGridAttack::new(ClickPointPool::new(original[..3].to_vec(), 5));
        assert!(!attack.cracks(&stored, &original));
    }
}
