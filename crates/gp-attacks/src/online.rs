//! Online dictionary attack against the login interface (§5.1, "ONLINE
//! DICTIONARY ATTACK").
//!
//! The attacker has no access to the password file.  Grid identifiers are
//! irrelevant — "the system will automatically use the correct grids when
//! interpreting the login attempt" — so the attacker simply submits guessed
//! click sequences through the normal login path.  The defence is
//! throttling: the account locks after a bounded number of failures.

use gp_geometry::Point;
use gp_passwords::{GraphicalPasswordSystem, StoredPassword};
use serde::{Deserialize, Serialize};

/// Account-lockout policy applied by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockoutPolicy {
    /// Number of consecutive failed attempts after which the account locks.
    /// `None` disables lockout (used to measure raw guess counts).
    pub max_failures: Option<u32>,
}

impl LockoutPolicy {
    /// A typical deployment: three strikes.
    pub fn three_strikes() -> Self {
        Self {
            max_failures: Some(3),
        }
    }

    /// No lockout at all.
    pub fn unlimited() -> Self {
        Self { max_failures: None }
    }
}

/// Result of an online attack against a single account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Whether a guess was accepted before lockout.
    pub succeeded: bool,
    /// Number of guesses submitted (including the successful one, if any).
    pub attempts: u64,
    /// Whether the account ended up locked.
    pub locked_out: bool,
}

/// An online guessing campaign: an ordered list of guesses (highest priority
/// first) submitted through the login interface.
#[derive(Debug, Clone)]
pub struct OnlineAttack {
    guesses: Vec<Vec<Point>>,
}

impl OnlineAttack {
    /// Build an attack from an ordered guess list.
    pub fn new(guesses: Vec<Vec<Point>>) -> Self {
        Self { guesses }
    }

    /// Number of prepared guesses.
    pub fn guess_count(&self) -> usize {
        self.guesses.len()
    }

    /// Run the campaign against one account.
    pub fn run(
        &self,
        system: &GraphicalPasswordSystem,
        stored: &StoredPassword,
        policy: LockoutPolicy,
    ) -> OnlineOutcome {
        let mut failures = 0u32;
        let mut attempts = 0u64;
        for guess in &self.guesses {
            if let Some(max) = policy.max_failures {
                if failures >= max {
                    return OnlineOutcome {
                        succeeded: false,
                        attempts,
                        locked_out: true,
                    };
                }
            }
            attempts += 1;
            // Structurally invalid guesses (wrong count, outside the image)
            // are still counted as failed attempts by the server.
            let accepted = system.verify(stored, guess).unwrap_or(false);
            if accepted {
                return OnlineOutcome {
                    succeeded: true,
                    attempts,
                    locked_out: false,
                };
            }
            failures += 1;
        }
        let locked_out = policy
            .max_failures
            .map(|max| failures >= max)
            .unwrap_or(false);
        OnlineOutcome {
            succeeded: false,
            attempts,
            locked_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, PasswordPolicy};

    fn setup() -> (GraphicalPasswordSystem, StoredPassword, Vec<Point>) {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::centered(9),
            1,
        );
        let original = vec![
            Point::new(44.0, 55.0),
            Point::new(140.0, 95.0),
            Point::new(260.0, 170.0),
            Point::new(360.0, 240.0),
            Point::new(110.0, 310.0),
        ];
        let stored = system.enroll("victim", &original).unwrap();
        (system, stored, original)
    }

    fn wrong_guess(i: f64) -> Vec<Point> {
        (0..5)
            .map(|j| Point::new(5.0 + i * 13.0 + j as f64, 5.0 + i * 7.0))
            .collect()
    }

    #[test]
    fn lockout_stops_the_attack_after_max_failures() {
        let (system, stored, original) = setup();
        // Correct guess hidden behind 10 wrong ones.
        let mut guesses: Vec<Vec<Point>> = (0..10).map(|i| wrong_guess(i as f64)).collect();
        guesses.push(original);
        let attack = OnlineAttack::new(guesses);
        let outcome = attack.run(&system, &stored, LockoutPolicy::three_strikes());
        assert!(!outcome.succeeded);
        assert!(outcome.locked_out);
        assert_eq!(outcome.attempts, 3);
    }

    #[test]
    fn early_correct_guess_succeeds_before_lockout() {
        let (system, stored, original) = setup();
        let guesses = vec![wrong_guess(1.0), original.clone(), wrong_guess(2.0)];
        let attack = OnlineAttack::new(guesses);
        let outcome = attack.run(&system, &stored, LockoutPolicy::three_strikes());
        assert!(outcome.succeeded);
        assert!(!outcome.locked_out);
        assert_eq!(outcome.attempts, 2);
    }

    #[test]
    fn unlimited_policy_walks_the_whole_list() {
        let (system, stored, original) = setup();
        let mut guesses: Vec<Vec<Point>> = (0..20).map(|i| wrong_guess(i as f64)).collect();
        guesses.push(original);
        let attack = OnlineAttack::new(guesses);
        let outcome = attack.run(&system, &stored, LockoutPolicy::unlimited());
        assert!(outcome.succeeded);
        assert_eq!(outcome.attempts, 21);
    }

    #[test]
    fn exhausted_guess_list_without_success() {
        let (system, stored, _) = setup();
        let attack = OnlineAttack::new((0..5).map(|i| wrong_guess(i as f64)).collect());
        let outcome = attack.run(&system, &stored, LockoutPolicy::unlimited());
        assert!(!outcome.succeeded);
        assert!(!outcome.locked_out);
        assert_eq!(outcome.attempts, 5);
    }

    #[test]
    fn structurally_invalid_guesses_count_as_failures() {
        let (system, stored, _) = setup();
        // Guesses with the wrong click count.
        let attack = OnlineAttack::new(vec![vec![Point::new(1.0, 1.0)]; 5]);
        let outcome = attack.run(&system, &stored, LockoutPolicy::three_strikes());
        assert!(!outcome.succeeded);
        assert!(outcome.locked_out);
        assert_eq!(outcome.attempts, 3);
    }
}
