//! Multi-threaded evaluation of an offline attack over a target population.
//!
//! The Figure 7/8 experiments evaluate the dictionary against hundreds of
//! target passwords for a sweep of scheme parameters; each target is
//! independent, so the work fans out over a scoped thread pool
//! (crossbeam), merging per-thread [`AttackSummary`] values at the end.

use crate::metrics::AttackSummary;
use crate::offline::OfflineKnownGridAttack;
use gp_geometry::Point;
use gp_passwords::StoredPassword;

/// Evaluate `attack` against every `(stored, original clicks)` target,
/// splitting the population across `threads` worker threads.
///
/// `threads == 0` or `1`, or a population smaller than the thread count,
/// falls back to the single-threaded path.
pub fn evaluate_population_parallel(
    attack: &OfflineKnownGridAttack,
    targets: &[(StoredPassword, Vec<Point>)],
    threads: usize,
) -> AttackSummary {
    if threads <= 1 || targets.len() <= threads {
        return attack.evaluate_population(targets);
    }
    let chunk_size = targets.len().div_ceil(threads);
    let mut total = AttackSummary::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in targets.chunks(chunk_size) {
            handles.push(scope.spawn(move |_| attack.evaluate_population(chunk)));
        }
        for handle in handles {
            let partial = handle.join().expect("attack worker panicked");
            total.merge(&partial);
        }
    })
    .expect("crossbeam scope failed");
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::ClickPointPool;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, GraphicalPasswordSystem, PasswordPolicy};

    fn build_targets(count: usize) -> (OfflineKnownGridAttack, Vec<(StoredPassword, Vec<Point>)>) {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::centered(9),
            1,
        );
        let mut targets = Vec::new();
        let mut pool_points = Vec::new();
        for i in 0..count {
            // Even-indexed targets live in the left half of the image and
            // their exact click-points are put in the pool; odd-indexed
            // targets live in the right half, far (>> tolerance) from every
            // pool point, so exactly half the population is crackable.
            let base_x = if i % 2 == 0 { 20.0 + i as f64 } else { 250.0 + i as f64 };
            let base_y = 15.0 + i as f64 * 2.0;
            let clicks: Vec<Point> = (0..5)
                .map(|j| Point::new(base_x + j as f64 * 30.0, base_y + j as f64 * 40.0))
                .collect();
            if i % 2 == 0 {
                pool_points.extend(clicks.iter().copied());
            }
            let stored = system.enroll(&format!("user{i}"), &clicks).unwrap();
            targets.push((stored, clicks));
        }
        (
            OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 5)),
            targets,
        )
    }

    #[test]
    fn parallel_result_matches_sequential() {
        let (attack, targets) = build_targets(40);
        let sequential = attack.evaluate_population(&targets);
        for threads in [2, 4, 8] {
            let parallel = evaluate_population_parallel(&attack, &targets, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        assert_eq!(sequential.targets, 40);
        assert_eq!(sequential.cracked, 20);
    }

    #[test]
    fn degenerate_thread_counts_fall_back_to_sequential() {
        let (attack, targets) = build_targets(6);
        let s0 = evaluate_population_parallel(&attack, &targets, 0);
        let s1 = evaluate_population_parallel(&attack, &targets, 1);
        let s100 = evaluate_population_parallel(&attack, &targets, 100);
        assert_eq!(s0, s1);
        assert_eq!(s1, s100);
        assert_eq!(s1.targets, 6);
    }

    #[test]
    fn empty_population_is_empty_summary() {
        let (attack, _) = build_targets(2);
        let summary = evaluate_population_parallel(&attack, &[], 4);
        assert_eq!(summary, AttackSummary::new());
    }
}
