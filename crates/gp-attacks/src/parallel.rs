//! Multi-threaded evaluation of an offline attack over a target population.
//!
//! The Figure 7/8 experiments evaluate the dictionary against hundreds of
//! target passwords for a sweep of scheme parameters; each target is
//! independent, so the work fans out over a scoped thread pool.
//!
//! Scheduling is **work-stealing by shared index** rather than static
//! chunking: every worker repeatedly claims the next unprocessed target
//! from a shared atomic counter.  Static `chunks(n/threads)` splits — the
//! previous implementation — leave whole threads idle whenever per-target
//! cost is skewed (e.g. one user's grid squares intersect a dense hotspot
//! region while another's match nothing), and silently degraded to fully
//! sequential evaluation whenever `targets.len() <= threads`.  The shared
//! counter keeps every worker busy until the population is drained and
//! parallelizes any population with at least two targets.

use crate::metrics::AttackSummary;
use crate::offline::OfflineKnownGridAttack;
use gp_geometry::Point;
use gp_passwords::StoredPassword;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`evaluate_population_auto`]: the
/// machine's available parallelism, falling back to 1 when it cannot be
/// determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Evaluate `attack` against every `(stored, original clicks)` target with
/// one worker per available hardware thread.
pub fn evaluate_population_auto(
    attack: &OfflineKnownGridAttack,
    targets: &[(StoredPassword, Vec<Point>)],
) -> AttackSummary {
    evaluate_population_parallel(attack, targets, default_threads())
}

/// Evaluate `attack` against every `(stored, original clicks)` target,
/// fanning the population out over up to `threads` work-stealing workers.
///
/// `threads == 0` or `1`, or a population of fewer than two targets, falls
/// back to the single-threaded path; any larger population is genuinely
/// parallelized (spawning `min(threads, targets.len())` workers).  The
/// result is bit-identical to [`OfflineKnownGridAttack::evaluate_population`]
/// for every thread count.
pub fn evaluate_population_parallel(
    attack: &OfflineKnownGridAttack,
    targets: &[(StoredPassword, Vec<Point>)],
    threads: usize,
) -> AttackSummary {
    if threads <= 1 || targets.len() <= 1 {
        return attack.evaluate_population(targets);
    }
    evaluate_work_stealing(attack, targets, threads).0
}

/// Work-stealing core; returns the summary and the number of workers
/// actually spawned (exposed for the scheduling regression tests).
fn evaluate_work_stealing(
    attack: &OfflineKnownGridAttack,
    targets: &[(StoredPassword, Vec<Point>)],
    threads: usize,
) -> (AttackSummary, usize) {
    let workers = threads.min(targets.len());
    let next = AtomicUsize::new(0);
    let mut total = AttackSummary::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut partial = AttackSummary::new();
                    loop {
                        // gp-lint: allow(L6, work-index claim: only atomicity matters; targets are read-only)
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some((stored, original)) = targets.get(index) else {
                            break;
                        };
                        partial.record(attack.cracks(stored, original));
                    }
                    partial
                })
            })
            .collect();
        for handle in handles {
            total.merge(&handle.join().expect("attack worker panicked"));
        }
    });
    (total, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::ClickPointPool;
    use gp_geometry::ImageDims;
    use gp_passwords::{DiscretizationConfig, GraphicalPasswordSystem, PasswordPolicy};

    fn build_targets(count: usize) -> (OfflineKnownGridAttack, Vec<(StoredPassword, Vec<Point>)>) {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::centered(9),
            1,
        );
        let mut targets = Vec::new();
        let mut pool_points = Vec::new();
        for i in 0..count {
            // Even-indexed targets live in the left half of the image and
            // their exact click-points are put in the pool; odd-indexed
            // targets live in the right half, far (>> tolerance) from every
            // pool point, so exactly half the population is crackable.
            let base_x = if i % 2 == 0 {
                20.0 + i as f64
            } else {
                250.0 + i as f64
            };
            let base_y = 15.0 + i as f64 * 2.0;
            let clicks: Vec<Point> = (0..5)
                .map(|j| Point::new(base_x + j as f64 * 30.0, base_y + j as f64 * 40.0))
                .collect();
            if i % 2 == 0 {
                pool_points.extend(clicks.iter().copied());
            }
            let stored = system.enroll(&format!("user{i}"), &clicks).unwrap();
            targets.push((stored, clicks));
        }
        (
            OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 5)),
            targets,
        )
    }

    #[test]
    fn parallel_result_matches_sequential() {
        let (attack, targets) = build_targets(40);
        let sequential = attack.evaluate_population(&targets);
        for threads in [2, 4, 8] {
            let parallel = evaluate_population_parallel(&attack, &targets, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        assert_eq!(sequential.targets, 40);
        assert_eq!(sequential.cracked, 20);
    }

    #[test]
    fn degenerate_thread_counts_fall_back_to_sequential() {
        let (attack, targets) = build_targets(6);
        let s0 = evaluate_population_parallel(&attack, &targets, 0);
        let s1 = evaluate_population_parallel(&attack, &targets, 1);
        let s100 = evaluate_population_parallel(&attack, &targets, 100);
        assert_eq!(s0, s1);
        assert_eq!(s1, s100);
        assert_eq!(s1.targets, 6);
    }

    #[test]
    fn equal_target_and_thread_counts_actually_parallelize() {
        // Regression: the static-chunking implementation fell back to the
        // sequential path whenever `targets.len() <= threads`, so a
        // 4-target/4-thread run used one core.  Work stealing must spawn a
        // worker per target here — and still match the sequential result.
        let (attack, targets) = build_targets(4);
        let sequential = attack.evaluate_population(&targets);
        let (summary, workers) = evaluate_work_stealing(&attack, &targets, 4);
        assert_eq!(workers, 4, "4 targets / 4 threads must spawn 4 workers");
        assert_eq!(summary, sequential);
        // Oversubscribed thread counts clamp to the population size instead
        // of spawning idle workers.
        let (summary, workers) = evaluate_work_stealing(&attack, &targets, 64);
        assert_eq!(workers, 4);
        assert_eq!(summary, sequential);
    }

    #[test]
    fn auto_thread_count_matches_sequential() {
        let (attack, targets) = build_targets(10);
        assert!(default_threads() >= 1);
        assert_eq!(
            evaluate_population_auto(&attack, &targets),
            attack.evaluate_population(&targets)
        );
    }

    #[test]
    fn two_targets_use_two_workers() {
        let (attack, targets) = build_targets(2);
        let (summary, workers) = evaluate_work_stealing(&attack, &targets, 8);
        assert_eq!(workers, 2);
        assert_eq!(summary, attack.evaluate_population(&targets));
    }

    #[test]
    fn empty_population_is_empty_summary() {
        let (attack, _) = build_targets(2);
        let summary = evaluate_population_parallel(&attack, &[], 4);
        assert_eq!(summary, AttackSummary::new());
    }
}
