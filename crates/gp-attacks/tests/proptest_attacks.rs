//! Property-based equivalence tests for the attack fan-out: the
//! work-stealing parallel evaluator must be indistinguishable from the
//! sequential one for every thread count and population shape, and the
//! batched brute force must agree with per-entry verification.

use gp_attacks::{evaluate_population_parallel, ClickPointPool, OfflineKnownGridAttack};
use gp_geometry::{ImageDims, Point};
use gp_passwords::prelude::*;
use proptest::prelude::*;

/// A population of enrolled targets derived from a seed-like layout: some
/// targets near pool points (crackable), some far (uncrackable).
fn build_population(
    count: usize,
    pool_stride: f64,
    near_fraction_mod: usize,
) -> (OfflineKnownGridAttack, Vec<(StoredPassword, Vec<Point>)>) {
    let system = GraphicalPasswordSystem::new(
        PasswordPolicy::new(ImageDims::STUDY, 3),
        DiscretizationConfig::centered(9),
        1,
    );
    let mut targets = Vec::new();
    let mut pool_points = Vec::new();
    for i in 0..count {
        let near = near_fraction_mod != 0 && i % near_fraction_mod == 0;
        let base_x = 20.0 + (i as f64 * pool_stride) % 300.0;
        let base_y = 15.0 + (i as f64 * 7.0) % 250.0;
        let clicks: Vec<Point> = (0..3)
            .map(|j| Point::new(base_x + j as f64 * 40.0, base_y + j as f64 * 20.0))
            .collect();
        if near {
            pool_points.extend(clicks.iter().map(|p| p.offset(2.0, -2.0)));
        }
        let stored = system.enroll(&format!("user{i}"), &clicks).unwrap();
        targets.push((stored, clicks));
    }
    if pool_points.is_empty() {
        pool_points.push(Point::new(440.0, 320.0));
        pool_points.push(Point::new(5.0, 5.0));
        pool_points.push(Point::new(225.0, 160.0));
    }
    (
        OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 3)),
        targets,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Work stealing ≡ sequential for every thread count, including the
    /// degenerate (0, 1), the previously-buggy equal-to-population, and the
    /// oversubscribed (100) cases.
    #[test]
    fn work_stealing_equals_sequential(
        count in 0usize..24,
        stride in 3.0..40.0f64,
        near_mod in 0usize..5,
    ) {
        let (attack, targets) = build_population(count, stride, near_mod);
        let sequential = attack.evaluate_population(&targets);
        prop_assert_eq!(sequential.targets, count);
        for threads in [0usize, 1, 2, 8, 100, count.max(1)] {
            let parallel = evaluate_population_parallel(&attack, &targets, threads);
            prop_assert_eq!(parallel, sequential, "threads = {}", threads);
        }
    }

    /// The batched, deduplicating brute force agrees with per-entry
    /// verification through the public API on arbitrary small pools.
    #[test]
    fn batched_brute_force_equals_per_entry_verify(
        pool_xs in proptest::collection::vec(5.0..445.0f64, 4..7),
        pool_y in 10.0..320.0f64,
        offset in -3.0..3.0f64,
        limit in 0u64..200,
    ) {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 3),
            DiscretizationConfig::centered(6),
            1,
        );
        let original = vec![
            Point::new(60.0, 60.0),
            Point::new(200.0, 120.0),
            Point::new(320.0, 250.0),
        ];
        let stored = system.enroll("victim", &original).unwrap();
        // A pool of arbitrary points plus (sometimes) near-misses of the
        // real password, so both crackable and uncrackable cases occur.
        let mut points: Vec<Point> = pool_xs.iter().map(|&x| Point::new(x, pool_y)).collect();
        points.extend(original.iter().map(|p| p.offset(offset * 4.0, offset)));
        let attack = OfflineKnownGridAttack::new(ClickPointPool::new(points, 3));

        let batched = attack.brute_force(&system, &stored, limit);

        let mut guesses = 0u64;
        let mut expected_success = None;
        for entry in attack.pool().enumerate() {
            if guesses >= limit {
                break;
            }
            guesses += 1;
            if system.verify(&stored, &entry).unwrap_or(false) {
                expected_success = Some(guesses - 1);
                break;
            }
        }
        prop_assert_eq!(batched.success_at, expected_success);
        prop_assert_eq!(batched.guesses, guesses);
    }
}
