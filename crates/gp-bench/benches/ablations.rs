//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * Robust grid-selection policy — "first r-safe grid" (the literal
//!   specification) versus "most centered" (the paper's optimal
//!   implementation choice): enrollment cost and resulting false-accept
//!   exposure.
//! * Iterated-hashing depth — verification latency at h^1, h^1000, h^10000
//!   (the paper's +10-bits-per-1000-iterations hardening).
//! * Dictionary evaluation strategy — the exact matching shortcut versus
//!   honest brute-force enumeration on a reduced pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_attacks::{ClickPointPool, OfflineKnownGridAttack};
use gp_bench::{bench_field_dataset, example_clicks};
use gp_discretization::prelude::*;
use gp_geometry::{ImageDims, Point};
use gp_passwords::prelude::*;

fn ablation_robust_grid_policy(c: &mut Criterion) {
    let dataset = bench_field_dataset();
    // Quantify the effect of the policy on false accepts (printed once).
    for (label, policy) in [
        ("first-safe", GridSelectionPolicy::FirstSafe),
        ("most-centered", GridSelectionPolicy::MostCentered),
    ] {
        let scheme = RobustDiscretization::with_policy(6.0, policy).unwrap();
        let mut false_accepts = 0usize;
        let mut logins = 0usize;
        for login in &dataset.logins {
            let original = &dataset.passwords[login.password_index].clicks;
            logins += 1;
            let within = original
                .iter()
                .zip(&login.clicks)
                .all(|(o, a)| o.chebyshev(a) <= 6.5);
            let accepted = original
                .iter()
                .zip(&login.clicks)
                .all(|(o, a)| scheme.accepts(o, a));
            if accepted && !within {
                false_accepts += 1;
            }
        }
        eprintln!(
            "[ablation:grid-policy] {label:>13}: false accepts {:.1}% of {} logins (r = 6)",
            100.0 * false_accepts as f64 / logins as f64,
            logins
        );
    }

    let mut group = c.benchmark_group("ablation_robust_grid_policy");
    let p = Point::new(233.0, 187.0);
    for (label, policy) in [
        ("first_safe", GridSelectionPolicy::FirstSafe),
        ("most_centered", GridSelectionPolicy::MostCentered),
    ] {
        let scheme = RobustDiscretization::with_policy(6.0, policy).unwrap();
        group.bench_function(format!("enroll_{label}"), |b| {
            b.iter(|| scheme.enroll(black_box(&p)))
        });
    }
    group.finish();
}

fn ablation_iterated_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iterated_hashing");
    group.sample_size(20);
    let clicks = example_clicks();
    let attempt: Vec<Point> = clicks.iter().map(|p| p.offset(3.0, -3.0)).collect();
    for iterations in [1u32, 1000, 10_000] {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            DiscretizationConfig::centered(9),
            iterations,
        );
        let stored = system.enroll("bench-user", &clicks).unwrap();
        group.bench_function(format!("verify_h{iterations}"), |b| {
            b.iter(|| {
                system
                    .verify(black_box(&stored), black_box(&attempt))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_dictionary_strategy(c: &mut Criterion) {
    // Small pool so the brute-force side stays tractable: 8 points, 3 clicks
    // → 336 hashed guesses per evaluation.
    let clicks = [
        Point::new(60.0, 60.0),
        Point::new(200.0, 120.0),
        Point::new(320.0, 250.0),
    ];
    let system = GraphicalPasswordSystem::new(
        PasswordPolicy::new(ImageDims::STUDY, 3),
        DiscretizationConfig::centered(6),
        1,
    );
    let stored = system.enroll("victim", &clicks).unwrap();
    let mut pool_points: Vec<Point> = clicks.iter().map(|p| p.offset(2.0, -2.0)).collect();
    pool_points.extend((0..5).map(|i| Point::new(20.0 + i as f64 * 70.0, 300.0)));
    let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 3));

    let shortcut = attack.cracks(&stored, &clicks);
    let brute = attack.brute_force(&system, &stored, u64::MAX);
    eprintln!(
        "[ablation:dictionary] shortcut cracked = {shortcut}, brute force cracked = {} after {} hashed guesses",
        brute.success_at.is_some(),
        brute.guesses
    );
    assert_eq!(shortcut, brute.success_at.is_some());

    let mut group = c.benchmark_group("ablation_dictionary_strategy");
    group.sample_size(20);
    group.bench_function("matching_shortcut", |b| {
        b.iter(|| attack.cracks(black_box(&stored), black_box(&clicks)))
    });
    group.bench_function("brute_force_enumeration", |b| {
        b.iter(|| attack.brute_force(black_box(&system), black_box(&stored), u64::MAX))
    });
    group.finish();
}

/// The batched zero-allocation guess pipeline vs hashing each dictionary
/// entry through the public `verify` API — the ablation for this PR's
/// offline-attack rewrite (pre-image dedupe + multi-lane `h^k`).
fn ablation_batched_brute_force(c: &mut Criterion) {
    let clicks = [
        Point::new(60.0, 60.0),
        Point::new(200.0, 120.0),
        Point::new(320.0, 250.0),
    ];
    let system = GraphicalPasswordSystem::new(
        PasswordPolicy::new(ImageDims::STUDY, 3),
        DiscretizationConfig::centered(6),
        100,
    );
    // A target the pool cannot crack, so both sides walk every entry.
    let far: Vec<Point> = clicks.iter().map(|p| p.offset(80.0, 40.0)).collect();
    let stored = system.enroll("victim", &far).unwrap();
    // Clustered pool: near-duplicate points discretize identically, giving
    // the dedupe stage real work, as hotspot-harvested dictionaries do.
    let mut pool_points: Vec<Point> = clicks
        .iter()
        .flat_map(|p| [p.offset(0.0, 0.0), p.offset(1.5, -1.5)])
        .collect();
    pool_points.extend([Point::new(30.0, 300.0), Point::new(420.0, 40.0)]);
    let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 3));

    let outcome = attack.brute_force(&system, &stored, u64::MAX);
    eprintln!(
        "[ablation:batched-brute-force] {} entries walked, {} unique pre-images hashed ({}x dedupe)",
        outcome.guesses,
        outcome.hashed,
        outcome.guesses / outcome.hashed.max(1)
    );

    let mut group = c.benchmark_group("ablation_batched_brute_force");
    group.sample_size(10);
    group.bench_function("per_entry_verify", |b| {
        b.iter(|| {
            let mut cracked = false;
            for entry in attack.pool().enumerate() {
                cracked |= system.verify(black_box(&stored), &entry).unwrap_or(false);
            }
            cracked
        })
    });
    group.bench_function("batched_dedupe_lanes", |b| {
        b.iter(|| attack.brute_force(black_box(&system), black_box(&stored), u64::MAX))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_robust_grid_policy,
    ablation_iterated_hashing,
    ablation_dictionary_strategy,
    ablation_batched_brute_force
);
criterion_main!(benches);
