//! Figure 7 regeneration bench: offline human-seeded dictionary attack with
//! known grid identifiers, both schemes at equal grid-square sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_analysis::figure7;
use gp_bench::{bench_field_dataset, bench_lab_dataset};

fn bench_figure7(c: &mut Criterion) {
    let field = bench_field_dataset();
    let lab = bench_lab_dataset();

    eprintln!("\n[figure7] offline dictionary attack, equal grid-square sizes:");
    for p in figure7(field, lab, 2) {
        eprintln!(
            "[figure7] {:>5}  {:>6}  {:>9}  cracked {:>3}/{:<3}  {:>5.1}%",
            p.image,
            p.parameter,
            p.scheme.label(),
            p.cracked,
            p.targets,
            p.percent_cracked
        );
    }

    let mut group = c.benchmark_group("figure7_offline_attack");
    group.sample_size(10);
    group.bench_function("equal_grid_sizes_full_sweep", |b| {
        b.iter(|| figure7(black_box(field), black_box(lab), 2))
    });
    group.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
