//! Figure 8 regeneration bench: offline human-seeded dictionary attack with
//! known grid identifiers, both schemes at equal guaranteed tolerance r —
//! the paper's headline security comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_analysis::{crack_percentages, figure8};
use gp_bench::{bench_field_dataset, bench_lab_dataset};

fn bench_figure8(c: &mut Criterion) {
    let field = bench_field_dataset();
    let lab = bench_lab_dataset();

    let points = figure8(field, lab, 2);
    eprintln!("\n[figure8] offline dictionary attack, equal r:");
    for p in &points {
        eprintln!(
            "[figure8] {:>5}  {:>4}  {:>9}  cracked {:>3}/{:<3}  {:>5.1}%",
            p.image,
            p.parameter,
            p.scheme.label(),
            p.cracked,
            p.targets,
            p.percent_cracked
        );
    }
    for image in ["cars", "pool"] {
        if let Some((robust, centered)) = crack_percentages(&points, image, "r=6") {
            eprintln!(
                "[figure8] headline r=6 {image}: robust {robust:.1}% vs centered {centered:.1}% \
                 (paper: 45.1% vs 14.8% on Cars)"
            );
        }
    }

    let mut group = c.benchmark_group("figure8_offline_attack");
    group.sample_size(10);
    group.bench_function("equal_r_full_sweep", |b| {
        b.iter(|| figure8(black_box(field), black_box(lab), 2))
    });
    group.finish();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
