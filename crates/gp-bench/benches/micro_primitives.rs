//! Micro-benchmarks of the primitives on the login hot path: SHA-256,
//! iterated hashing, per-click discretization and full password
//! verification under both schemes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_bench::example_clicks;
use gp_crypto::{iterated_hash, Sha256};
use gp_discretization::prelude::*;
use gp_geometry::{ImageDims, Point};
use gp_passwords::prelude::*;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    let small = vec![0xabu8; 64];
    let large = vec![0xcdu8; 4096];
    group.bench_function("64B", |b| b.iter(|| Sha256::digest(black_box(&small))));
    group.bench_function("4KiB", |b| b.iter(|| Sha256::digest(black_box(&large))));
    group.finish();
}

fn bench_iterated_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_hash");
    for iterations in [1u32, 100, 1000] {
        group.bench_function(format!("h^{iterations}"), |b| {
            b.iter(|| iterated_hash(black_box(b"salt"), black_box(b"discretized password"), iterations))
        });
    }
    group.finish();
}

fn bench_discretization(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretize_click");
    let centered = CenteredDiscretization::from_pixel_tolerance(9);
    let robust = RobustDiscretization::new(9.0).unwrap();
    let p = Point::new(233.0, 187.0);
    group.bench_function("centered_enroll", |b| b.iter(|| centered.enroll(black_box(&p))));
    group.bench_function("robust_enroll", |b| b.iter(|| robust.enroll(black_box(&p))));
    let centered_enrolled = centered.enroll(&p);
    let robust_enrolled = robust.enroll(&p);
    let login = Point::new(238.0, 181.0);
    group.bench_function("centered_locate", |b| {
        b.iter(|| centered.locate(black_box(&centered_enrolled.grid_id), black_box(&login)))
    });
    group.bench_function("robust_locate", |b| {
        b.iter(|| robust.locate(black_box(&robust_enrolled.grid_id), black_box(&login)))
    });
    group.finish();
}

fn bench_password_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("password_verify_5_clicks");
    group.sample_size(30);
    let clicks = example_clicks();
    let attempt: Vec<Point> = clicks.iter().map(|p| p.offset(4.0, -4.0)).collect();
    for (label, config) in [
        ("centered_r9", DiscretizationConfig::centered(9)),
        ("robust_r9", DiscretizationConfig::robust(9.0)),
    ] {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(ImageDims::STUDY, 5),
            config,
            1000,
        );
        let stored = system.enroll("bench-user", &clicks).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| system.verify(black_box(&stored), black_box(&attempt)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_iterated_hash,
    bench_discretization,
    bench_password_verification
);
criterion_main!(benches);
