//! Micro-benchmarks of the primitives on the login hot path: SHA-256,
//! iterated hashing, per-click discretization and full password
//! verification under both schemes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_bench::example_clicks;
use gp_crypto::{iterated_hash, iterated_hash_reference, SaltedHasher, Sha256};
use gp_discretization::prelude::*;
use gp_geometry::{ImageDims, Point};
use gp_passwords::prelude::*;
use gp_passwords::VerifyScratch;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    let small = vec![0xabu8; 64];
    let large = vec![0xcdu8; 4096];
    group.bench_function("64B", |b| b.iter(|| Sha256::digest(black_box(&small))));
    group.bench_function("4KiB", |b| b.iter(|| Sha256::digest(black_box(&large))));
    // One-shot single-block fast path vs the incremental buffer machinery
    // on a hot-path-sized message (salt + digest < one block).
    let block_sized = vec![0x42u8; 40];
    group.bench_function("40B_one_shot", |b| {
        b.iter(|| Sha256::digest(black_box(&block_sized)))
    });
    group.bench_function("40B_incremental", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            h.update(black_box(&block_sized));
            h.finalize()
        })
    });
    group.finish();
}

fn bench_iterated_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_hash");
    for iterations in [1u32, 100, 1000] {
        group.bench_function(format!("h^{iterations}"), |b| {
            b.iter(|| {
                iterated_hash(
                    black_box(b"salt"),
                    black_box(b"discretized password"),
                    iterations,
                )
            })
        });
    }
    group.finish();
}

/// The ablation the optimization work is judged by: the seed's
/// per-round incremental implementation vs the one-shot/midstate scalar
/// path vs the multi-lane batched path, at the paper's `h^1000`.
fn bench_iterated_hash_fast_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_hash_fast_paths");
    group.sample_size(12);
    let pre_image = vec![0x5au8; 180];

    // Short salt (one block per round): the win is overhead elimination.
    let salt = b"gp-passwords/v1\x1falice";
    group.bench_function("h1000_short_salt_reference", |b| {
        b.iter(|| iterated_hash_reference(black_box(salt), black_box(&pre_image), 1000))
    });
    group.bench_function("h1000_short_salt_one_shot", |b| {
        b.iter(|| iterated_hash(black_box(salt), black_box(&pre_image), 1000))
    });

    // 64-byte salt: midstate halves the compressions per round.
    let long_salt = [0x77u8; 64];
    group.bench_function("h1000_64B_salt_reference", |b| {
        b.iter(|| iterated_hash_reference(black_box(&long_salt), black_box(&pre_image), 1000))
    });
    group.bench_function("h1000_64B_salt_midstate", |b| {
        b.iter(|| iterated_hash(black_box(&long_salt), black_box(&pre_image), 1000))
    });
    group.finish();
}

/// Lane-count sweep for the batched path (per 32-message batch).
fn bench_iterated_hash_lanes(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_hash_lanes");
    group.sample_size(12);
    let messages: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 180]).collect();
    let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
    let hasher = SaltedHasher::new(b"gp-passwords/v1\x1falice");
    let mut out = Vec::new();
    macro_rules! lanes {
        ($($l:literal),*) => {$(
            group.bench_function(concat!("h1000_batch32_lanes_", stringify!($l)), |b| {
                b.iter(|| {
                    hasher.iterated_many_lanes_into::<$l>(black_box(&refs), 1000, &mut out);
                    black_box(&out);
                })
            });
        )*};
    }
    lanes!(1, 2, 4, 8, 16);
    group.finish();
}

fn bench_discretization(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretize_click");
    let centered = CenteredDiscretization::from_pixel_tolerance(9);
    let robust = RobustDiscretization::new(9.0).unwrap();
    let p = Point::new(233.0, 187.0);
    group.bench_function("centered_enroll", |b| {
        b.iter(|| centered.enroll(black_box(&p)))
    });
    group.bench_function("robust_enroll", |b| b.iter(|| robust.enroll(black_box(&p))));
    let centered_enrolled = centered.enroll(&p);
    let robust_enrolled = robust.enroll(&p);
    let login = Point::new(238.0, 181.0);
    group.bench_function("centered_locate", |b| {
        b.iter(|| centered.locate(black_box(&centered_enrolled.grid_id), black_box(&login)))
    });
    group.bench_function("robust_locate", |b| {
        b.iter(|| robust.locate(black_box(&robust_enrolled.grid_id), black_box(&login)))
    });
    group.finish();
}

fn bench_password_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("password_verify_5_clicks");
    group.sample_size(30);
    let clicks = example_clicks();
    let attempt: Vec<Point> = clicks.iter().map(|p| p.offset(4.0, -4.0)).collect();
    for (label, config) in [
        ("centered_r9", DiscretizationConfig::centered(9)),
        ("robust_r9", DiscretizationConfig::robust(9.0)),
    ] {
        let system =
            GraphicalPasswordSystem::new(PasswordPolicy::new(ImageDims::STUDY, 5), config, 1000);
        let stored = system.enroll("bench-user", &clicks).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                system
                    .verify(black_box(&stored), black_box(&attempt))
                    .unwrap()
            })
        });
        // The allocation-free path a login server under load runs.
        let mut scratch = VerifyScratch::new();
        group.bench_function(format!("{label}_scratch"), |b| {
            b.iter(|| {
                system
                    .verify_with_scratch(black_box(&stored), black_box(&attempt), &mut scratch)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_iterated_hash,
    bench_iterated_hash_fast_paths,
    bench_iterated_hash_lanes,
    bench_discretization,
    bench_password_verification
);
criterion_main!(benches);
