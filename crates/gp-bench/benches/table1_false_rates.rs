//! Table 1 regeneration bench: false accept/reject rates for Robust
//! Discretization when both schemes use equal grid-square sizes.
//!
//! The reproduced rows are printed once (visible in `cargo bench` output /
//! `bench_output.txt`); the benchmark then measures the cost of the full
//! replay over the bench-scale dataset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_analysis::{false_rates::TABLE1_GRID_SIZES, table1};
use gp_bench::bench_field_dataset;

fn bench_table1(c: &mut Criterion) {
    let dataset = bench_field_dataset();

    // Print the reproduced table once.
    eprintln!(
        "\n[table1] grid sizes {:?} on {} logins:",
        TABLE1_GRID_SIZES,
        dataset.login_count()
    );
    for row in table1(dataset) {
        eprintln!(
            "[table1] {:>6}  robust r={:<5.2} false accept {:>5.1}%  false reject {:>5.1}%  (centered: {:.1}% / {:.1}%)",
            row.label,
            row.robust_r,
            row.false_accept_pct,
            row.false_reject_pct,
            row.centered_false_accept_pct,
            row.centered_false_reject_pct,
        );
    }

    let mut group = c.benchmark_group("table1_false_rates");
    group.sample_size(10);
    group.bench_function("replay_equal_grid_sizes", |b| {
        b.iter(|| table1(black_box(dataset)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
