//! Table 2 regeneration bench: false accept/reject rates for Robust
//! Discretization when both schemes guarantee the same tolerance r.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gp_analysis::{false_rates::TABLE2_R_VALUES, table2};
use gp_bench::bench_field_dataset;

fn bench_table2(c: &mut Criterion) {
    let dataset = bench_field_dataset();

    eprintln!(
        "\n[table2] r values {:?} on {} logins:",
        TABLE2_R_VALUES,
        dataset.login_count()
    );
    for row in table2(dataset) {
        eprintln!(
            "[table2] {:>4}  robust grid {:>5}  false accept {:>5.1}%  false reject {:>4.1}%  (centered: {:.1}% / {:.1}%)",
            row.label,
            format!("{:.0}x{:.0}", row.robust_grid_size, row.robust_grid_size),
            row.false_accept_pct,
            row.false_reject_pct,
            row.centered_false_accept_pct,
            row.centered_false_reject_pct,
        );
    }

    let mut group = c.benchmark_group("table2_false_rates");
    group.sample_size(10);
    group.bench_function("replay_equal_r", |b| b.iter(|| table2(black_box(dataset))));
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
