//! Table 3 regeneration bench: theoretical full password space for 5-click
//! passwords across image and grid sizes.  This table is pure arithmetic,
//! so the reproduced values are exact.

use criterion::{criterion_group, criterion_main, Criterion};
use gp_analysis::table3;

fn bench_table3(c: &mut Criterion) {
    eprintln!("\n[table3] image  grid   centered r  robust r  squares  bits");
    for row in table3() {
        eprintln!(
            "[table3] {:>7}  {:>5}  {:>10.1}  {:>8.2}  {:>7}  {:>5.1}",
            row.image.to_string(),
            format!("{:.0}x{:.0}", row.grid_size, row.grid_size),
            row.centered_r,
            row.robust_r,
            row.squares_per_grid,
            row.password_space_bits,
        );
    }

    c.bench_function("table3_password_space", |b| b.iter(table3));
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
