//! `authload` — load generator for the sharded, pipelined netauth server.
//!
//! Drives M client threads × K pipelined login requests against a real TCP
//! server in two configurations and reports logins/sec:
//!
//! * **single_worker** — 1 shard, 1 worker, scalar verification
//!   ([`ServerConfig::single_worker_baseline`]): the pre-sharding serving
//!   shape.
//! * **sharded_pooled** — 4 shards, worker pool, 16-way batch verification
//!   ([`ServerConfig::study_default`]): the serving layer this PR builds.
//!
//! Results merge into `BENCH_results.json` (or `GP_BENCH_OUT`) alongside
//! the `bench_report` micro-benchmarks: per-login medians under
//! `results/authload/...`, logins/sec under `throughput/authload/...`, and
//! the scaling ratio under `speedups/authload_scaling`.  CI's
//! bench-regression gate (`bench_check`) then holds every serving metric
//! to the committed numbers.
//!
//! Environment knobs: `GP_AUTHLOAD_SECS` (measured seconds per trial,
//! default 1.2), `GP_AUTHLOAD_TRIALS` (trials per scenario, best taken,
//! default 5), `GP_AUTHLOAD_THREADS` (client threads, default scales with
//! the host), `GP_AUTHLOAD_PIPELINE` (requests per burst, default 16),
//! `GP_AUTHLOAD_ITERATIONS` (hash iterations, default 3000),
//! `GP_AUTHLOAD_USERS` (enrolled accounts, default 64).

use gp_bench::report::BenchReport;
use gp_geometry::Point;
use gp_netauth::{
    AuthClient, AuthServer, ClientMessage, LoginDecision, ServerConfig, ServerMessage,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The enrolled click sequence for one synthetic user (deterministic,
/// spread over the study image, all well inside the borders).
fn user_clicks(user: usize) -> Vec<Point> {
    (0..5)
        .map(|i| {
            let x = 40.0 + ((user * 37 + i * 83) % 360) as f64;
            let y = 30.0 + ((user * 53 + i * 61) % 260) as f64;
            Point::new(x, y)
        })
        .collect()
}

struct LoadResult {
    logins: u64,
    elapsed: Duration,
    mean_batch: f64,
    worker_connections: Vec<u64>,
    shard_accounts: Vec<usize>,
}

impl LoadResult {
    fn logins_per_sec(&self) -> f64 {
        self.logins as f64 / self.elapsed.as_secs_f64()
    }

    fn ns_per_login(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.logins.max(1) as f64
    }
}

/// Spawn a server under `config`, enroll `users` accounts, then hammer it
/// with `threads` × `pipeline`-deep bursts of correct-password logins for
/// `secs` (after a fixed warmup).  Every response is checked: a rejected
/// or errored login fails the bench loudly rather than producing a fast
/// wrong number.
fn run_scenario(
    label: &str,
    config: ServerConfig,
    users: usize,
    threads: usize,
    pipeline: usize,
    secs: f64,
) -> LoadResult {
    let server = AuthServer::new(config);
    let store = server.store();
    let system = server.system().clone();
    for user in 0..users {
        store
            .enroll(&system, &format!("user{user}"), &user_clicks(user))
            .expect("enroll synthetic user");
    }
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let counted = Arc::new(AtomicU64::new(0));
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let warmup = Duration::from_millis(300);
    let measure = Duration::from_secs_f64(secs);

    let mut clients = Vec::new();
    for thread in 0..threads {
        let counted = Arc::clone(&counted);
        let measuring = Arc::clone(&measuring);
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut client = AuthClient::connect(addr).expect("connect");
            // Each thread walks its own slice of the user space so bursts
            // spread across store shards.
            let mut next_user = thread;
            while !stop.load(Ordering::Relaxed) {
                let burst: Vec<ClientMessage> = (0..pipeline)
                    .map(|i| {
                        let user = (next_user + i * threads) % users;
                        ClientMessage::Login {
                            username: format!("user{user}"),
                            clicks: user_clicks(user),
                        }
                    })
                    .collect();
                next_user = (next_user + pipeline * threads) % users;
                let responses = client.request_pipelined(&burst).expect("pipelined burst");
                for response in &responses {
                    match response {
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Accepted,
                            ..
                        } => {}
                        other => panic!("correct-password login not accepted: {other:?}"),
                    }
                }
                if measuring.load(Ordering::Relaxed) {
                    counted.fetch_add(responses.len() as u64, Ordering::Relaxed);
                }
            }
            let _ = client.quit();
        }));
    }

    std::thread::sleep(warmup);
    let started = Instant::now();
    measuring.store(true, Ordering::Relaxed);
    std::thread::sleep(measure);
    measuring.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("client thread");
    }

    let stats = handle.stats();
    let result = LoadResult {
        logins: counted.load(Ordering::Relaxed),
        elapsed,
        mean_batch: stats.batch.mean_batch(),
        worker_connections: stats.workers.iter().map(|w| w.connections).collect(),
        shard_accounts: stats.shards.iter().map(|s| s.accounts).collect(),
    };
    handle.shutdown();

    eprintln!(
        "[authload] {label:<16} {:>9.0} logins/s  ({} logins / {:.2}s, mean batch {:.1}, \
         shards {:?}, worker conns {:?})",
        result.logins_per_sec(),
        result.logins,
        result.elapsed.as_secs_f64(),
        result.mean_batch,
        result.shard_accounts,
        result.worker_connections,
    );
    result
}

/// Best of `trials` runs: throughput benches take the least-interfered
/// trial, because scheduler noise on a shared host only ever *subtracts*
/// throughput — the max is the closest observation of what the server can
/// actually do, and it is what keeps the CI regression gate stable.
fn run_scenario_best_of(
    label: &str,
    config: ServerConfig,
    users: usize,
    threads: usize,
    pipeline: usize,
    secs: f64,
    trials: usize,
) -> LoadResult {
    let mut best: Option<LoadResult> = None;
    for _ in 0..trials.max(1) {
        let result = run_scenario(label, config.clone(), users, threads, pipeline, secs);
        if best
            .as_ref()
            .is_none_or(|b| result.logins_per_sec() > b.logins_per_sec())
        {
            best = Some(result);
        }
    }
    best.expect("at least one trial")
}

fn main() {
    let secs: f64 = env_or("GP_AUTHLOAD_SECS", 1.2);
    let trials: usize = env_or("GP_AUTHLOAD_TRIALS", 5).max(1);
    // Client threads scale with the host: enough to keep the pipeline fed
    // without thrashing a small core count (client threads compete with
    // server workers for the same CPUs on loopback).
    let default_threads = std::thread::available_parallelism()
        .map(|p| p.get().clamp(2, 8))
        .unwrap_or(2);
    let threads: usize = env_or("GP_AUTHLOAD_THREADS", default_threads).max(1);
    let pipeline: usize = env_or("GP_AUTHLOAD_PIPELINE", 16).max(1);
    // The paper's example is h^1000 "or more"; serving benches default to
    // a hardened 3000-iteration deployment so the measured contrast is
    // dominated by hashing (the part the batch verifier accelerates), not
    // framing.
    let iterations: u32 = env_or("GP_AUTHLOAD_ITERATIONS", 3000).max(1);
    let users: usize = env_or("GP_AUTHLOAD_USERS", 64).max(1);

    let baseline_config = ServerConfig {
        hash_iterations: iterations,
        ..ServerConfig::single_worker_baseline()
    };
    let scaled_config = ServerConfig {
        hash_iterations: iterations,
        workers: std::thread::available_parallelism()
            .map(|p| p.get().clamp(4, 16))
            .unwrap_or(4),
        ..ServerConfig::study_default()
    };
    assert_eq!(scaled_config.shards, 4, "acceptance config is 4 shards");

    eprintln!(
        "[authload] {threads} threads × {pipeline}-deep pipeline, h^{iterations}, \
         {users} users, best of {trials} × {secs:.1}s per scenario"
    );
    let baseline = run_scenario_best_of(
        "single_worker",
        baseline_config,
        users,
        threads,
        pipeline,
        secs,
        trials,
    );
    let scaled = run_scenario_best_of(
        "sharded_pooled",
        scaled_config,
        users,
        threads,
        pipeline,
        secs,
        trials,
    );

    let scaling = scaled.logins_per_sec() / baseline.logins_per_sec();
    eprintln!("[authload] scaling: {scaling:.2}x logins/sec over the single-worker baseline");

    let path = std::env::var("GP_BENCH_OUT").unwrap_or_else(|_| "BENCH_results.json".into());
    let path = std::path::PathBuf::from(path);
    let mut out = BenchReport::load(&path).unwrap_or_default();
    let mut fresh = BenchReport::new();
    fresh.set_result(
        "authload/single_worker_ns_per_login",
        baseline.ns_per_login(),
    );
    fresh.set_result(
        "authload/sharded_pooled_ns_per_login",
        scaled.ns_per_login(),
    );
    fresh.set_throughput(
        "authload/single_worker_logins_per_sec",
        baseline.logins_per_sec(),
    );
    fresh.set_throughput(
        "authload/sharded_pooled_logins_per_sec",
        scaled.logins_per_sec(),
    );
    fresh.set_speedup("authload_scaling", scaling);
    out.merge_from(&fresh);
    out.save(&path).expect("write benchmark report");
    eprintln!("[authload] wrote {}", path.display());
}
