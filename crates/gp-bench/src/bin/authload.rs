//! `authload` — load generator for the netauth serving layer.
//!
//! Drives client threads × pipelined login requests against a real TCP
//! server in several configurations and reports logins/sec:
//!
//! * **single_worker** — 1 shard, 1 blocking worker, scalar verification
//!   ([`ServerConfig::single_worker_baseline`]): the pre-sharding shape.
//! * **sharded_pooled** — 4 shards, blocking worker pool, 16-way batch
//!   verification ([`ServerConfig::pooled_baseline`]): the PR 2 serving
//!   layer.
//! * **reactor** — the epoll reactor with a fixed small thread count
//!   (1 event loop + 3 hash-compute threads), same active load.
//! * **reactor_idle** — the reactor carrying `GP_AUTHLOAD_IDLE`
//!   (default 256) additional *mostly-idle* connections while serving the
//!   same active load: the scenario a blocking pool cannot survive
//!   without one thread per connection.
//! * **reactor_highconc** — connection scaling: `GP_AUTHLOAD_CONNS`
//!   (default 32) concurrently active connections with shallow (4-deep)
//!   pipelines.  A 4-worker pool would strand all but 4 of these
//!   connections; the reactor serves them all and the cross-connection
//!   turn queue keeps the hash lanes full — reported as the
//!   `reactor_highconc_mean_batch` occupancy metric.
//! * **reactor_durable** — the reactor serving the same login load with
//!   the crash-safe store enabled (`fsync: Always` by default, overridable
//!   via `GP_AUTHLOAD_FSYNC` = `always` / `batch:N` / `never`): every
//!   burst carries one enrollment of a fresh account, whose WAL record is
//!   group-committed (fsynced) before the `EnrollOk` ack, while the
//!   background thread compacts per-shard logs.  The metric counts all
//!   acked operations (15 logins + 1 durable enrollment per 16-deep
//!   burst), so it prices the durability tax the README's fsync-policy
//!   table quotes.
//! * **reactor_groupcommit** — the durable reactor under *enroll-heavy*
//!   load: `GP_AUTHLOAD_GROUP_ENROLLS` (default 4) fresh enrollments per
//!   16-deep burst, all sharing one group-commit fsync per shard per
//!   coalesced compute batch.  Tracks how well the barrier amortizes as
//!   the write fraction grows.
//! * **cluster_sync** — a 3-node replicated cluster
//!   ([`gp_netauth::Cluster`], per-node durable stores, synchronous
//!   WAL-streaming replication) driven through the ring-routing
//!   [`gp_netauth::ClusterClient`]: each thread interleaves fresh
//!   enrollments (acked only after the backup's durable apply) with
//!   logins of its own earlier accounts.  This prices the full
//!   replication tax — ring routing, the extra loopback round trip, and
//!   the backup's WAL append — on top of the single-node durable number.
//! * **cluster_rejoin** — the same replicated load, but one node is
//!   killed a quarter into the measured window and restarted (crash
//!   recovery + ring re-admission + catch-up transfer, gated behind the
//!   auth listener) at the halfway mark.  The metric counts acked
//!   operations over the *whole* window, so it prices what a failover
//!   plus a catch-up-gated rejoin costs the serving path.
//!
//! Results merge into `BENCH_results.json` (or `GP_BENCH_OUT`) alongside
//! the `bench_report` micro-benchmarks: per-login medians under
//! `results/authload/...`, logins/sec and batch occupancy under
//! `throughput/authload/...`, and scaling ratios under `speedups/...`.
//! CI's bench-regression gate (`bench_check`) then holds every serving
//! metric to the committed numbers.
//!
//! Environment knobs: `GP_AUTHLOAD_SECS` (measured seconds per trial,
//! default 1.2), `GP_AUTHLOAD_TRIALS` (trials per scenario, best taken,
//! default 5), `GP_AUTHLOAD_THREADS` (client threads, default scales with
//! the host), `GP_AUTHLOAD_PIPELINE` (requests per burst, default 16),
//! `GP_AUTHLOAD_ITERATIONS` (hash iterations, default 3000),
//! `GP_AUTHLOAD_USERS` (enrolled accounts, default 64),
//! `GP_AUTHLOAD_IDLE` (idle connections in the reactor_idle scenario,
//! default 256), `GP_AUTHLOAD_CONNS` (active connections in the
//! reactor_highconc scenario, default 32), `GP_AUTHLOAD_ONLY`
//! (comma-separated substrings; only scenarios whose label matches run,
//! and ratios whose inputs were skipped are simply not emitted — e.g.
//! `GP_AUTHLOAD_ONLY=cluster` re-measures just the cluster scenario and
//! merges its metrics into the existing report).

use gp_bench::report::BenchReport;
use gp_geometry::Point;
use gp_netauth::replication::ReplicatorConfig;
use gp_netauth::{
    AuthClient, AuthServer, ClientMessage, Cluster, ClusterClient, DurabilityConfig, FsyncPolicy,
    LoginDecision, ServerConfig, ServerMessage, ServingMode,
};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse `GP_AUTHLOAD_FSYNC`: `always`, `never`, or `batch:N`.
fn env_fsync(default: FsyncPolicy) -> FsyncPolicy {
    let Ok(raw) = std::env::var("GP_AUTHLOAD_FSYNC") else {
        return default;
    };
    match raw.as_str() {
        "always" => FsyncPolicy::Always,
        "never" => FsyncPolicy::Never,
        other => other
            .strip_prefix("batch:")
            .and_then(|n| n.parse().ok())
            .map(FsyncPolicy::Batch)
            .unwrap_or(default),
    }
}

/// Unique account names for durable-enrollment bursts, across threads
/// and trials (each trial's server starts from a fresh directory, but
/// uniqueness keeps the stream duplicate-free within a trial too).
static ENROLL_SEQ: AtomicU64 = AtomicU64::new(0);

/// RAII guard for a per-trial scratch state directory: created unique,
/// removed on drop.  Durable trials unwind through a panic when an ack
/// check fails — without the guard every such failure leaked the trial's
/// WAL/snapshot directory into the runner's tempdir (and into CI's
/// post-mortem artifacts), and repeated bench runs accreted stale state.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn create(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "gp-authload-{tag}-{}-{}",
            std::process::id(),
            // gp-lint: allow(L6, unique-id claim: only atomicity of the increment matters)
            ENROLL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The enrolled click sequence for one synthetic user (deterministic,
/// spread over the study image, all well inside the borders).
fn user_clicks(user: usize) -> Vec<Point> {
    (0..5)
        .map(|i| {
            let x = 40.0 + ((user * 37 + i * 83) % 360) as f64;
            let y = 30.0 + ((user * 53 + i * 61) % 260) as f64;
            Point::new(x, y)
        })
        .collect()
}

/// Shape of one load scenario.
#[derive(Clone)]
struct Scenario {
    config: ServerConfig,
    threads: usize,
    pipeline: usize,
    /// Connections opened before the load that never send a byte (held
    /// open across the measurement window).
    idle_connections: usize,
    /// Leading messages of each burst that enroll a fresh unique account
    /// instead of logging in (exercises the durable-ack path; the rest of
    /// the burst stays logins).
    enrolls_per_burst: usize,
    /// Serve with the crash-safe store (WAL + snapshots in a scratch
    /// directory, removed after the trial) under this fsync policy.
    durable_fsync: Option<FsyncPolicy>,
}

struct LoadResult {
    logins: u64,
    elapsed: Duration,
    mean_batch: f64,
    full_run_fraction: f64,
    worker_connections: Vec<u64>,
    shard_accounts: Vec<usize>,
}

impl LoadResult {
    fn logins_per_sec(&self) -> f64 {
        self.logins as f64 / self.elapsed.as_secs_f64()
    }

    fn ns_per_login(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.logins.max(1) as f64
    }
}

/// Spawn a server under `scenario.config`, enroll `users` accounts, open
/// the scenario's idle connections, then hammer it with `threads` ×
/// `pipeline`-deep bursts of correct-password logins for `secs` (after a
/// fixed warmup).  Every response is checked: a rejected or errored login
/// fails the bench loudly rather than producing a fast wrong number.
fn run_scenario(label: &str, scenario: &Scenario, users: usize, secs: f64) -> LoadResult {
    let mut config = scenario.config.clone();
    // Durable trials serve from a fresh scratch directory so recovery
    // replay never pollutes the measurement.  The guard removes it even
    // when the trial panics (declared first, so it drops after the
    // server handle on every exit path).
    let _scratch = scenario.durable_fsync.map(|fsync| {
        let guard = ScratchDir::create("durable");
        config.durability = Some(DurabilityConfig {
            fsync,
            ..DurabilityConfig::at(guard.path())
        });
        guard
    });
    let server = AuthServer::open(config).expect("open server store");
    let store = server.store();
    let system = server.system().clone();
    for user in 0..users {
        store
            .enroll(&system, &format!("user{user}"), &user_clicks(user))
            .expect("enroll synthetic user");
    }
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // Mostly-idle population: connected, registered, never speaking.
    let idle_conns: Vec<TcpStream> = (0..scenario.idle_connections)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    let counted = Arc::new(AtomicU64::new(0));
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let warmup = Duration::from_millis(300);
    let measure = Duration::from_secs_f64(secs);
    let (threads, pipeline) = (scenario.threads, scenario.pipeline);
    let enrolls_per_burst = scenario.enrolls_per_burst.min(pipeline);

    let mut clients = Vec::new();
    for thread in 0..threads {
        let counted = Arc::clone(&counted);
        let measuring = Arc::clone(&measuring);
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut client = AuthClient::connect(addr).expect("connect");
            // Each thread walks its own slice of the user space so bursts
            // spread across store shards.
            let mut next_user = thread;
            // gp-lint: allow(L6, monotone stop flag: eventual visibility suffices; no data is published through it)
            while !stop.load(Ordering::Relaxed) {
                let burst: Vec<ClientMessage> = (0..pipeline)
                    .map(|i| {
                        if i < enrolls_per_burst {
                            // A fresh unique account: the durable-ack
                            // path (WAL append + policy fsync before
                            // EnrollOk), also a pipeline write barrier.
                            // gp-lint: allow(L6, unique-id claim: only atomicity of the increment matters)
                            let id = ENROLL_SEQ.fetch_add(1, Ordering::Relaxed);
                            return ClientMessage::Enroll {
                                username: format!("durable-{id}"),
                                clicks: user_clicks(id as usize),
                            };
                        }
                        let user = (next_user + i * threads) % users;
                        ClientMessage::Login {
                            username: format!("user{user}"),
                            clicks: user_clicks(user),
                        }
                    })
                    .collect();
                next_user = (next_user + pipeline * threads) % users;
                let responses = client.request_pipelined(&burst).expect("pipelined burst");
                for response in &responses {
                    match response {
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Accepted,
                            ..
                        }
                        | ServerMessage::EnrollOk => {}
                        other => panic!("acked operation expected, got: {other:?}"),
                    }
                }
                // gp-lint: allow(L6, measurement-window flag gates only a stat counter; edge skew is tolerable)
                if measuring.load(Ordering::Relaxed) {
                    counted.fetch_add(responses.len() as u64, Ordering::Relaxed);
                }
            }
            let _ = client.quit();
        }));
    }

    std::thread::sleep(warmup);
    let started = Instant::now();
    measuring.store(true, Ordering::Relaxed);
    std::thread::sleep(measure);
    measuring.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("client thread");
    }
    drop(idle_conns);

    let stats = handle.stats();
    let result = LoadResult {
        logins: counted.load(Ordering::Relaxed),
        elapsed,
        mean_batch: stats.batch.mean_batch(),
        full_run_fraction: stats.batch.full_run_fraction(),
        worker_connections: stats.workers.iter().map(|w| w.connections).collect(),
        shard_accounts: stats.shards.iter().map(|s| s.accounts).collect(),
    };
    handle.shutdown();

    eprintln!(
        "[authload] {label:<18} {:>9.0} logins/s  ({} logins / {:.2}s, mean batch {:.1}, \
         full runs {:.0}%, shards {:?}, worker conns {:?})",
        result.logins_per_sec(),
        result.logins,
        result.elapsed.as_secs_f64(),
        result.mean_batch,
        result.full_run_fraction * 100.0,
        result.shard_accounts,
        result.worker_connections,
    );
    result
}

/// Best of `trials` runs: throughput benches take the least-interfered
/// trial, because scheduler noise on a shared host only ever *subtracts*
/// throughput — the max is the closest observation of what the server can
/// actually do, and it is what keeps the CI regression gate stable.
fn run_scenario_best_of(
    label: &str,
    scenario: &Scenario,
    users: usize,
    secs: f64,
    trials: usize,
) -> LoadResult {
    let mut best: Option<LoadResult> = None;
    for _ in 0..trials.max(1) {
        let result = run_scenario(label, scenario, users, secs);
        if best
            .as_ref()
            .is_none_or(|b| result.logins_per_sec() > b.logins_per_sec())
        {
            best = Some(result);
        }
    }
    best.expect("at least one trial")
}

/// What the cluster scenario measures: acked operations through the
/// routing client (enrollments replicated synchronously + logins).
struct ClusterLoadResult {
    ops: u64,
    elapsed: Duration,
}

impl ClusterLoadResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    fn ns_per_op(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.ops.max(1) as f64
    }
}

/// Spawn the per-thread routing clients driving a cluster scenario: every
/// 4th operation per thread enrolls a fresh account (acked only after its
/// backup's durable apply), the rest log in as that thread's earlier
/// accounts.  Every ack is verified; operations count toward `counted`
/// only while `measuring` is set.  The clients absorb failovers the way
/// the fault harness proves they do: transport failures mark the node
/// dead and re-resolve onto the replica holder.
fn spawn_cluster_workers(
    members: &[(String, std::net::SocketAddr)],
    threads: usize,
    counted: &Arc<AtomicU64>,
    measuring: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|_| {
            let members = members.to_vec();
            let counted = Arc::clone(counted);
            let measuring = Arc::clone(measuring);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut client = ClusterClient::new(&members);
                // This thread's enrolled population: (name, click seed).
                let mut enrolled: Vec<(String, u64)> = Vec::new();
                let mut turn = 0usize;
                // gp-lint: allow(L6, monotone stop flag: eventual visibility suffices; no data is published through it)
                while !stop.load(Ordering::Relaxed) {
                    if enrolled.is_empty() || turn.is_multiple_of(4) {
                        // gp-lint: allow(L6, unique-id claim: only atomicity of the increment matters)
                        let id = ENROLL_SEQ.fetch_add(1, Ordering::Relaxed);
                        let name = format!("cluster-{id}");
                        client
                            .enroll(&name, &user_clicks(id as usize))
                            .expect("replicated enroll must ack");
                        enrolled.push((name, id));
                    } else {
                        let (name, id) = &enrolled[turn % enrolled.len()];
                        let (decision, _) = client
                            .login(name, &user_clicks(*id as usize))
                            .expect("routed login must complete");
                        assert_eq!(
                            decision,
                            LoginDecision::Accepted,
                            "enrolled account must log in"
                        );
                    }
                    turn += 1;
                    // gp-lint: allow(L6, measurement-window flag gates only a stat counter; edge skew is tolerable)
                    if measuring.load(Ordering::Relaxed) {
                        counted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect()
}

/// Spawn a `nodes`-node replicated loopback cluster (per-node durable
/// stores, sync WAL-streaming replication) and drive it through
/// [`ClusterClient`]s (see [`spawn_cluster_workers`] for the load shape).
/// The count is acked operations in the measurement window.
fn run_cluster_scenario(
    label: &str,
    template: &ServerConfig,
    nodes: usize,
    threads: usize,
    secs: f64,
) -> ClusterLoadResult {
    // Guard declared before the cluster so a panicking ack assertion
    // still removes the per-trial node state dirs on unwind.
    let root = ScratchDir::create("cluster");
    let cluster = Cluster::spawn(
        nodes,
        template.clone(),
        ReplicatorConfig::default(),
        root.path(),
    )
    .expect("spawn cluster");
    let members = cluster.members();

    let counted = Arc::new(AtomicU64::new(0));
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let workers = spawn_cluster_workers(&members, threads, &counted, &measuring, &stop);

    std::thread::sleep(Duration::from_millis(300));
    let started = Instant::now();
    measuring.store(true, Ordering::Relaxed);
    std::thread::sleep(Duration::from_secs_f64(secs));
    measuring.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("cluster load thread");
    }
    cluster.shutdown();

    let result = ClusterLoadResult {
        ops: counted.load(Ordering::Relaxed),
        elapsed,
    };
    eprintln!(
        "[authload] {label:<18} {:>9.0} ops/s  ({} acked ops / {:.2}s, {nodes} nodes, \
         sync replication, 1-in-4 enrolls)",
        result.ops_per_sec(),
        result.ops,
        result.elapsed.as_secs_f64(),
    );
    result
}

/// Best-of wrapper for the cluster scenario (same reasoning as
/// [`run_scenario_best_of`]: noise only subtracts throughput).
fn run_cluster_best_of(
    label: &str,
    template: &ServerConfig,
    nodes: usize,
    threads: usize,
    secs: f64,
    trials: usize,
) -> ClusterLoadResult {
    let mut best: Option<ClusterLoadResult> = None;
    for _ in 0..trials.max(1) {
        let result = run_cluster_scenario(label, template, nodes, threads, secs);
        if best
            .as_ref()
            .is_none_or(|b| result.ops_per_sec() > b.ops_per_sec())
        {
            best = Some(result);
        }
    }
    best.expect("at least one trial")
}

/// The rejoin scenario: the same replicated load as
/// [`run_cluster_scenario`], but the last node is killed a quarter into
/// the measured window and restarted — crash recovery, ring re-admission,
/// catch-up transfer, traffic gate — at the halfway mark.  The count is
/// acked operations over the *whole* window, pricing a failover plus a
/// catch-up-gated rejoin end to end.
fn run_cluster_rejoin_scenario(
    label: &str,
    template: &ServerConfig,
    nodes: usize,
    threads: usize,
    secs: f64,
) -> ClusterLoadResult {
    let root = ScratchDir::create("cluster-rejoin");
    let mut cluster = Cluster::spawn(
        nodes,
        template.clone(),
        ReplicatorConfig::default(),
        root.path(),
    )
    .expect("spawn cluster");
    let members = cluster.members();

    let counted = Arc::new(AtomicU64::new(0));
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let workers = spawn_cluster_workers(&members, threads, &counted, &measuring, &stop);

    std::thread::sleep(Duration::from_millis(300));
    let quarter = Duration::from_secs_f64(secs / 4.0);
    let started = Instant::now();
    measuring.store(true, Ordering::Relaxed);
    std::thread::sleep(quarter);
    cluster.kill(nodes - 1);
    std::thread::sleep(quarter);
    // The restart call blocks through catch-up — that wall-clock is part
    // of the measured window, exactly as an operator would experience it.
    let report = cluster.restart(nodes - 1).expect("rejoin restart");
    assert!(
        report.completed(),
        "catch-up must complete against live peers: {report:?}"
    );
    // Run out the window (the catch-up may have eaten into it; ops/s is
    // computed over the true elapsed time either way).
    let deadline = started + quarter * 4;
    let now = Instant::now();
    if now < deadline {
        std::thread::sleep(deadline - now);
    }
    measuring.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("cluster rejoin load thread");
    }
    cluster.shutdown();

    let result = ClusterLoadResult {
        ops: counted.load(Ordering::Relaxed),
        elapsed,
    };
    eprintln!(
        "[authload] {label:<18} {:>9.0} ops/s  ({} acked ops / {:.2}s, {nodes} nodes, \
         kill@25% + catch-up rejoin@50%, {} records caught up)",
        result.ops_per_sec(),
        result.ops,
        result.elapsed.as_secs_f64(),
        report.records_applied(),
    );
    result
}

/// Best-of wrapper for the rejoin scenario.
fn run_cluster_rejoin_best_of(
    label: &str,
    template: &ServerConfig,
    nodes: usize,
    threads: usize,
    secs: f64,
    trials: usize,
) -> ClusterLoadResult {
    let mut best: Option<ClusterLoadResult> = None;
    for _ in 0..trials.max(1) {
        let result = run_cluster_rejoin_scenario(label, template, nodes, threads, secs);
        if best
            .as_ref()
            .is_none_or(|b| result.ops_per_sec() > b.ops_per_sec())
        {
            best = Some(result);
        }
    }
    best.expect("at least one trial")
}

fn main() {
    let secs: f64 = env_or("GP_AUTHLOAD_SECS", 1.2);
    let trials: usize = env_or("GP_AUTHLOAD_TRIALS", 5).max(1);
    // Client threads scale with the host: enough to keep the pipeline fed
    // without thrashing a small core count (client threads compete with
    // server workers for the same CPUs on loopback).
    let default_threads = std::thread::available_parallelism()
        .map(|p| p.get().clamp(2, 8))
        .unwrap_or(2);
    let threads: usize = env_or("GP_AUTHLOAD_THREADS", default_threads).max(1);
    let pipeline: usize = env_or("GP_AUTHLOAD_PIPELINE", 16).max(1);
    // The paper's example is h^1000 "or more"; serving benches default to
    // a hardened 3000-iteration deployment so the measured contrast is
    // dominated by hashing (the part the batch verifier accelerates), not
    // framing.
    let iterations: u32 = env_or("GP_AUTHLOAD_ITERATIONS", 3000).max(1);
    let users: usize = env_or("GP_AUTHLOAD_USERS", 64).max(1);
    let idle: usize = env_or("GP_AUTHLOAD_IDLE", 256);
    let conns: usize = env_or("GP_AUTHLOAD_CONNS", 32).max(1);

    let single_worker = Scenario {
        config: ServerConfig {
            hash_iterations: iterations,
            ..ServerConfig::single_worker_baseline()
        },
        threads,
        pipeline,
        idle_connections: 0,
        enrolls_per_burst: 0,
        durable_fsync: None,
    };
    let pooled_config = ServerConfig {
        hash_iterations: iterations,
        workers: std::thread::available_parallelism()
            .map(|p| p.get().clamp(4, 16))
            .unwrap_or(4),
        ..ServerConfig::pooled_baseline()
    };
    assert_eq!(pooled_config.shards, 4, "acceptance config is 4 shards");
    let sharded_pooled = Scenario {
        config: pooled_config,
        threads,
        pipeline,
        idle_connections: 0,
        enrolls_per_burst: 0,
        durable_fsync: None,
    };
    // The reactor runs with a *fixed small* thread budget on every host:
    // 1 event-loop thread + 3 hash-compute threads.  The point of the
    // scenarios below is that connection count no longer dictates thread
    // count.
    let reactor_config = ServerConfig {
        hash_iterations: iterations,
        workers: 3,
        serving: ServingMode::Reactor,
        ..ServerConfig::study_default()
    };
    let reactor = Scenario {
        config: reactor_config.clone(),
        threads,
        pipeline,
        idle_connections: 0,
        enrolls_per_burst: 0,
        durable_fsync: None,
    };
    let reactor_idle = Scenario {
        config: reactor_config.clone(),
        threads,
        pipeline,
        idle_connections: idle,
        enrolls_per_burst: 0,
        durable_fsync: None,
    };
    let reactor_highconc = Scenario {
        config: reactor_config.clone(),
        threads: conns,
        pipeline: 4,
        idle_connections: 0,
        enrolls_per_burst: 0,
        durable_fsync: None,
    };
    // The durable scenario: same reactor shape, crash-safe store, one
    // fresh-account enrollment leading every burst so the WAL-append-
    // before-ack path (and its fsync policy) is priced into the number.
    let reactor_durable = Scenario {
        config: reactor_config.clone(),
        threads,
        pipeline,
        idle_connections: 0,
        enrolls_per_burst: 1,
        durable_fsync: Some(env_fsync(FsyncPolicy::Always)),
    };
    // The group-commit stress: a durable reactor under *enroll-heavy*
    // load (4 of every 16 requests enroll a fresh account, default
    // `GP_AUTHLOAD_GROUP_ENROLLS=4`).  Before group commit each enroll
    // was its own append+fsync and a pipeline-wide barrier; now all the
    // batch's enrolls share one fsync per shard, so this number tracks
    // how well the barrier amortizes.
    let group_enrolls: usize = env_or("GP_AUTHLOAD_GROUP_ENROLLS", 4).max(1);
    let reactor_groupcommit = Scenario {
        config: reactor_config.clone(),
        threads,
        pipeline,
        idle_connections: 0,
        enrolls_per_burst: group_enrolls,
        durable_fsync: Some(env_fsync(FsyncPolicy::Always)),
    };

    // `GP_AUTHLOAD_ONLY` filter: a scenario runs when its label contains
    // any of the comma-separated patterns; unset/empty runs everything.
    let only = std::env::var("GP_AUTHLOAD_ONLY")
        .ok()
        .filter(|f| !f.trim().is_empty());
    let enabled = |label: &str| {
        only.as_deref().is_none_or(|filter| {
            filter
                .split(',')
                .map(str::trim)
                .any(|pattern| !pattern.is_empty() && label.contains(pattern))
        })
    };

    eprintln!(
        "[authload] {threads} threads × {pipeline}-deep pipeline, h^{iterations}, \
         {users} users, best of {trials} × {secs:.1}s per scenario \
         (idle={idle}, highconc={conns}×4)"
    );
    if let Some(filter) = &only {
        eprintln!("[authload] GP_AUTHLOAD_ONLY={filter} — non-matching scenarios skipped");
    }
    let baseline = enabled("single_worker")
        .then(|| run_scenario_best_of("single_worker", &single_worker, users, secs, trials));
    let pooled = enabled("sharded_pooled")
        .then(|| run_scenario_best_of("sharded_pooled", &sharded_pooled, users, secs, trials));

    let path = std::env::var("GP_BENCH_OUT").unwrap_or_else(|_| "BENCH_results.json".into());
    let path = std::path::PathBuf::from(path);
    let mut out = BenchReport::load(&path).unwrap_or_default();
    let mut fresh = BenchReport::new();
    if let Some(baseline) = &baseline {
        fresh.set_result(
            "authload/single_worker_ns_per_login",
            baseline.ns_per_login(),
        );
        fresh.set_throughput(
            "authload/single_worker_logins_per_sec",
            baseline.logins_per_sec(),
        );
    }
    if let Some(pooled) = &pooled {
        fresh.set_result(
            "authload/sharded_pooled_ns_per_login",
            pooled.ns_per_login(),
        );
        fresh.set_throughput(
            "authload/sharded_pooled_logins_per_sec",
            pooled.logins_per_sec(),
        );
    }
    if let (Some(baseline), Some(pooled)) = (&baseline, &pooled) {
        let scaling = pooled.logins_per_sec() / baseline.logins_per_sec();
        eprintln!("[authload] pooled/single {scaling:.2}x");
        fresh.set_speedup("authload_scaling", scaling);
    }

    // The reactor scenarios measure the epoll path, which only exists on
    // Linux: `AuthServer::spawn` quietly serves through the blocking pool
    // elsewhere, and recording those numbers under reactor metric names
    // would poison the committed baselines (a pool cannot even hold the
    // idle-connection population the reactor_idle scenario is about).
    // The cluster scenario rides the same gate: its nodes serve in
    // reactor mode.
    if cfg!(target_os = "linux") {
        let reactive = enabled("reactor")
            .then(|| run_scenario_best_of("reactor", &reactor, users, secs, trials));
        let idle_result = enabled("reactor_idle")
            .then(|| run_scenario_best_of("reactor_idle", &reactor_idle, users, secs, trials));
        let highconc = enabled("reactor_highconc").then(|| {
            run_scenario_best_of("reactor_highconc", &reactor_highconc, users, secs, trials)
        });
        let durable = enabled("reactor_durable").then(|| {
            run_scenario_best_of("reactor_durable", &reactor_durable, users, secs, trials)
        });
        let groupcommit = enabled("reactor_groupcommit").then(|| {
            run_scenario_best_of(
                "reactor_groupcommit",
                &reactor_groupcommit,
                users,
                secs,
                trials,
            )
        });
        let cluster = enabled("cluster_sync").then(|| {
            run_cluster_best_of("cluster_sync", &reactor_config, 3, threads, secs, trials)
        });
        let cluster_rejoin = enabled("cluster_rejoin").then(|| {
            run_cluster_rejoin_best_of("cluster_rejoin", &reactor_config, 3, threads, secs, trials)
        });

        if let Some(reactive) = &reactive {
            fresh.set_result("authload/reactor_ns_per_login", reactive.ns_per_login());
            fresh.set_throughput("authload/reactor_logins_per_sec", reactive.logins_per_sec());
        }
        if let Some(idle_result) = &idle_result {
            fresh.set_result(
                "authload/reactor_idle_ns_per_login",
                idle_result.ns_per_login(),
            );
            fresh.set_throughput(
                "authload/reactor_idle_logins_per_sec",
                idle_result.logins_per_sec(),
            );
        }
        if let Some(highconc) = &highconc {
            fresh.set_result(
                "authload/reactor_highconc_ns_per_login",
                highconc.ns_per_login(),
            );
            fresh.set_throughput(
                "authload/reactor_highconc_logins_per_sec",
                highconc.logins_per_sec(),
            );
            // Batch occupancy under connection scaling: mean attempts per
            // multi-lane run (higher = fuller lanes), gated like any
            // throughput.
            fresh.set_throughput("authload/reactor_highconc_mean_batch", highconc.mean_batch);
        }
        if let Some(durable) = &durable {
            // Durable serving: acked operations/sec (one group-committed
            // enrollment leading every 16-deep burst, the rest logins).
            fresh.set_result("authload/reactor_durable_ns_per_op", durable.ns_per_login());
            fresh.set_throughput(
                "authload/reactor_durable_ops_per_sec",
                durable.logins_per_sec(),
            );
        }
        if let Some(groupcommit) = &groupcommit {
            // Enroll-heavy durable serving: acked operations/sec with
            // `group_enrolls` fresh enrollments per burst all riding one
            // group-commit barrier per coalesced compute batch.
            fresh.set_result(
                "authload/reactor_groupcommit_ns_per_op",
                groupcommit.ns_per_login(),
            );
            fresh.set_throughput(
                "authload/reactor_groupcommit_ops_per_sec",
                groupcommit.logins_per_sec(),
            );
        }
        if let Some(cluster) = &cluster {
            // Replicated serving: acked operations/sec through the ring-
            // routing client against a 3-node sync-replicated cluster.
            fresh.set_result("authload/cluster_sync_ns_per_op", cluster.ns_per_op());
            fresh.set_throughput("authload/cluster_sync_ops_per_sec", cluster.ops_per_sec());
        }
        if let Some(rejoin) = &cluster_rejoin {
            // Replicated serving across a kill + catch-up-gated rejoin:
            // acked ops/s over the whole window, failover included.
            fresh.set_result("authload/cluster_rejoin_ns_per_op", rejoin.ns_per_op());
            fresh.set_throughput("authload/cluster_rejoin_ops_per_sec", rejoin.ops_per_sec());
        }
        if let (Some(reactive), Some(pooled)) = (&reactive, &pooled) {
            let ratio = reactive.logins_per_sec() / pooled.logins_per_sec();
            eprintln!("[authload] reactor/pooled {ratio:.2}x");
            fresh.set_speedup("authload_reactor_vs_pooled", ratio);
        }
        if let (Some(idle_result), Some(pooled)) = (&idle_result, &pooled) {
            let ratio = idle_result.logins_per_sec() / pooled.logins_per_sec();
            eprintln!("[authload] reactor+{idle} idle/pooled {ratio:.2}x");
            fresh.set_speedup("authload_reactor_idle_vs_pooled", ratio);
        }
        if let (Some(highconc), Some(pooled)) = (&highconc, &pooled) {
            let ratio = highconc.logins_per_sec() / pooled.logins_per_sec();
            eprintln!("[authload] reactor {conns}-conn/pooled {ratio:.2}x");
            fresh.set_speedup("authload_reactor_highconc_vs_pooled", ratio);
        }
        if let (Some(durable), Some(reactive)) = (&durable, &reactive) {
            let ratio = durable.logins_per_sec() / reactive.logins_per_sec();
            eprintln!("[authload] durable/reactor {ratio:.2}x");
            fresh.set_speedup("authload_reactor_durable_vs_reactor", ratio);
        }
        if let (Some(groupcommit), Some(reactive)) = (&groupcommit, &reactive) {
            let ratio = groupcommit.logins_per_sec() / reactive.logins_per_sec();
            eprintln!("[authload] groupcommit({group_enrolls}-in-{pipeline})/reactor {ratio:.2}x");
            fresh.set_speedup("authload_reactor_groupcommit_vs_reactor", ratio);
        }
        if let (Some(cluster), Some(durable)) = (&cluster, &durable) {
            let ratio = cluster.ops_per_sec() / durable.logins_per_sec();
            eprintln!("[authload] cluster/single-durable {ratio:.2}x");
            fresh.set_speedup("authload_cluster_sync_vs_single_durable", ratio);
        }
        if let (Some(rejoin), Some(cluster)) = (&cluster_rejoin, &cluster) {
            let ratio = rejoin.ops_per_sec() / cluster.ops_per_sec();
            eprintln!("[authload] rejoin-window/steady cluster {ratio:.2}x");
            fresh.set_speedup("authload_cluster_rejoin_vs_steady", ratio);
        }
    } else {
        eprintln!(
            "[authload] reactor and cluster scenarios skipped \
             (epoll reactor is Linux-only; the pool fallback would be mislabeled)"
        );
    }

    out.merge_from(&fresh);
    out.save(&path).expect("write benchmark report");
    eprintln!("[authload] wrote {}", path.display());
}
