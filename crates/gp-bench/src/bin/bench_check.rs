//! `bench_check` — the CI bench-regression gate.
//!
//! Compares a freshly measured `BENCH_results.json` against the committed
//! baseline and exits non-zero if any named metric regressed by more than
//! the threshold (default 25%): `results` medians may not be slower,
//! `throughput` entries may not be lower, and every committed metric must
//! still exist in the fresh report.  Metrics that only exist in the fresh
//! report are fine — adding benchmarks is not a regression.
//!
//! `--require <name>` (repeatable) additionally demands that the named
//! metric exists in *both* reports — the guard that keeps a newly added
//! scenario (e.g. `throughput/authload/reactor_durable_ops_per_sec`) from
//! silently dropping out of either the committed baseline or the fresh
//! measurement.
//!
//! Usage: `bench_check <committed.json> <fresh.json> [--threshold 0.25]
//! [--require <category/name>]...`

use gp_bench::report::{compare, BenchReport};
use std::path::Path;
use std::process::ExitCode;

/// Look a `category/name` spec up in a report (`results/...`,
/// `throughput/...`, or `speedups/...`).
fn lookup(report: &BenchReport, spec: &str) -> Option<f64> {
    let (category, name) = spec.split_once('/')?;
    match category {
        "results" => report.result(name),
        "throughput" => report.throughput(name),
        "speedups" => report.speedup(name),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut required: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let value = iter.next().and_then(|v| v.parse().ok());
            let Some(value) = value else {
                eprintln!("[bench_check] --threshold needs a number");
                return ExitCode::from(2);
            };
            threshold = value;
        } else if arg == "--require" {
            let Some(name) = iter.next() else {
                eprintln!("[bench_check] --require needs a metric name");
                return ExitCode::from(2);
            };
            required.push(name.clone());
        } else {
            paths.push(arg.clone());
        }
    }
    let [committed_path, fresh_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_check <committed.json> <fresh.json> \
             [--threshold 0.25] [--require <category/name>]..."
        );
        return ExitCode::from(2);
    };

    let committed = match BenchReport::load(Path::new(committed_path)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[bench_check] {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match BenchReport::load(Path::new(fresh_path)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[bench_check] {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "[bench_check] {} committed metrics vs {}, threshold {:.0}%, {} required",
        committed.results.len() + committed.throughput.len(),
        fresh_path,
        threshold * 100.0,
        required.len()
    );
    let mut missing_required = false;
    for spec in &required {
        for (which, report) in [("committed", &committed), ("fresh", &fresh)] {
            if lookup(report, spec).is_none() {
                eprintln!("[bench_check] REQUIRED metric {spec} missing from the {which} report");
                missing_required = true;
            }
        }
    }
    let regressions = compare(&committed, &fresh, threshold);
    if regressions.is_empty() && !missing_required {
        eprintln!("[bench_check] OK — no metric regressed past the threshold");
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        if r.slowdown.is_finite() {
            eprintln!(
                "[bench_check] REGRESSION {}: committed {:.1}, fresh {:.1} ({:.0}% worse)",
                r.name,
                r.committed,
                r.fresh,
                (r.slowdown - 1.0) * 100.0
            );
        } else {
            eprintln!(
                "[bench_check] REGRESSION {}: metric missing from fresh report",
                r.name
            );
        }
    }
    ExitCode::FAILURE
}
