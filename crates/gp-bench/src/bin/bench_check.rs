//! `bench_check` — the CI bench-regression gate.
//!
//! Compares a freshly measured `BENCH_results.json` against the committed
//! baseline and exits non-zero if any named metric regressed by more than
//! the threshold (default 25%): `results` medians may not be slower,
//! `throughput` entries may not be lower, and every committed metric must
//! still exist in the fresh report.  Metrics that only exist in the fresh
//! report are fine — adding benchmarks is not a regression.
//!
//! Usage: `bench_check <committed.json> <fresh.json> [--threshold 0.25]`

use gp_bench::report::{compare, BenchReport};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let value = iter.next().and_then(|v| v.parse().ok());
            let Some(value) = value else {
                eprintln!("[bench_check] --threshold needs a number");
                return ExitCode::from(2);
            };
            threshold = value;
        } else {
            paths.push(arg.clone());
        }
    }
    let [committed_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_check <committed.json> <fresh.json> [--threshold 0.25]");
        return ExitCode::from(2);
    };

    let committed = match BenchReport::load(Path::new(committed_path)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[bench_check] {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match BenchReport::load(Path::new(fresh_path)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[bench_check] {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "[bench_check] {} committed metrics vs {}, threshold {:.0}%",
        committed.results.len() + committed.throughput.len(),
        fresh_path,
        threshold * 100.0
    );
    let regressions = compare(&committed, &fresh, threshold);
    if regressions.is_empty() {
        eprintln!("[bench_check] OK — no metric regressed past the threshold");
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        if r.slowdown.is_finite() {
            eprintln!(
                "[bench_check] REGRESSION {}: committed {:.1}, fresh {:.1} ({:.0}% worse)",
                r.name,
                r.committed,
                r.fresh,
                (r.slowdown - 1.0) * 100.0
            );
        } else {
            eprintln!(
                "[bench_check] REGRESSION {}: metric missing from fresh report",
                r.name
            );
        }
    }
    ExitCode::FAILURE
}
