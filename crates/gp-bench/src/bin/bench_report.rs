//! Machine-readable benchmark report for the hot-path pipeline.
//!
//! Times the primitives the optimization work targets — one-shot vs
//! incremental SHA-256, scalar vs midstate vs multi-lane `h^1000`, the
//! 5-click verify path with and without scratch reuse, and the batched vs
//! per-entry brute force — and writes `BENCH_results.json` (or the path in
//! `GP_BENCH_OUT`).  CI runs this after the test suite so every change
//! carries its measured speedups with it.
//!
//! Usage: `cargo run --release -p gp-bench --bin bench_report`

use gp_attacks::{ClickPointPool, OfflineKnownGridAttack};
use gp_bench::report::BenchReport;
use gp_crypto::{iterated_hash, iterated_hash_reference, SaltedHasher, Sha256};
use gp_geometry::{ImageDims, Point};
use gp_passwords::prelude::*;
use gp_passwords::VerifyScratch;
use std::time::Instant;

/// Median nanoseconds per call of `f`, from `samples` timed samples of
/// auto-calibrated batches.
fn median_ns<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate so one sample takes ~5 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed > 2e6 || iters >= 1 << 22 {
            break elapsed / iters as f64;
        }
        iters *= 4;
    };
    let iters_per_sample = ((5e6 / per_iter.max(0.5)) as u64).clamp(1, 1 << 22);
    let samples = 9;
    let mut medians: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        medians.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    medians.sort_by(|a, b| a.total_cmp(b));
    medians[medians.len() / 2]
}

struct Report {
    results: Vec<(String, f64)>,
}

impl Report {
    fn measure<F: FnMut()>(&mut self, name: &str, f: F) -> f64 {
        let ns = median_ns(f);
        eprintln!("[bench_report] {name:<44} {ns:>12.1} ns/op");
        self.results.push((name.to_string(), ns));
        ns
    }
}

fn main() {
    let mut report = Report {
        results: Vec::new(),
    };
    let mut speedups: Vec<(String, f64)> = Vec::new();

    // --- SHA-256: one-shot single-block fast path vs incremental. ---
    let msg40 = [0xabu8; 40];
    let oneshot = report.measure("sha256/one_shot_40B", || {
        std::hint::black_box(Sha256::digest(std::hint::black_box(&msg40)));
    });
    let incremental = report.measure("sha256/incremental_40B", || {
        let mut h = Sha256::new();
        h.update(std::hint::black_box(&msg40));
        std::hint::black_box(h.finalize());
    });
    speedups.push(("sha256_one_shot".into(), incremental / oneshot));

    // --- h^1000: reference vs one-shot/midstate scalar vs 16-lane. ---
    let salt = b"gp-passwords/v1\x1falice";
    let pre_image = [0x5au8; 180];
    let reference = report.measure("h1000/reference_21B_salt", || {
        std::hint::black_box(iterated_hash_reference(salt, &pre_image, 1000));
    });
    let scalar = report.measure("h1000/one_shot_scalar_21B_salt", || {
        std::hint::black_box(iterated_hash(salt, &pre_image, 1000));
    });
    speedups.push(("h1000_scalar".into(), reference / scalar));

    // Midstate payoff isolated: a 64-byte salt costs the reference two
    // compressions per round, the midstate path one (theoretical 2.0×); a
    // 128-byte salt (domain + image hash + username scale) costs three
    // versus one (theoretical 3.0×).
    let long_salt = [0x77u8; 64];
    let ref_long = report.measure("h1000/reference_64B_salt", || {
        std::hint::black_box(iterated_hash_reference(&long_salt, &pre_image, 1000));
    });
    let mid_long = report.measure("h1000/midstate_64B_salt", || {
        std::hint::black_box(iterated_hash(&long_salt, &pre_image, 1000));
    });
    speedups.push(("h1000_midstate_64B_salt".into(), ref_long / mid_long));
    let longer_salt = [0x33u8; 128];
    let ref_longer = report.measure("h1000/reference_128B_salt", || {
        std::hint::black_box(iterated_hash_reference(&longer_salt, &pre_image, 1000));
    });
    let mid_longer = report.measure("h1000/midstate_128B_salt", || {
        std::hint::black_box(iterated_hash(&longer_salt, &pre_image, 1000));
    });
    speedups.push(("h1000_midstate_128B_salt".into(), ref_longer / mid_longer));

    // Lane sweep (per message, batches of 32).
    let messages: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 180]).collect();
    let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
    let hasher = SaltedHasher::new(salt);
    let mut out = Vec::new();
    macro_rules! lane_bench {
        ($($lanes:literal),*) => {$({
            let batch = report.measure(
                concat!("h1000/lanes_", stringify!($lanes), "_batch32"),
                || {
                    hasher.iterated_many_lanes_into::<$lanes>(&refs, 1000, &mut out);
                    std::hint::black_box(&out);
                },
            );
            let per_msg = batch / refs.len() as f64;
            report.results.push((
                format!("h1000/lanes_{}_per_msg", $lanes),
                per_msg,
            ));
            speedups.push((format!("h1000_lanes_{}", $lanes), reference / per_msg));
        })*};
    }
    lane_bench!(2, 4, 8, 16);

    // --- Full 5-click verify: fresh allocations vs scratch reuse. ---
    let clicks: Vec<Point> = vec![
        Point::new(50.0, 60.0),
        Point::new(120.0, 200.0),
        Point::new(301.0, 75.0),
        Point::new(400.0, 310.0),
        Point::new(222.0, 111.0),
    ];
    let attempt: Vec<Point> = clicks.iter().map(|p| p.offset(4.0, -4.0)).collect();
    let system = GraphicalPasswordSystem::new(
        PasswordPolicy::new(ImageDims::STUDY, 5),
        DiscretizationConfig::centered(9),
        1000,
    );
    let stored = system.enroll("bench-user", &clicks).unwrap();
    let fresh = report.measure("verify_5click/fresh", || {
        std::hint::black_box(system.verify(&stored, &attempt).unwrap());
    });
    let mut scratch = VerifyScratch::new();
    let scratched = report.measure("verify_5click/scratch_reuse", || {
        std::hint::black_box(
            system
                .verify_with_scratch(&stored, &attempt, &mut scratch)
                .unwrap(),
        );
    });
    speedups.push(("verify_scratch".into(), fresh / scratched));

    // --- Offline brute force: per-entry verify vs batched dedupe pipeline.
    // 8-point pool, 3 clicks → 336 entries per walk; pool points cluster so
    // dedupe has real work to do, and no entry cracks the target.
    let original = [
        Point::new(60.0, 60.0),
        Point::new(200.0, 120.0),
        Point::new(320.0, 250.0),
    ];
    let bf_system = GraphicalPasswordSystem::new(
        PasswordPolicy::new(ImageDims::STUDY, 3),
        DiscretizationConfig::centered(6),
        100,
    );
    let far: Vec<Point> = original.iter().map(|p| p.offset(80.0, 40.0)).collect();
    let bf_target = bf_system.enroll("victim", &far).unwrap();
    let mut pool_points: Vec<Point> = original
        .iter()
        .flat_map(|p| [p.offset(0.0, 0.0), p.offset(1.5, -1.5)])
        .collect();
    pool_points.extend([Point::new(30.0, 300.0), Point::new(420.0, 40.0)]);
    let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 3));
    let entries = attack.pool().entry_count() as f64;

    let per_entry = report.measure("brute_force/per_entry_verify_walk", || {
        let mut cracked = false;
        for entry in attack.pool().enumerate() {
            cracked |= bf_system.verify(&bf_target, &entry).unwrap_or(false);
        }
        std::hint::black_box(cracked);
    }) / entries;
    report
        .results
        .push(("brute_force/per_entry_verify_per_guess".into(), per_entry));
    let batched = report.measure("brute_force/batched_walk", || {
        std::hint::black_box(attack.brute_force(&bf_system, &bf_target, u64::MAX));
    }) / entries;
    report
        .results
        .push(("brute_force/batched_per_guess".into(), batched));
    speedups.push(("brute_force_batched".into(), per_entry / batched));

    // --- Emit JSON, preserving any serving-layer (`authload`) metrics
    // already present in the output file. ---
    let path = std::env::var("GP_BENCH_OUT").unwrap_or_else(|_| "BENCH_results.json".into());
    let path = std::path::PathBuf::from(path);
    let mut out = BenchReport::load(&path).unwrap_or_default();
    let mut fresh = BenchReport::new();
    for (name, ns) in &report.results {
        fresh.set_result(name, *ns);
    }
    for (name, x) in &speedups {
        fresh.set_speedup(name, *x);
    }
    out.merge_from(&fresh);
    out.save(&path).expect("write benchmark report");
    eprintln!("[bench_report] wrote {}", path.display());
    for (name, x) in &speedups {
        eprintln!("[bench_report] speedup {name:<28} {x:>6.2}x");
    }
}
