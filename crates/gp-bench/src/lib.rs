//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper (plus
//! micro-benchmarks and ablations).  The datasets used by the heavier
//! benches are generated once per process and cached here; the *bench-scale*
//! dataset keeps per-iteration work bounded while preserving the structure
//! (two images, hotspot-biased passwords, imperfect re-entries) of the
//! paper-scale dataset, which the examples can regenerate in full.

use gp_study::{Dataset, FieldStudyConfig, LabStudyConfig};
use std::sync::OnceLock;

pub mod report;

/// Field-study dataset used by the bench harness (reduced scale: same
/// structure as the 481-password study at ~10% volume).
pub fn bench_field_dataset() -> &'static Dataset {
    static FIELD: OnceLock<Dataset> = OnceLock::new();
    FIELD.get_or_init(|| FieldStudyConfig::test_scale().generate())
}

/// Paper-scale lab study (30 passwords per image) — the dictionary source.
pub fn bench_lab_dataset() -> &'static Dataset {
    static LAB: OnceLock<Dataset> = OnceLock::new();
    LAB.get_or_init(|| LabStudyConfig::paper_scale().generate())
}

/// The five example click-points shared with the documentation examples.
pub fn example_clicks() -> Vec<gp_geometry::Point> {
    vec![
        gp_geometry::Point::new(50.0, 60.0),
        gp_geometry::Point::new(120.0, 200.0),
        gp_geometry::Point::new(301.0, 75.0),
        gp_geometry::Point::new(400.0, 310.0),
        gp_geometry::Point::new(222.0, 111.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_cached_and_well_formed() {
        let a = bench_field_dataset();
        let b = bench_field_dataset();
        assert!(std::ptr::eq(a, b));
        assert!(a.password_count() > 0);
        assert!(a.login_count() > 0);
        assert_eq!(bench_lab_dataset().password_count(), 60);
        assert_eq!(example_clicks().len(), 5);
    }
}
