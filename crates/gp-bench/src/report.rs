//! The machine-readable benchmark report (`BENCH_results.json`).
//!
//! One schema, three writers: `bench_report` (micro-benchmark medians),
//! `authload` (serving-layer throughput) and — read-only — `bench_check`
//! (the CI regression gate).  The format is deliberately tiny:
//!
//! ```json
//! {
//!   "results":    { "name": {"median_ns": 123.4}, … },
//!   "throughput": { "name": 5678.9, … },
//!   "speedups":   { "name": 4.56, … }
//! }
//! ```
//!
//! `results` entries are medians in nanoseconds (lower is better);
//! `throughput` entries are operations per second (higher is better);
//! `speedups` are informational ratios.  Sections may be absent.  The
//! parser below handles exactly this shape (hand-rolled — the workspace's
//! serde stand-in has no JSON format on purpose) and is exercised by
//! round-trip tests.

use std::fmt::Write as _;
use std::path::Path;

/// In-memory form of `BENCH_results.json`.  Entry order is preserved so
/// regenerated files diff cleanly against committed ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// `name → median nanoseconds` (lower is better).
    pub results: Vec<(String, f64)>,
    /// `name → operations per second` (higher is better).
    pub throughput: Vec<(String, f64)>,
    /// `name → speedup ratio` (informational).
    pub speedups: Vec<(String, f64)>,
}

fn upsert(entries: &mut Vec<(String, f64)>, name: &str, value: f64) {
    if let Some(slot) = entries.iter_mut().find(|(n, _)| n == name) {
        slot.1 = value;
    } else {
        entries.push((name.to_string(), value));
    }
}

fn lookup(entries: &[(String, f64)], name: &str) -> Option<f64> {
    entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a median-nanoseconds entry.
    pub fn set_result(&mut self, name: &str, median_ns: f64) {
        upsert(&mut self.results, name, median_ns);
    }

    /// Insert or replace an ops-per-second entry.
    pub fn set_throughput(&mut self, name: &str, ops_per_sec: f64) {
        upsert(&mut self.throughput, name, ops_per_sec);
    }

    /// Insert or replace a speedup entry.
    pub fn set_speedup(&mut self, name: &str, ratio: f64) {
        upsert(&mut self.speedups, name, ratio);
    }

    /// Median nanoseconds for `name`, if present.
    pub fn result(&self, name: &str) -> Option<f64> {
        lookup(&self.results, name)
    }

    /// Ops per second for `name`, if present.
    pub fn throughput(&self, name: &str) -> Option<f64> {
        lookup(&self.throughput, name)
    }

    /// Speedup ratio for `name`, if present.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        lookup(&self.speedups, name)
    }

    /// Overwrite (or add) every entry of `other` into `self`, preserving
    /// the position of entries both reports share.  This is how `authload`
    /// contributes its serving metrics without clobbering the
    /// `bench_report` micro-benchmarks already in the file.
    pub fn merge_from(&mut self, other: &BenchReport) {
        for (name, v) in &other.results {
            upsert(&mut self.results, name, *v);
        }
        for (name, v) in &other.throughput {
            upsert(&mut self.throughput, name, *v);
        }
        for (name, v) in &other.speedups {
            upsert(&mut self.speedups, name, *v);
        }
    }

    /// Serialize in the canonical layout.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n  \"results\": {\n");
        for (i, (name, ns)) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(json, "    \"{name}\": {{\"median_ns\": {ns:.1}}}{comma}");
        }
        json.push_str("  }");
        if !self.throughput.is_empty() {
            json.push_str(",\n  \"throughput\": {\n");
            for (i, (name, ops)) in self.throughput.iter().enumerate() {
                let comma = if i + 1 == self.throughput.len() {
                    ""
                } else {
                    ","
                };
                let _ = writeln!(json, "    \"{name}\": {ops:.1}{comma}");
            }
            json.push_str("  }");
        }
        json.push_str(",\n  \"speedups\": {\n");
        for (i, (name, x)) in self.speedups.iter().enumerate() {
            let comma = if i + 1 == self.speedups.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(json, "    \"{name}\": {x:.2}{comma}");
        }
        json.push_str("  }\n}\n");
        json
    }

    /// Parse a report serialized by [`BenchReport::to_json`] (tolerant of
    /// whitespace variations, intolerant of anything outside the schema).
    pub fn parse(json: &str) -> Result<Self, String> {
        let mut report = Self::new();
        let mut section: Option<&'static str> = None;
        for raw in json.lines() {
            let line = raw.trim().trim_end_matches(',');
            if line.is_empty() || line == "{" || line == "}" {
                continue;
            }
            if let Some(rest) = line.strip_prefix('"') {
                let (name, rest) = rest
                    .split_once('"')
                    .ok_or_else(|| format!("unterminated name in line {raw:?}"))?;
                let rest = rest.trim_start_matches(':').trim();
                match rest {
                    "{" => {
                        section = Some(match name {
                            "results" => "results",
                            "throughput" => "throughput",
                            "speedups" => "speedups",
                            other => return Err(format!("unknown section {other:?}")),
                        });
                    }
                    value => {
                        let section =
                            section.ok_or_else(|| format!("entry outside section: {raw:?}"))?;
                        let number = value
                            .trim_start_matches("{\"median_ns\":")
                            .trim_end_matches('}')
                            .trim();
                        let parsed: f64 = number
                            .parse()
                            .map_err(|_| format!("bad number {number:?} in line {raw:?}"))?;
                        match section {
                            "results" => report.results.push((name.to_string(), parsed)),
                            "throughput" => report.throughput.push((name.to_string(), parsed)),
                            _ => report.speedups.push((name.to_string(), parsed)),
                        }
                    }
                }
            } else {
                return Err(format!("unrecognized line {raw:?}"));
            }
        }
        Ok(report)
    }

    /// Load a report from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let contents =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&contents)
    }

    /// Write the report to disk.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// One metric's regression verdict from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub name: String,
    /// Committed (baseline) value.
    pub committed: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Slowdown factor (>1 means the fresh run is worse).
    pub slowdown: f64,
}

/// Compare a fresh report against the committed baseline: every committed
/// `results` (lower-better) and `throughput` (higher-better) metric must
/// exist in the fresh report and must not be worse by more than
/// `threshold` (0.25 = 25%).  Returns the offending metrics (empty = the
/// gate passes).  Metrics only present in the fresh report are ignored —
/// adding benchmarks is not a regression.
pub fn compare(committed: &BenchReport, fresh: &BenchReport, threshold: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (name, committed_ns) in &committed.results {
        let slowdown = match fresh.result(name) {
            // Missing metric: infinitely regressed (the gate must fail
            // rather than silently lose coverage).
            None => f64::INFINITY,
            Some(fresh_ns) => fresh_ns / committed_ns,
        };
        if slowdown > 1.0 + threshold {
            regressions.push(Regression {
                name: name.clone(),
                committed: *committed_ns,
                fresh: fresh.result(name).unwrap_or(f64::NAN),
                slowdown,
            });
        }
    }
    for (name, committed_ops) in &committed.throughput {
        let slowdown = match fresh.throughput(name) {
            None => f64::INFINITY,
            Some(fresh_ops) if fresh_ops > 0.0 => committed_ops / fresh_ops,
            Some(_) => f64::INFINITY,
        };
        if slowdown > 1.0 + threshold {
            regressions.push(Regression {
                name: name.clone(),
                committed: *committed_ops,
                fresh: fresh.throughput(name).unwrap_or(f64::NAN),
                slowdown,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new();
        r.set_result("sha256/one_shot_40B", 310.0);
        r.set_result("h1000/lanes_16_per_msg", 67318.7);
        r.set_throughput("authload/sharded_pooled_logins_per_sec", 14000.0);
        r.set_speedup("authload_scaling", 4.4);
        r
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = BenchReport::parse(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn parses_the_no_throughput_legacy_shape() {
        let mut legacy = sample();
        legacy.throughput.clear();
        let parsed = BenchReport::parse(&legacy.to_json()).unwrap();
        assert_eq!(parsed, legacy);
        assert!(parsed.throughput.is_empty());
    }

    #[test]
    fn merge_overwrites_shared_and_appends_new() {
        let mut base = sample();
        let mut fresh = BenchReport::new();
        fresh.set_result("sha256/one_shot_40B", 250.0);
        fresh.set_result("new/metric", 1.0);
        base.merge_from(&fresh);
        assert_eq!(base.result("sha256/one_shot_40B"), Some(250.0));
        assert_eq!(base.result("new/metric"), Some(1.0));
        assert_eq!(base.result("h1000/lanes_16_per_msg"), Some(67318.7));
        assert_eq!(base.results.len(), 3);
    }

    #[test]
    fn compare_passes_within_threshold() {
        let committed = sample();
        let mut fresh = sample();
        fresh.set_result("sha256/one_shot_40B", 310.0 * 1.2); // +20% < 25%
        fresh.set_throughput("authload/sharded_pooled_logins_per_sec", 14000.0 / 1.2);
        assert!(compare(&committed, &fresh, 0.25).is_empty());
    }

    #[test]
    fn compare_flags_slowdowns_in_both_directions_of_better() {
        let committed = sample();
        let mut fresh = sample();
        fresh.set_result("h1000/lanes_16_per_msg", 67318.7 * 1.5);
        fresh.set_throughput("authload/sharded_pooled_logins_per_sec", 14000.0 / 2.0);
        let regressions = compare(&committed, &fresh, 0.25);
        let names: Vec<&str> = regressions.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "h1000/lanes_16_per_msg",
                "authload/sharded_pooled_logins_per_sec"
            ]
        );
        assert!(regressions.iter().all(|r| r.slowdown > 1.25));
    }

    #[test]
    fn compare_fails_on_missing_metric_and_ignores_extra() {
        let committed = sample();
        let mut fresh = BenchReport::new();
        fresh.set_result("sha256/one_shot_40B", 310.0);
        fresh.set_result("extra/not_in_baseline", 5.0);
        // lanes metric + throughput metric are missing from fresh.
        let regressions = compare(&committed, &fresh, 0.25);
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().all(|r| r.slowdown.is_infinite()));

        // Extra metrics in fresh never fail the gate.
        let superset = {
            let mut s = sample();
            s.set_result("extra/new_bench", 1.0);
            s
        };
        assert!(compare(&committed, &superset, 0.25).is_empty());
    }

    #[test]
    fn faster_is_never_a_regression() {
        let committed = sample();
        let mut fresh = sample();
        fresh.set_result("sha256/one_shot_40B", 1.0);
        fresh.set_throughput("authload/sharded_pooled_logins_per_sec", 1e9);
        assert!(compare(&committed, &fresh, 0.25).is_empty());
    }
}
