//! Constant-time comparison helpers.
//!
//! Login verification compares the hash of the candidate discretized
//! password with the stored hash.  A naive early-exit comparison leaks, via
//! timing, how long a matching prefix an attacker's guess has; [`ct_eq`]
//! always inspects every byte.

/// Compare two byte slices in constant time with respect to their contents.
///
/// Returns `false` immediately when the lengths differ (length is not
/// secret here: all stored digests have the same, public, length).
///
/// ```
/// assert!(gp_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!gp_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!gp_crypto::ct_eq(b"abc", b"abcd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff: u8 = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"x", b"x"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn differing_in_first_byte() {
        assert!(!ct_eq(b"Aaaa", b"Baaa"));
    }

    #[test]
    fn differing_in_last_byte() {
        assert!(!ct_eq(b"aaaA", b"aaaB"));
    }

    #[test]
    fn differing_lengths() {
        assert!(!ct_eq(b"aa", b"aaa"));
        assert!(!ct_eq(b"aaa", b"aa"));
    }

    #[test]
    fn all_single_bit_flips_detected() {
        let base = [0x5au8; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let mut other = base;
                other[byte] ^= 1 << bit;
                assert!(!ct_eq(&base, &other), "flip byte {byte} bit {bit}");
            }
        }
    }
}
