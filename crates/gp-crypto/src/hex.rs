//! Minimal lower-case hexadecimal encoding and decoding.
//!
//! Used when serializing password files and protocol messages so that stored
//! hashes are printable and diff-friendly in test fixtures.

/// Error returned by [`decode`] for malformed hexadecimal input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// The input length is odd, so it cannot encode whole bytes.
    OddLength {
        /// Length of the offending input string.
        len: usize,
    },
    /// A character outside `[0-9a-fA-F]` was encountered.
    InvalidChar {
        /// The offending character.
        ch: char,
        /// Byte index of the offending character.
        index: usize,
    },
}

impl core::fmt::Display for HexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HexError::OddLength { len } => write!(f, "hex string has odd length {len}"),
            HexError::InvalidChar { ch, index } => {
                write!(f, "invalid hex character {ch:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for HexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode `bytes` as a lower-case hexadecimal string.
///
/// ```
/// assert_eq!(gp_crypto::hex::encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hexadecimal string (upper or lower case) into bytes.
///
/// ```
/// assert_eq!(gp_crypto::hex::decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
/// assert!(gp_crypto::hex::decode("abc").is_err());
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    if !s.len().is_multiple_of(2) {
        return Err(HexError::OddLength { len: s.len() });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for i in (0..bytes.len()).step_by(2) {
        let hi = nibble(bytes[i], i, s)?;
        let lo = nibble(bytes[i + 1], i + 1, s)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(b: u8, index: usize, original: &str) -> Result<u8, HexError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(HexError::InvalidChar {
            ch: original[index..].chars().next().unwrap_or('?'),
            index,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_empty() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn round_trip_all_bytes() {
        let all: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(decode("0aF3").unwrap(), vec![0x0a, 0xf3]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc").unwrap_err(), HexError::OddLength { len: 3 });
    }

    #[test]
    fn invalid_char_rejected_with_index() {
        match decode("ag").unwrap_err() {
            HexError::InvalidChar { ch, index } => {
                assert_eq!(ch, 'g');
                assert_eq!(index, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = decode("zz").unwrap_err();
        assert!(e.to_string().contains("invalid hex character"));
    }
}
