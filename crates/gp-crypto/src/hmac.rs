//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the in-crate SHA-256.
//!
//! The networked authentication substrate uses HMAC to authenticate protocol
//! frames in tests, and the iterated password hasher optionally uses it to
//! bind a server-side secret ("pepper") into stored hashes.

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256 computation.
///
/// ```
/// use gp_crypto::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(
///     gp_crypto::hex::encode(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with `OPAD`, retained for the outer hash.
    outer_key: [u8; BLOCK_LEN],
}

impl core::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Start a MAC computation with the given key (any length).
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than one block are hashed first; shorter keys are
        // zero-padded to the block length.
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = key_block[i] ^ IPAD;
            outer_key[i] = key_block[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key);
        Self { inner, outer_key }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte authentication tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot convenience: `HMAC(key, message)`.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verify a tag in constant time.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&Self::mac(key, message), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_binary_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = HmacSha256::mac(&key, msg);
        assert_eq!(
            hex::encode(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let msg = b"message split over several updates";
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(5) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), HmacSha256::mac(key, msg));
    }

    #[test]
    fn verify_accepts_correct_and_rejects_tampered() {
        let tag = HmacSha256::mac(b"k", b"payload");
        assert!(HmacSha256::verify(b"k", b"payload", &tag));
        assert!(!HmacSha256::verify(b"k", b"payload!", &tag));
        assert!(!HmacSha256::verify(b"k2", b"payload", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"payload", &bad));
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(HmacSha256::mac(b"a", b"m"), HmacSha256::mac(b"b", b"m"));
    }
}
