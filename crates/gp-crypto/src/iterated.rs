//! Iterated ("stretched") password hashing.
//!
//! Section 3.2 of the paper recommends two hardening measures for the stored
//! hash of the discretized password:
//!
//! 1. a per-user salt ("a user identifier could be added to the hash ... and
//!    also stored in clear-text"), preventing pre-computed dictionaries from
//!    being reused across accounts; and
//! 2. iterated hashing ("using h^1000 effectively adds 10 bits of
//!    security"), multiplying the attacker's per-guess cost.
//!
//! [`PasswordHasher`] packages both together with a domain-separation label
//! so that hashes computed for different purposes (PassPoints vs the
//! networked protocol's proof messages) can never collide.

use crate::ct::ct_eq;
use crate::sha256::{
    compress, compress_lanes, state_to_digest, Digest, Midstate, Sha256, BLOCK_LEN, DIGEST_LEN,
};

/// Number of interleaved hash lanes used by the batched entry points
/// ([`iterated_hash_many`], [`SaltedHasher::iterated_many`]).
///
/// Independent SHA-256 chains interleaved in one compression loop sidestep
/// the serial round-to-round dependency of a single hash: the lane loop
/// bodies are element-wise u32 operations over adjacent memory, which LLVM
/// auto-vectorizes.  16 lanes (one cache line of u32s per schedule round)
/// is the sweet spot measured by the `micro_primitives` lane-sweep bench —
/// ~5× the scalar throughput with AVX2, ~11× with AVX-512.
pub const LANES: usize = 16;

/// Apply SHA-256 `iterations` times to `salt || message`:
/// `h(salt || h(salt || … h(salt || message)))`.
///
/// `iterations = 1` is a plain salted hash; the paper's example uses 1000.
/// `iterations = 0` is treated as 1 (hashing zero times would store the
/// message in the clear, which is never acceptable) — see
/// [`SaltedHasher::iterated`] for the normative statement of both edge
/// cases.
///
/// One-off convenience for [`SaltedHasher`]; when hashing more than one
/// message under the same salt (verification servers, offline attacks),
/// build the hasher once and reuse it.
///
/// ```
/// use gp_crypto::iterated_hash;
/// let once = iterated_hash(b"salt", b"msg", 1);
/// let thousand = iterated_hash(b"salt", b"msg", 1000);
/// assert_ne!(once, thousand);
/// ```
pub fn iterated_hash(salt: &[u8], message: &[u8], iterations: u32) -> Digest {
    SaltedHasher::new(salt).iterated(message, iterations)
}

/// Batched [`iterated_hash`]: one digest per message, all under the same
/// salt, computed [`LANES`] messages at a time through the interleaved
/// multi-lane compressor.
///
/// Bit-identical to mapping [`iterated_hash`] over `messages` (there is a
/// proptest proving it), but substantially faster for the offline-attack
/// workload of many candidate pre-images against one salted target.
pub fn iterated_hash_many(salt: &[u8], messages: &[&[u8]], iterations: u32) -> Vec<Digest> {
    SaltedHasher::new(salt).iterated_many(messages, iterations)
}

/// Batched iterated hashing where every message carries its *own* salt —
/// the authentication-server shape, where concurrent login attempts from
/// different accounts (hence different per-user salts) are coalesced into
/// one multi-lane run.
///
/// Bit-identical to calling [`SaltedHasher::iterated`] per entry (there is
/// an equivalence test), but the rounds of up to [`LANES`] entries are
/// interleaved through the same vectorized compressor that powers
/// [`iterated_hash_many`].  Entries are grouped internally by
/// `blocks_per_round` (salts of different lengths may pad to a different
/// number of compression blocks), so mixed-length salts are handled
/// correctly at full speed.
///
/// `hashers` and `messages` must have equal length.
pub fn iterated_hash_many_salted(
    hashers: &[&SaltedHasher],
    messages: &[&[u8]],
    iterations: u32,
) -> Vec<Digest> {
    let mut out = Vec::new();
    iterated_hash_many_salted_into(hashers, messages, iterations, &mut out);
    out
}

/// [`iterated_hash_many_salted`] writing into a caller-provided buffer, so
/// a steady-state serving loop performs no per-batch output allocation.
pub fn iterated_hash_many_salted_into(
    hashers: &[&SaltedHasher],
    messages: &[&[u8]],
    iterations: u32,
    out: &mut Vec<Digest>,
) {
    assert_eq!(
        hashers.len(),
        messages.len(),
        "one salted hasher per message"
    );
    let rounds = iterations.max(1);
    out.clear();
    out.extend(
        hashers
            .iter()
            .zip(messages)
            .map(|(h, m)| h.first.digest_suffix(m)),
    );
    if rounds == 1 {
        return;
    }

    // Lanes must share the per-round block count, so bucket entry indices
    // by `blocks_per_round` (1 for salts ≤ 23 bytes mod 64, else 2) and run
    // the lane kernel bucket by bucket.
    let mut order: Vec<usize> = (0..hashers.len()).collect();
    order.sort_by_key(|&i| hashers[i].blocks_per_round());
    let mut start = 0;
    while start < order.len() {
        let bpr = hashers[order[start]].blocks_per_round();
        let len = order[start..]
            .iter()
            .take_while(|&&i| hashers[i].blocks_per_round() == bpr)
            .count();
        let group = &order[start..start + len];
        let mut chunks = group.chunks_exact(LANES);
        for lane_indices in chunks.by_ref() {
            run_salted_lanes::<LANES>(hashers, lane_indices, bpr, rounds, out);
        }
        // Run the bucket's tail through a *padded* lane pass instead of
        // falling back to one scalar chain per entry.  This is
        // load-bearing for serving batches with mixed salt lengths: one
        // fresh enrollment coalesced with a run of short-salt logins
        // splits the batch into two buckets, and before this dispatch
        // *both* sides of the split decayed to scalar remainders (a 1+15
        // split hashed ~5x slower than a uniform 16-lane run).
        //
        // Thresholds are measured, not guessed: a scalar chain costs
        // ~0.26x of a full-width pass and a 4-lane pass ~0.85x (narrower
        // kernels barely help — the per-round schedule work doesn't
        // shrink with lane count, and 8 lanes actively defeats the
        // autovectorizer), so tails of 1-3 stay scalar, exactly 4 takes
        // the 4-lane kernel, and anything larger pads to full width.
        let tail = chunks.remainder();
        match tail.len() {
            0 => {}
            1..=3 => {
                for &i in tail {
                    let mut template = hashers[i].template;
                    let mut digest = out[i];
                    for _ in 1..rounds {
                        digest = template.advance(&digest);
                    }
                    out[i] = digest;
                }
            }
            4 => run_salted_lanes::<4>(hashers, tail, bpr, rounds, out),
            _ => run_salted_lanes::<LANES>(hashers, tail, bpr, rounds, out),
        }
        start += len;
    }
}

/// One interleaved pass of up to `L` same-`blocks_per_round` entries
/// through the lane compressor.  Unlike the shared-salt kernel, each lane
/// carries its own salt tail, digest offset and initial state.
///
/// `lane_indices` may hold fewer than `L` entries: spare lanes are padded
/// with copies of the first entry's template and digest chain, so they
/// redundantly recompute entry 0 and their results are discarded.  Padding
/// keeps the pass at one lane-kernel run regardless of fill — the whole
/// point, since `L` scalar chains cost far more than one mostly-idle
/// vectorized pass.
fn run_salted_lanes<const L: usize>(
    hashers: &[&SaltedHasher],
    lane_indices: &[usize],
    bpr: usize,
    rounds: u32,
    out: &mut [Digest],
) {
    debug_assert!(!lane_indices.is_empty() && lane_indices.len() <= L);
    // Pad lanes mirror entry 0: they read its digest slot each round
    // (before any lane writes back) and never write their own.
    let entry = |l: usize| lane_indices[if l < lane_indices.len() { l } else { 0 }];
    let mut templates: [RoundTemplate; L] = core::array::from_fn(|l| hashers[entry(l)].template);
    for _ in 1..rounds {
        for l in 0..L {
            let t = &mut templates[l];
            t.buffer[t.digest_offset..t.digest_offset + DIGEST_LEN].copy_from_slice(&out[entry(l)]);
        }
        let mut states: [[u32; 8]; L] = core::array::from_fn(|l| templates[l].initial_state);
        for b in 0..bpr {
            let blocks: [&[u8; BLOCK_LEN]; L] = core::array::from_fn(|l| {
                templates[l].buffer[b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                    .try_into()
                    .expect("exact block")
            });
            compress_lanes(&mut states, blocks);
        }
        for (l, &i) in lane_indices.iter().enumerate() {
            out[i] = state_to_digest(&states[l]);
        }
    }
}

/// Reference implementation of [`iterated_hash`]: a fresh incremental
/// hasher per round, exactly as the seed version of this crate computed it.
///
/// Kept (and exercised by the equivalence proptests) as the specification
/// the optimized one-shot/midstate/multi-lane paths must match, and as the
/// baseline the `micro_primitives` benches measure speedups against.
pub fn iterated_hash_reference(salt: &[u8], message: &[u8], iterations: u32) -> Digest {
    let rounds = iterations.max(1);
    let mut h = Sha256::new();
    h.update(salt);
    h.update(message);
    let mut digest = h.finalize();
    for _ in 1..rounds {
        let mut h = Sha256::new();
        h.update(salt);
        h.update(&digest);
        digest = h.finalize();
    }
    digest
}

/// Precomputed per-round layout for iterated hashing under a fixed salt.
///
/// Every round after the first hashes `salt || digest` where only the
/// 32-byte digest changes, so the whole padded message — salt remainder,
/// digest slot, 0x80 terminator, zeros, bit length — is laid out once.
/// Advancing a round is then: overwrite the digest slot, reset the state to
/// the precomputed midstate, and run one compression per remaining block
/// (exactly one block for salts up to 23 bytes).
/// Upper bound on a round's padded message: the salt tail is at most 63
/// bytes, so `tail || digest || 0x80 || zeros || length` is at most
/// `63 + 32 + 9 = 104` bytes, padded to two blocks.
const ROUND_BUF_LEN: usize = 2 * BLOCK_LEN;

#[derive(Clone, Copy)]
struct RoundTemplate {
    /// `H0` advanced over the salt's full 64-byte blocks (paid once).
    initial_state: [u32; 8],
    /// The remaining padded blocks: `salt_tail || digest slot || padding`.
    /// Fixed-size so templates are plain stack values — copying one per
    /// guess loop costs no heap allocation.
    buffer: [u8; ROUND_BUF_LEN],
    /// Valid 64-byte blocks in `buffer` (1 for salts ≤ 23 bytes mod 64,
    /// else 2).
    blocks: usize,
    /// Offset of the 32-byte digest slot in `buffer` (= `salt.len() % 64`).
    digest_offset: usize,
}

impl RoundTemplate {
    /// Build from an already-computed salt [`Midstate`], so the salt's full
    /// blocks are absorbed exactly once per [`SaltedHasher`].
    fn from_midstate(midstate: &Midstate) -> Self {
        let initial_state = *midstate.state();
        let tail = midstate.tail();
        let content_len = tail.len() + DIGEST_LEN;
        // Merkle–Damgård padding: 0x80, zeros, 8-byte big-endian bit length
        // of the *whole* message (salt || digest).
        let padded_len = (content_len + 1 + 8).div_ceil(BLOCK_LEN) * BLOCK_LEN;
        let mut buffer = [0u8; ROUND_BUF_LEN];
        buffer[..tail.len()].copy_from_slice(tail);
        buffer[content_len] = 0x80;
        let total_bits = (midstate.prefix_len() + DIGEST_LEN as u64) * 8;
        buffer[padded_len - 8..padded_len].copy_from_slice(&total_bits.to_be_bytes());
        Self {
            initial_state,
            buffer,
            blocks: padded_len / BLOCK_LEN,
            digest_offset: tail.len(),
        }
    }

    /// Number of 64-byte blocks compressed per round.
    fn blocks_per_round(&self) -> usize {
        self.blocks
    }

    /// One round: `h(salt || digest)`.
    fn advance(&mut self, digest: &Digest) -> Digest {
        self.buffer[self.digest_offset..self.digest_offset + DIGEST_LEN].copy_from_slice(digest);
        let mut state = self.initial_state;
        for chunk in self.buffer[..self.blocks * BLOCK_LEN].chunks_exact(BLOCK_LEN) {
            let block: &[u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
            compress(&mut state, block);
        }
        state_to_digest(&state)
    }
}

/// Iterated salted hashing with the per-salt work hoisted out of the loop.
///
/// Construction precomputes a [`Midstate`] for the first absorption of
/// `salt || message` and a `RoundTemplate` for the `salt || digest`
/// rounds.  The hasher is cheap to clone and immutable in use, so a
/// verification server can build one per account and reuse it across login
/// attempts, and an attacker (our simulated one, anyway) builds one per
/// target.
#[derive(Clone)]
pub struct SaltedHasher {
    first: Midstate,
    template: RoundTemplate,
}

impl core::fmt::Debug for SaltedHasher {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SaltedHasher")
            .field("salt_len", &self.first.prefix_len())
            .finish_non_exhaustive()
    }
}

impl SaltedHasher {
    /// Precompute the salt-dependent state (the salt's full blocks are
    /// absorbed once and shared by the first-round midstate and the
    /// per-round template).
    pub fn new(salt: &[u8]) -> Self {
        let first = Midstate::new(salt);
        let template = RoundTemplate::from_midstate(&first);
        Self { first, template }
    }

    /// SHA-256 compressions executed per `salt || digest` round (1 for
    /// salts up to 23 bytes — the one-block fast path).
    pub fn blocks_per_round(&self) -> usize {
        self.template.blocks_per_round()
    }

    /// Apply SHA-256 `iterations` times to `salt || message`.
    ///
    /// Edge semantics (normative, tested):
    ///
    /// * `iterations == 0` clamps to 1 — a zero-round hash would store the
    ///   message in the clear, which is never acceptable;
    /// * an empty salt is a valid (if inadvisable) configuration: rounds
    ///   hash the bare 32-byte digest, which still fits the one-block fast
    ///   path.
    pub fn iterated(&self, message: &[u8], iterations: u32) -> Digest {
        let rounds = iterations.max(1);
        let mut digest = self.first.digest_suffix(message);
        if rounds > 1 {
            // Stack copy (templates are `Copy`): the loop heap-allocates
            // nothing, keeping `VerifyScratch`-style callers allocation-free.
            let mut template = self.template;
            for _ in 1..rounds {
                digest = template.advance(&digest);
            }
        }
        digest
    }

    /// Batched [`SaltedHasher::iterated`] over independent messages,
    /// [`LANES`] at a time.
    pub fn iterated_many(&self, messages: &[&[u8]], iterations: u32) -> Vec<Digest> {
        let mut out = Vec::new();
        self.iterated_many_into(messages, iterations, &mut out);
        out
    }

    /// [`SaltedHasher::iterated_many`] writing into a caller-provided
    /// buffer, so a steady-state guess loop performs no allocation.
    pub fn iterated_many_into(&self, messages: &[&[u8]], iterations: u32, out: &mut Vec<Digest>) {
        self.iterated_many_lanes_into::<LANES>(messages, iterations, out);
    }

    /// Lane-count-generic batched hashing; exposed so the benches can sweep
    /// `L` (2/4/8) — production callers use [`SaltedHasher::iterated_many`]
    /// with the tuned default.
    pub fn iterated_many_lanes_into<const L: usize>(
        &self,
        messages: &[&[u8]],
        iterations: u32,
        out: &mut Vec<Digest>,
    ) {
        assert!(L > 0, "at least one lane");
        let rounds = iterations.max(1);
        out.clear();
        out.extend(messages.iter().map(|m| self.first.digest_suffix(m)));
        if rounds == 1 {
            return;
        }

        // Each lane mutates only the digest slot of its own template copy;
        // templates are stack values allocated once for the whole batch.
        let mut templates = [self.template; L];
        let blocks_per_round = self.template.blocks_per_round();
        let mut chunks = out.chunks_exact_mut(L);
        for lane_digests in chunks.by_ref() {
            for _ in 1..rounds {
                let mut states = [self.template.initial_state; L];
                for l in 0..L {
                    let t = &mut templates[l];
                    t.buffer[t.digest_offset..t.digest_offset + DIGEST_LEN]
                        .copy_from_slice(&lane_digests[l]);
                }
                for b in 0..blocks_per_round {
                    let blocks: [&[u8; BLOCK_LEN]; L] = core::array::from_fn(|l| {
                        templates[l].buffer[b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                            .try_into()
                            .expect("exact block")
                    });
                    compress_lanes(&mut states, blocks);
                }
                for l in 0..L {
                    lane_digests[l] = state_to_digest(&states[l]);
                }
            }
        }
        // Remainder lanes (fewer than L messages left) run the scalar path.
        for digest in chunks.into_remainder() {
            let mut template = self.template;
            let mut d = *digest;
            for _ in 1..rounds {
                d = template.advance(&d);
            }
            *digest = d;
        }
    }
}

/// A finished password hash together with the parameters needed to verify
/// it.  The salt and iteration count are public; only the pre-image (the
/// discretized password) is secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordHash {
    /// Per-user salt stored in the clear.
    pub salt: Vec<u8>,
    /// Number of hash iterations applied.
    pub iterations: u32,
    /// The resulting digest.
    pub digest: Digest,
}

impl PasswordHash {
    /// Verify `message` against this hash in constant time.
    pub fn verify(&self, message: &[u8]) -> bool {
        let candidate = iterated_hash(&self.salt, message, self.iterations);
        ct_eq(&candidate, &self.digest)
    }

    /// Serialize as `iterations$salt_hex$digest_hex` for the password file.
    pub fn to_record(&self) -> String {
        format!(
            "{}${}${}",
            self.iterations,
            crate::hex::encode(&self.salt),
            crate::hex::encode(&self.digest)
        )
    }

    /// Parse a record produced by [`PasswordHash::to_record`].
    pub fn from_record(record: &str) -> Option<Self> {
        let mut parts = record.splitn(3, '$');
        let iterations: u32 = parts.next()?.parse().ok()?;
        let salt = crate::hex::decode(parts.next()?).ok()?;
        let digest_bytes = crate::hex::decode(parts.next()?).ok()?;
        if digest_bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut digest = [0u8; DIGEST_LEN];
        digest.copy_from_slice(&digest_bytes);
        Some(Self {
            salt,
            iterations,
            digest,
        })
    }
}

/// Policy object describing how passwords are hashed: domain label, salt
/// construction and iteration count.
///
/// ```
/// use gp_crypto::PasswordHasher;
///
/// let hasher = PasswordHasher::new("passpoints", 1000);
/// let stored = hasher.hash(b"alice", b"discretized password bytes");
/// assert!(stored.verify_with(&hasher, b"alice", b"discretized password bytes"));
/// assert!(!stored.verify_with(&hasher, b"alice", b"wrong guess"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordHasher {
    /// Domain-separation label mixed into every salt.
    pub domain: String,
    /// Iteration count (the paper's example: 1000).
    pub iterations: u32,
}

impl PasswordHasher {
    /// Default iteration count used throughout the repository, matching the
    /// paper's `h^1000` example.
    pub const DEFAULT_ITERATIONS: u32 = 1000;

    /// Create a hasher with an explicit iteration count.
    pub fn new(domain: impl Into<String>, iterations: u32) -> Self {
        Self {
            domain: domain.into(),
            iterations: iterations.max(1),
        }
    }

    /// Create a hasher with [`Self::DEFAULT_ITERATIONS`].
    pub fn with_default_iterations(domain: impl Into<String>) -> Self {
        Self::new(domain, Self::DEFAULT_ITERATIONS)
    }

    /// Build the salt for a given user identifier.
    ///
    /// The salt is `domain || 0x1f || user_id`, stored in the clear alongside
    /// the hash exactly as the paper describes for the user-identifier salt.
    pub fn salt_for(&self, user_id: &[u8]) -> Vec<u8> {
        let mut salt = Vec::with_capacity(self.domain.len() + 1 + user_id.len());
        salt.extend_from_slice(self.domain.as_bytes());
        salt.push(0x1f);
        salt.extend_from_slice(user_id);
        salt
    }

    /// Hash `message` for user `user_id`.
    pub fn hash(&self, user_id: &[u8], message: &[u8]) -> PasswordHash {
        let salt = self.salt_for(user_id);
        let digest = iterated_hash(&salt, message, self.iterations);
        PasswordHash {
            salt,
            iterations: self.iterations,
            digest,
        }
    }

    /// Hash `message` for user `user_id`, returning only the digest.
    ///
    /// Useful for attack simulations where millions of candidate digests are
    /// compared against a known stored digest.
    pub fn digest_only(&self, user_id: &[u8], message: &[u8]) -> Digest {
        iterated_hash(&self.salt_for(user_id), message, self.iterations)
    }

    /// Precompute the per-user [`SaltedHasher`] so repeated hashing for one
    /// account (login verification, per-target guess loops) pays the salt
    /// setup once.
    pub fn salted(&self, user_id: &[u8]) -> SaltedHasher {
        SaltedHasher::new(&self.salt_for(user_id))
    }

    /// Batched [`PasswordHasher::digest_only`]: digests of many candidate
    /// messages for one user, through the multi-lane fast path.
    pub fn digest_many(&self, user_id: &[u8], messages: &[&[u8]]) -> Vec<Digest> {
        self.salted(user_id)
            .iterated_many(messages, self.iterations)
    }
}

impl PasswordHash {
    /// Verify that this hash was produced by `hasher` for `user_id` and
    /// `message`.  Checks the salt and iteration count as well as the digest.
    pub fn verify_with(&self, hasher: &PasswordHasher, user_id: &[u8], message: &[u8]) -> bool {
        self.iterations == hasher.iterations
            && self.salt == hasher.salt_for(user_id)
            && self.verify(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterations_treated_as_one() {
        assert_eq!(iterated_hash(b"s", b"m", 0), iterated_hash(b"s", b"m", 1));
        // The clamp holds on every code path: reference, scalar fast path,
        // and the batched lanes.
        assert_eq!(
            iterated_hash_reference(b"s", b"m", 0),
            iterated_hash(b"s", b"m", 0)
        );
        assert_eq!(
            iterated_hash_many(b"s", &[b"m"], 0),
            vec![iterated_hash(b"s", b"m", 1)]
        );
    }

    #[test]
    fn empty_salt_takes_the_one_block_path_and_matches_reference() {
        let hasher = SaltedHasher::new(b"");
        assert_eq!(hasher.blocks_per_round(), 1, "empty salt must be one-shot");
        for iterations in [0u32, 1, 2, 7, 100] {
            assert_eq!(
                hasher.iterated(b"message", iterations),
                iterated_hash_reference(b"", b"message", iterations),
                "iterations {iterations}"
            );
        }
        // And the first round with an empty message too.
        assert_eq!(
            iterated_hash(b"", b"", 3),
            iterated_hash_reference(b"", b"", 3)
        );
    }

    #[test]
    fn optimized_matches_reference_across_salt_length_regimes() {
        // 23 is the one-block boundary, 64 the full-block boundary, 87 the
        // two-block boundary; probe each side of all three.
        let message = b"a discretized password pre-image that spans multiple blocks....";
        for salt_len in [0usize, 1, 22, 23, 24, 55, 63, 64, 65, 87, 88, 128, 200] {
            let salt: Vec<u8> = (0..salt_len).map(|i| (i * 7 % 251) as u8).collect();
            let hasher = SaltedHasher::new(&salt);
            let expected_blocks = (salt_len % 64 + DIGEST_LEN + 9).div_ceil(64);
            assert_eq!(
                hasher.blocks_per_round(),
                expected_blocks,
                "salt {salt_len}"
            );
            for iterations in [1u32, 2, 3, 50] {
                assert_eq!(
                    hasher.iterated(message, iterations),
                    iterated_hash_reference(&salt, message, iterations),
                    "salt {salt_len}, iterations {iterations}"
                );
            }
        }
    }

    #[test]
    fn many_matches_scalar_for_every_batch_size() {
        let salt = b"gp-passwords/v1\x1falice";
        let messages: Vec<Vec<u8>> = (0..11)
            .map(|i| (0..40 + i).map(|j| ((i * 91 + j) % 251) as u8).collect())
            .collect();
        for count in 0..=messages.len() {
            let refs: Vec<&[u8]> = messages[..count].iter().map(Vec::as_slice).collect();
            let batched = iterated_hash_many(salt, &refs, 37);
            let scalar: Vec<_> = refs
                .iter()
                .map(|m| iterated_hash_reference(salt, m, 37))
                .collect();
            assert_eq!(batched, scalar, "batch of {count}");
        }
    }

    #[test]
    fn lane_sweep_is_bit_identical() {
        let salt = b"bench-salt";
        let messages: Vec<Vec<u8>> = (0..9).map(|i| vec![i as u8; 30]).collect();
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let hasher = SaltedHasher::new(salt);
        let expected = hasher.iterated_many(&refs, 25);
        for_each_lane_count(&hasher, &refs, 25, &expected);
    }

    fn for_each_lane_count(
        hasher: &SaltedHasher,
        messages: &[&[u8]],
        iterations: u32,
        expected: &[Digest],
    ) {
        let mut out = Vec::new();
        hasher.iterated_many_lanes_into::<1>(messages, iterations, &mut out);
        assert_eq!(out, expected, "1 lane");
        hasher.iterated_many_lanes_into::<2>(messages, iterations, &mut out);
        assert_eq!(out, expected, "2 lanes");
        hasher.iterated_many_lanes_into::<8>(messages, iterations, &mut out);
        assert_eq!(out, expected, "8 lanes");
    }

    #[test]
    fn many_salted_matches_scalar_across_batch_sizes_and_salt_lengths() {
        // Salt lengths straddle the one-block/two-block boundary (23 bytes)
        // so the bucketing by blocks_per_round is exercised inside a single
        // batch, and batch sizes straddle the LANES remainder path.
        let salts: Vec<Vec<u8>> = (0..40)
            .map(|i| {
                (0..(i * 5) % 41)
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect()
            })
            .collect();
        let messages: Vec<Vec<u8>> = (0..40)
            .map(|i| (0..30 + i).map(|j| ((i * 17 + j) % 251) as u8).collect())
            .collect();
        let hashers: Vec<SaltedHasher> = salts.iter().map(|s| SaltedHasher::new(s)).collect();
        for count in [0usize, 1, 2, 15, 16, 17, 33, 40] {
            let hasher_refs: Vec<&SaltedHasher> = hashers[..count].iter().collect();
            let msg_refs: Vec<&[u8]> = messages[..count].iter().map(Vec::as_slice).collect();
            for iterations in [0u32, 1, 2, 29] {
                let batched = iterated_hash_many_salted(&hasher_refs, &msg_refs, iterations);
                let scalar: Vec<Digest> = (0..count)
                    .map(|i| iterated_hash_reference(&salts[i], &messages[i], iterations))
                    .collect();
                assert_eq!(batched, scalar, "batch of {count}, {iterations} iterations");
            }
        }
    }

    #[test]
    fn many_salted_into_reuses_the_output_buffer() {
        let a = SaltedHasher::new(b"salt-a");
        let b = SaltedHasher::new(b"salt-b-that-is-much-longer-than-one-block-boundary");
        let mut out = Vec::with_capacity(8);
        iterated_hash_many_salted_into(&[&a, &b], &[b"m1", b"m2"], 5, &mut out);
        assert_eq!(out.len(), 2);
        let capacity = out.capacity();
        iterated_hash_many_salted_into(&[&b], &[b"m3"], 5, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.capacity(), capacity, "no reallocation on reuse");
        assert_eq!(
            out[0],
            iterated_hash(
                b"salt-b-that-is-much-longer-than-one-block-boundary",
                b"m3",
                5
            )
        );
    }

    #[test]
    #[should_panic(expected = "one salted hasher per message")]
    fn many_salted_rejects_mismatched_lengths() {
        let h = SaltedHasher::new(b"s");
        iterated_hash_many_salted(&[&h], &[], 3);
    }

    #[test]
    fn iterated_many_into_reuses_the_output_buffer() {
        let hasher = SaltedHasher::new(b"s");
        let mut out = Vec::with_capacity(8);
        hasher.iterated_many_into(&[b"a", b"b", b"c"], 5, &mut out);
        assert_eq!(out.len(), 3);
        let capacity = out.capacity();
        hasher.iterated_many_into(&[b"d", b"e"], 5, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out.capacity(), capacity, "no reallocation on reuse");
        assert_eq!(out[0], iterated_hash(b"s", b"d", 5));
    }

    #[test]
    fn salted_password_hasher_agrees_with_digest_only() {
        let hasher = PasswordHasher::new("test", 40);
        let salted = hasher.salted(b"carol");
        assert_eq!(
            salted.iterated(b"pre-image", 40),
            hasher.digest_only(b"carol", b"pre-image")
        );
        assert_eq!(
            hasher.digest_many(b"carol", &[b"g1", b"g2", b"g3", b"g4", b"g5"]),
            vec![
                hasher.digest_only(b"carol", b"g1"),
                hasher.digest_only(b"carol", b"g2"),
                hasher.digest_only(b"carol", b"g3"),
                hasher.digest_only(b"carol", b"g4"),
                hasher.digest_only(b"carol", b"g5"),
            ]
        );
    }

    #[test]
    fn iteration_counts_give_distinct_digests() {
        let d1 = iterated_hash(b"s", b"m", 1);
        let d2 = iterated_hash(b"s", b"m", 2);
        let d1000 = iterated_hash(b"s", b"m", 1000);
        assert_ne!(d1, d2);
        assert_ne!(d2, d1000);
        assert_ne!(d1, d1000);
    }

    #[test]
    fn salt_changes_digest() {
        assert_ne!(
            iterated_hash(b"salt-a", b"m", 10),
            iterated_hash(b"salt-b", b"m", 10)
        );
    }

    #[test]
    fn iterated_is_composition_of_single_rounds() {
        // h^3(m) must equal manually chaining three salted rounds.
        let salt = b"salty";
        let msg = b"message";
        let step1 = iterated_hash(salt, msg, 1);
        let step2 = {
            let mut h = Sha256::new();
            h.update(salt);
            h.update(&step1);
            h.finalize()
        };
        let step3 = {
            let mut h = Sha256::new();
            h.update(salt);
            h.update(&step2);
            h.finalize()
        };
        assert_eq!(iterated_hash(salt, msg, 3), step3);
    }

    #[test]
    fn password_hash_verify() {
        let hasher = PasswordHasher::new("test", 50);
        let stored = hasher.hash(b"user-7", b"the password bytes");
        assert!(stored.verify(b"the password bytes"));
        assert!(!stored.verify(b"not the password"));
        assert!(stored.verify_with(&hasher, b"user-7", b"the password bytes"));
        assert!(!stored.verify_with(&hasher, b"user-8", b"the password bytes"));
    }

    #[test]
    fn verify_with_rejects_wrong_iteration_count() {
        let hasher = PasswordHasher::new("test", 50);
        let other = PasswordHasher::new("test", 51);
        let stored = hasher.hash(b"u", b"m");
        assert!(!stored.verify_with(&other, b"u", b"m"));
    }

    #[test]
    fn record_round_trip() {
        let hasher = PasswordHasher::with_default_iterations("passpoints");
        let stored = hasher.hash(b"alice", b"secret");
        let record = stored.to_record();
        let parsed = PasswordHash::from_record(&record).expect("parse");
        assert_eq!(parsed, stored);
        assert!(parsed.verify(b"secret"));
    }

    #[test]
    fn record_parse_rejects_garbage() {
        assert!(PasswordHash::from_record("").is_none());
        assert!(PasswordHash::from_record("abc").is_none());
        assert!(PasswordHash::from_record("10$zz$aabb").is_none());
        assert!(PasswordHash::from_record("10$aa$deadbeef").is_none()); // digest too short
        assert!(PasswordHash::from_record("notanumber$aa$bb").is_none());
    }

    #[test]
    fn domain_separation() {
        let a = PasswordHasher::new("passpoints", 10);
        let b = PasswordHasher::new("netauth", 10);
        assert_ne!(a.digest_only(b"user", b"m"), b.digest_only(b"user", b"m"));
    }

    #[test]
    fn default_iterations_match_paper_example() {
        assert_eq!(PasswordHasher::DEFAULT_ITERATIONS, 1000);
        let h = PasswordHasher::with_default_iterations("x");
        assert_eq!(h.iterations, 1000);
    }
}
