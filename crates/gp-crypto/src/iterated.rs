//! Iterated ("stretched") password hashing.
//!
//! Section 3.2 of the paper recommends two hardening measures for the stored
//! hash of the discretized password:
//!
//! 1. a per-user salt ("a user identifier could be added to the hash ... and
//!    also stored in clear-text"), preventing pre-computed dictionaries from
//!    being reused across accounts; and
//! 2. iterated hashing ("using h^1000 effectively adds 10 bits of
//!    security"), multiplying the attacker's per-guess cost.
//!
//! [`PasswordHasher`] packages both together with a domain-separation label
//! so that hashes computed for different purposes (PassPoints vs the
//! networked protocol's proof messages) can never collide.

use crate::ct::ct_eq;
use crate::sha256::{Digest, Sha256, DIGEST_LEN};

/// Apply SHA-256 `iterations` times to `salt || message`.
///
/// `iterations = 1` is a plain salted hash; the paper's example uses 1000.
/// `iterations = 0` is treated as 1 (hashing zero times would store the
/// message in the clear, which is never acceptable).
///
/// ```
/// use gp_crypto::iterated_hash;
/// let once = iterated_hash(b"salt", b"msg", 1);
/// let thousand = iterated_hash(b"salt", b"msg", 1000);
/// assert_ne!(once, thousand);
/// ```
pub fn iterated_hash(salt: &[u8], message: &[u8], iterations: u32) -> Digest {
    let rounds = iterations.max(1);
    let mut h = Sha256::new();
    h.update(salt);
    h.update(message);
    let mut digest = h.finalize();
    for _ in 1..rounds {
        let mut h = Sha256::new();
        h.update(salt);
        h.update(&digest);
        digest = h.finalize();
    }
    digest
}

/// A finished password hash together with the parameters needed to verify
/// it.  The salt and iteration count are public; only the pre-image (the
/// discretized password) is secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordHash {
    /// Per-user salt stored in the clear.
    pub salt: Vec<u8>,
    /// Number of hash iterations applied.
    pub iterations: u32,
    /// The resulting digest.
    pub digest: Digest,
}

impl PasswordHash {
    /// Verify `message` against this hash in constant time.
    pub fn verify(&self, message: &[u8]) -> bool {
        let candidate = iterated_hash(&self.salt, message, self.iterations);
        ct_eq(&candidate, &self.digest)
    }

    /// Serialize as `iterations$salt_hex$digest_hex` for the password file.
    pub fn to_record(&self) -> String {
        format!(
            "{}${}${}",
            self.iterations,
            crate::hex::encode(&self.salt),
            crate::hex::encode(&self.digest)
        )
    }

    /// Parse a record produced by [`PasswordHash::to_record`].
    pub fn from_record(record: &str) -> Option<Self> {
        let mut parts = record.splitn(3, '$');
        let iterations: u32 = parts.next()?.parse().ok()?;
        let salt = crate::hex::decode(parts.next()?).ok()?;
        let digest_bytes = crate::hex::decode(parts.next()?).ok()?;
        if digest_bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut digest = [0u8; DIGEST_LEN];
        digest.copy_from_slice(&digest_bytes);
        Some(Self {
            salt,
            iterations,
            digest,
        })
    }
}

/// Policy object describing how passwords are hashed: domain label, salt
/// construction and iteration count.
///
/// ```
/// use gp_crypto::PasswordHasher;
///
/// let hasher = PasswordHasher::new("passpoints", 1000);
/// let stored = hasher.hash(b"alice", b"discretized password bytes");
/// assert!(stored.verify_with(&hasher, b"alice", b"discretized password bytes"));
/// assert!(!stored.verify_with(&hasher, b"alice", b"wrong guess"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordHasher {
    /// Domain-separation label mixed into every salt.
    pub domain: String,
    /// Iteration count (the paper's example: 1000).
    pub iterations: u32,
}

impl PasswordHasher {
    /// Default iteration count used throughout the repository, matching the
    /// paper's `h^1000` example.
    pub const DEFAULT_ITERATIONS: u32 = 1000;

    /// Create a hasher with an explicit iteration count.
    pub fn new(domain: impl Into<String>, iterations: u32) -> Self {
        Self {
            domain: domain.into(),
            iterations: iterations.max(1),
        }
    }

    /// Create a hasher with [`Self::DEFAULT_ITERATIONS`].
    pub fn with_default_iterations(domain: impl Into<String>) -> Self {
        Self::new(domain, Self::DEFAULT_ITERATIONS)
    }

    /// Build the salt for a given user identifier.
    ///
    /// The salt is `domain || 0x1f || user_id`, stored in the clear alongside
    /// the hash exactly as the paper describes for the user-identifier salt.
    pub fn salt_for(&self, user_id: &[u8]) -> Vec<u8> {
        let mut salt = Vec::with_capacity(self.domain.len() + 1 + user_id.len());
        salt.extend_from_slice(self.domain.as_bytes());
        salt.push(0x1f);
        salt.extend_from_slice(user_id);
        salt
    }

    /// Hash `message` for user `user_id`.
    pub fn hash(&self, user_id: &[u8], message: &[u8]) -> PasswordHash {
        let salt = self.salt_for(user_id);
        let digest = iterated_hash(&salt, message, self.iterations);
        PasswordHash {
            salt,
            iterations: self.iterations,
            digest,
        }
    }

    /// Hash `message` for user `user_id`, returning only the digest.
    ///
    /// Useful for attack simulations where millions of candidate digests are
    /// compared against a known stored digest.
    pub fn digest_only(&self, user_id: &[u8], message: &[u8]) -> Digest {
        iterated_hash(&self.salt_for(user_id), message, self.iterations)
    }
}

impl PasswordHash {
    /// Verify that this hash was produced by `hasher` for `user_id` and
    /// `message`.  Checks the salt and iteration count as well as the digest.
    pub fn verify_with(&self, hasher: &PasswordHasher, user_id: &[u8], message: &[u8]) -> bool {
        self.iterations == hasher.iterations
            && self.salt == hasher.salt_for(user_id)
            && self.verify(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterations_treated_as_one() {
        assert_eq!(
            iterated_hash(b"s", b"m", 0),
            iterated_hash(b"s", b"m", 1)
        );
    }

    #[test]
    fn iteration_counts_give_distinct_digests() {
        let d1 = iterated_hash(b"s", b"m", 1);
        let d2 = iterated_hash(b"s", b"m", 2);
        let d1000 = iterated_hash(b"s", b"m", 1000);
        assert_ne!(d1, d2);
        assert_ne!(d2, d1000);
        assert_ne!(d1, d1000);
    }

    #[test]
    fn salt_changes_digest() {
        assert_ne!(
            iterated_hash(b"salt-a", b"m", 10),
            iterated_hash(b"salt-b", b"m", 10)
        );
    }

    #[test]
    fn iterated_is_composition_of_single_rounds() {
        // h^3(m) must equal manually chaining three salted rounds.
        let salt = b"salty";
        let msg = b"message";
        let step1 = iterated_hash(salt, msg, 1);
        let step2 = {
            let mut h = Sha256::new();
            h.update(salt);
            h.update(&step1);
            h.finalize()
        };
        let step3 = {
            let mut h = Sha256::new();
            h.update(salt);
            h.update(&step2);
            h.finalize()
        };
        assert_eq!(iterated_hash(salt, msg, 3), step3);
    }

    #[test]
    fn password_hash_verify() {
        let hasher = PasswordHasher::new("test", 50);
        let stored = hasher.hash(b"user-7", b"the password bytes");
        assert!(stored.verify(b"the password bytes"));
        assert!(!stored.verify(b"not the password"));
        assert!(stored.verify_with(&hasher, b"user-7", b"the password bytes"));
        assert!(!stored.verify_with(&hasher, b"user-8", b"the password bytes"));
    }

    #[test]
    fn verify_with_rejects_wrong_iteration_count() {
        let hasher = PasswordHasher::new("test", 50);
        let other = PasswordHasher::new("test", 51);
        let stored = hasher.hash(b"u", b"m");
        assert!(!stored.verify_with(&other, b"u", b"m"));
    }

    #[test]
    fn record_round_trip() {
        let hasher = PasswordHasher::with_default_iterations("passpoints");
        let stored = hasher.hash(b"alice", b"secret");
        let record = stored.to_record();
        let parsed = PasswordHash::from_record(&record).expect("parse");
        assert_eq!(parsed, stored);
        assert!(parsed.verify(b"secret"));
    }

    #[test]
    fn record_parse_rejects_garbage() {
        assert!(PasswordHash::from_record("").is_none());
        assert!(PasswordHash::from_record("abc").is_none());
        assert!(PasswordHash::from_record("10$zz$aabb").is_none());
        assert!(PasswordHash::from_record("10$aa$deadbeef").is_none()); // digest too short
        assert!(PasswordHash::from_record("notanumber$aa$bb").is_none());
    }

    #[test]
    fn domain_separation() {
        let a = PasswordHasher::new("passpoints", 10);
        let b = PasswordHasher::new("netauth", 10);
        assert_ne!(
            a.digest_only(b"user", b"m"),
            b.digest_only(b"user", b"m")
        );
    }

    #[test]
    fn default_iterations_match_paper_example() {
        assert_eq!(PasswordHasher::DEFAULT_ITERATIONS, 1000);
        let h = PasswordHasher::with_default_iterations("x");
        assert_eq!(h.iterations, 1000);
    }
}
