//! From-scratch cryptographic primitives used by the graphical password
//! system described in *Centered Discretization with Application to
//! Graphical Passwords* (Chiasson et al., UPSEC 2008).
//!
//! The paper requires that discretized click-points (grid-square
//! identifiers) be stored only in cryptographically hashed form, optionally
//! salted with a user identifier and strengthened with iterated hashing
//! ("using h^1000 effectively adds 10 bits of security").  This crate
//! provides everything needed for that storage layer, implemented from
//! scratch so that the reproduction has no external cryptographic
//! dependencies:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 with an incremental [`Sha256`] hasher,
//!   a single-compression fast path for one-block messages, and a reusable
//!   [`Midstate`] for fixed prefixes (salts).
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104) used for keyed integrity checks in
//!   the networked authentication substrate.
//! * [`iterated`] — iterated ("stretched") hashing `h^k`: the scalar
//!   one-shot/midstate path ([`SaltedHasher`]), the
//!   multi-lane batched path ([`iterated_hash_many`]) that advances
//!   [`LANES`] independent guesses per compression loop,
//!   and a convenience [`PasswordHasher`]
//!   combining salt, personalization and iteration count.
//! * [`hex`] — lower-case hexadecimal encoding/decoding for serialized
//!   password files.
//! * [`ct`] — constant-time equality for hash comparison during login.
//!
//! # Example
//!
//! ```
//! use gp_crypto::{sha256::Sha256, hex};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
pub mod hex;
pub mod hmac;
pub mod iterated;
pub mod sha256;

pub use ct::ct_eq;
pub use hmac::HmacSha256;
pub use iterated::{
    iterated_hash, iterated_hash_many, iterated_hash_many_salted, iterated_hash_many_salted_into,
    iterated_hash_reference, PasswordHash, PasswordHasher, SaltedHasher, LANES,
};
pub use sha256::{Digest, Midstate, Sha256, DIGEST_LEN};
