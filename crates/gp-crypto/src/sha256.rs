//! SHA-256 as specified by FIPS 180-4, implemented from scratch.
//!
//! The implementation is a straightforward, allocation-free translation of
//! the specification: a 64-byte block buffer, the 64-round compression
//! function, and Merkle–Damgård length padding.  It is intended for the
//! password-hashing workload of this repository (short messages hashed many
//! times), not as a general-purpose optimized hash library, but it passes
//! the full set of NIST short-message test vectors (see the unit tests).

/// Length in bytes of a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Length in bytes of a SHA-256 message block.
pub const BLOCK_LEN: usize = 64;

/// A SHA-256 digest (32 bytes).
pub type Digest = [u8; DIGEST_LEN];

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 prime numbers (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Largest message that fits a single padded block (block minus the 0x80
/// terminator and the 8-byte length field).
pub(crate) const ONE_BLOCK_MAX: usize = BLOCK_LEN - 9;

/// The SHA-256 compression function: absorb one 64-byte block into `state`.
pub(crate) fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    // Message schedule.
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for t in 0..64 {
        let big_sigma1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(big_sigma1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_sigma0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_sigma0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Multi-lane compression: advance `L` independent hash states over one
/// block each, with the round loops interleaved across lanes.
///
/// SHA-256 is a long serial dependency chain — each round needs the
/// previous round's working variables — so a single hash cannot use a
/// superscalar core's parallel ALU ports.  `L` *independent* chains
/// interleaved in one loop body give the scheduler `L` dependency chains to
/// overlap (the hashcat approach), which is where the multi-lane speedup in
/// `iterated_hash_many` comes from.
// Index-based lane loops are load-bearing here: `w[t][l]` with `l` as the
// innermost index is the exact adjacent-memory shape LLVM auto-vectorizes;
// iterator rewrites break the pattern.
#[allow(clippy::needless_range_loop)]
pub(crate) fn compress_lanes<const L: usize>(
    states: &mut [[u32; 8]; L],
    blocks: [&[u8; BLOCK_LEN]; L],
) {
    // Message schedule, *lane-transposed*: `w[t]` holds round `t`'s word
    // for every lane contiguously, so each schedule step and each round is
    // `L` independent element-wise u32 operations on adjacent memory —
    // the exact shape LLVM's auto-vectorizer turns into SIMD.
    let mut w = [[0u32; L]; 64];
    for l in 0..L {
        for (i, chunk) in blocks[l].chunks_exact(4).enumerate() {
            w[i][l] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    for t in 16..64 {
        for l in 0..L {
            let w15 = w[t - 15][l];
            let w2 = w[t - 2][l];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            w[t][l] = w[t - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7][l])
                .wrapping_add(s1);
        }
    }

    let mut a = [0u32; L];
    let mut b = [0u32; L];
    let mut c = [0u32; L];
    let mut d = [0u32; L];
    let mut e = [0u32; L];
    let mut f = [0u32; L];
    let mut g = [0u32; L];
    let mut h = [0u32; L];
    for l in 0..L {
        [a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]] = states[l];
    }

    for t in 0..64 {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let big_sigma1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ ((!e[l]) & g[l]);
            t1[l] = h[l]
                .wrapping_add(big_sigma1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t][l]);
            let big_sigma0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = big_sigma0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }

    for l in 0..L {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// Serialize a chaining state as a big-endian digest.
pub(crate) fn state_to_digest(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hash a message that fits a single padded block (`len <= 55`) with one
/// compression call and no buffer machinery.
fn digest_one_block(data: &[u8]) -> Digest {
    debug_assert!(data.len() <= ONE_BLOCK_MAX);
    let mut block = [0u8; BLOCK_LEN];
    block[..data.len()].copy_from_slice(data);
    block[data.len()] = 0x80;
    block[BLOCK_LEN - 8..].copy_from_slice(&(data.len() as u64 * 8).to_be_bytes());
    let mut state = H0;
    compress(&mut state, &block);
    state_to_digest(&state)
}

/// Incremental SHA-256 hasher.
///
/// ```
/// use gp_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha256::digest(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    /// Current chaining state (H_0..H_7).
    state: [u32; 8],
    /// Partially filled message block.
    buffer: [u8; BLOCK_LEN],
    /// Number of valid bytes in `buffer`.
    buffer_len: usize,
    /// Total message length processed so far, in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print internal state: a partially hashed password is secret.
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Create a fresh hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return its digest.
    ///
    /// Messages that fit a single padded block (≤ 55 bytes — every salted
    /// digest on the password hot path) skip the incremental buffer
    /// machinery entirely and cost exactly one compression call.
    pub fn digest(data: &[u8]) -> Digest {
        if data.len() <= ONE_BLOCK_MAX {
            return digest_one_block(data);
        }
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            .expect("SHA-256 message longer than 2^64 bits is unsupported");

        let mut input = data;

        // Fill a partially full buffer first.
        if self.buffer_len > 0 {
            let need = BLOCK_LEN - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process whole blocks directly from the input.
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish the hash computation and return the digest, consuming the
    /// hasher state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self
            .total_len
            .checked_mul(8)
            .expect("SHA-256 message longer than 2^64 bits is unsupported");

        // Padding: 0x80, then zeros, then the 64-bit big-endian bit length.
        self.pad_byte(0x80);
        while self.buffer_len != 56 {
            self.pad_byte(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for b in len_bytes {
            self.pad_byte(b);
        }
        debug_assert_eq!(self.buffer_len, 0, "padding must end on a block boundary");

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Hash state after `update` calls without consuming the hasher.
    ///
    /// Equivalent to `self.clone().finalize()`; useful when the same prefix
    /// is extended in several ways (e.g. trying candidate grid identifiers).
    pub fn finalize_clone(&self) -> Digest {
        self.clone().finalize()
    }

    fn pad_byte(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == BLOCK_LEN {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    /// The SHA-256 compression function applied to one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        compress(&mut self.state, block);
    }
}

/// A reusable snapshot of the hash state after absorbing a fixed prefix
/// (typically a per-user salt).
///
/// Hashing `prefix || suffix` through [`Midstate::digest_suffix`] is
/// bit-identical to the straightforward computation but re-absorbs only the
/// prefix bytes past the last full block: for prefixes of 64 bytes or more
/// the leading compressions are paid once at construction instead of once
/// per call — the classic midstate optimization for iterated salted
/// hashing.
#[derive(Clone)]
pub struct Midstate {
    /// State after absorbing all full blocks of the prefix.
    state: [u32; 8],
    /// Bytes absorbed into `state` (a multiple of [`BLOCK_LEN`]).
    block_bytes: u64,
    /// Prefix remainder not yet absorbed (`tail_len < BLOCK_LEN`).
    tail: [u8; BLOCK_LEN],
    /// Valid bytes in `tail`.
    tail_len: usize,
}

impl core::fmt::Debug for Midstate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print internal state: the prefix may be secret.
        f.debug_struct("Midstate")
            .field("prefix_len", &self.prefix_len())
            .finish_non_exhaustive()
    }
}

impl Midstate {
    /// Precompute the state for `prefix`.
    pub fn new(prefix: &[u8]) -> Self {
        let full = prefix.len() / BLOCK_LEN * BLOCK_LEN;
        let mut state = H0;
        for chunk in prefix[..full].chunks_exact(BLOCK_LEN) {
            let block: &[u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
            compress(&mut state, block);
        }
        let mut tail = [0u8; BLOCK_LEN];
        tail[..prefix.len() - full].copy_from_slice(&prefix[full..]);
        Self {
            state,
            block_bytes: full as u64,
            tail,
            tail_len: prefix.len() - full,
        }
    }

    /// Length of the prefix this midstate encodes.
    pub fn prefix_len(&self) -> u64 {
        self.block_bytes + self.tail_len as u64
    }

    /// Chaining state after the prefix's full blocks (for same-crate reuse
    /// when deriving further per-salt structures without re-absorbing).
    pub(crate) fn state(&self) -> &[u32; 8] {
        &self.state
    }

    /// Prefix bytes not yet absorbed into [`Midstate::state`].
    pub(crate) fn tail(&self) -> &[u8] {
        &self.tail[..self.tail_len]
    }

    /// Digest of `prefix || suffix`.
    pub fn digest_suffix(&self, suffix: &[u8]) -> Digest {
        let mut h = Sha256 {
            state: self.state,
            buffer: self.tail,
            buffer_len: self.tail_len,
            total_len: self.prefix_len(),
        };
        h.update(suffix);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_digest(data: &[u8]) -> String {
        hex::encode(&Sha256::digest(data))
    }

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_message() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bit_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_digest(msg),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let expected = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn incremental_many_small_updates() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i * 7 % 256) as u8).collect();
        let expected = Sha256::digest(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), expected);
    }

    #[test]
    fn finalize_clone_does_not_consume() {
        let mut h = Sha256::new();
        h.update(b"prefix");
        let d1 = h.finalize_clone();
        h.update(b"-suffix");
        let d2 = h.finalize();
        assert_eq!(d1, Sha256::digest(b"prefix"));
        assert_eq!(d2, Sha256::digest(b"prefix-suffix"));
    }

    #[test]
    fn digests_differ_for_different_inputs() {
        assert_ne!(Sha256::digest(b"segment:0"), Sha256::digest(b"segment:1"));
    }

    #[test]
    fn block_boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes exercise every padding branch.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            // Just ensure it is internally consistent with a two-step update.
            let mut h2 = Sha256::new();
            let mid = len / 2;
            h2.update(&data[..mid]);
            h2.update(&data[mid..]);
            assert_eq!(h.finalize(), h2.finalize(), "len {len}");
        }
    }

    #[test]
    fn one_block_fast_path_matches_incremental_at_every_length() {
        // 0..=55 take the single-compression path; 56..=70 the general one.
        for len in 0..=70usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(Sha256::digest(&data), h.finalize(), "len {len}");
        }
    }

    #[test]
    fn midstate_matches_direct_hash_for_all_prefix_splits() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let expected = Sha256::digest(&data);
        for split in [0, 1, 23, 24, 55, 56, 63, 64, 65, 127, 128, 129, 300] {
            let midstate = Midstate::new(&data[..split]);
            assert_eq!(midstate.prefix_len(), split as u64);
            assert_eq!(
                midstate.digest_suffix(&data[split..]),
                expected,
                "split {split}"
            );
        }
    }

    #[test]
    fn midstate_is_reusable_across_suffixes() {
        let midstate = Midstate::new(b"per-user salt bytes");
        let d1 = midstate.digest_suffix(b"guess one");
        let d2 = midstate.digest_suffix(b"guess two");
        assert_eq!(d1, Sha256::digest(b"per-user salt bytesguess one"));
        assert_eq!(d2, Sha256::digest(b"per-user salt bytesguess two"));
    }

    #[test]
    fn compress_lanes_agrees_with_scalar_compress() {
        let mut blocks = [[0u8; BLOCK_LEN]; 4];
        for (l, block) in blocks.iter_mut().enumerate() {
            for (i, byte) in block.iter_mut().enumerate() {
                *byte = (l * 67 + i * 31 % 251) as u8;
            }
        }
        let mut lane_states = [H0; 4];
        compress_lanes(
            &mut lane_states,
            [&blocks[0], &blocks[1], &blocks[2], &blocks[3]],
        );
        for l in 0..4 {
            let mut scalar = H0;
            compress(&mut scalar, &blocks[l]);
            assert_eq!(lane_states[l], scalar, "lane {l}");
        }
    }

    #[test]
    fn midstate_debug_does_not_leak_prefix() {
        let midstate = Midstate::new(b"secret salt");
        let dbg = format!("{midstate:?}");
        assert!(dbg.contains("prefix_len"));
        assert!(!dbg.contains("secret"));
    }

    #[test]
    fn debug_does_not_leak_state() {
        let mut h = Sha256::new();
        h.update(b"super secret click points");
        let dbg = format!("{h:?}");
        assert!(dbg.contains("total_len"));
        assert!(!dbg.contains("secret"));
    }
}
