//! Property-based tests for the crypto substrate.

use gp_crypto::{ct_eq, hex, iterated_hash, HmacSha256, PasswordHasher, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunk boundaries must equal the
    /// one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Hex encoding round-trips arbitrary byte strings.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(encoded.len(), data.len() * 2);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }

    /// Constant-time equality agrees with `==`.
    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// ct_eq is reflexive.
    #[test]
    fn ct_eq_reflexive(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(ct_eq(&a, &a));
    }

    /// HMAC verification accepts the genuine tag and rejects a flipped bit.
    #[test]
    fn hmac_verify_and_tamper(key in proptest::collection::vec(any::<u8>(), 0..128),
                              msg in proptest::collection::vec(any::<u8>(), 0..256),
                              flip_byte in 0usize..32, flip_bit in 0u8..8) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
        let mut bad = tag;
        bad[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!HmacSha256::verify(&key, &msg, &bad));
    }

    /// The password hasher verifies exactly the message it hashed.
    #[test]
    fn password_hash_round_trip(user in proptest::collection::vec(any::<u8>(), 0..32),
                                msg in proptest::collection::vec(any::<u8>(), 0..128),
                                iterations in 1u32..64) {
        let hasher = PasswordHasher::new("prop", iterations);
        let stored = hasher.hash(&user, &msg);
        prop_assert!(stored.verify(&msg));
        prop_assert!(stored.verify_with(&hasher, &user, &msg));
        // A different message of the same length must not verify.
        if !msg.is_empty() {
            let mut other = msg.clone();
            other[0] = other[0].wrapping_add(1);
            prop_assert!(!stored.verify(&other));
        }
    }

    /// Password-hash records survive serialization.
    #[test]
    fn password_record_round_trip(user in proptest::collection::vec(any::<u8>(), 0..16),
                                  msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hasher = PasswordHasher::new("prop", 3);
        let stored = hasher.hash(&user, &msg);
        let parsed = gp_crypto::PasswordHash::from_record(&stored.to_record()).unwrap();
        prop_assert_eq!(parsed, stored);
    }

    /// Iterated hashing with distinct iteration counts never collides on the
    /// same (salt, message) pair — a regression guard against accidentally
    /// ignoring the iteration parameter.
    #[test]
    fn iterations_matter(salt in proptest::collection::vec(any::<u8>(), 0..16),
                         msg in proptest::collection::vec(any::<u8>(), 0..64),
                         k in 2u32..32) {
        prop_assert_ne!(iterated_hash(&salt, &msg, 1), iterated_hash(&salt, &msg, k));
    }
}
