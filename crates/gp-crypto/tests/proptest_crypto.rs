//! Property-based tests for the crypto substrate.

use gp_crypto::{
    ct_eq, hex, iterated_hash, iterated_hash_many, iterated_hash_reference, HmacSha256, Midstate,
    PasswordHasher, SaltedHasher, Sha256,
};
use proptest::prelude::*;

proptest! {
    /// The optimized one-shot/midstate scalar path is bit-identical to the
    /// reference implementation for arbitrary salt/message/iterations.
    #[test]
    fn iterated_hash_equals_reference(salt in proptest::collection::vec(any::<u8>(), 0..100),
                                      msg in proptest::collection::vec(any::<u8>(), 0..300),
                                      iterations in 0u32..40) {
        prop_assert_eq!(
            iterated_hash(&salt, &msg, iterations),
            iterated_hash_reference(&salt, &msg, iterations)
        );
    }

    /// The multi-lane batched path is bit-identical to the scalar path for
    /// arbitrary salts, message batches and iteration counts — the
    /// equivalence proof for the whole batched guess pipeline.
    #[test]
    fn iterated_hash_many_equals_scalar(
        salt in proptest::collection::vec(any::<u8>(), 0..80),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 0..40),
        iterations in 0u32..24,
    ) {
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let batched = iterated_hash_many(&salt, &refs, iterations);
        let scalar: Vec<_> = refs
            .iter()
            .map(|m| iterated_hash_reference(&salt, m, iterations))
            .collect();
        prop_assert_eq!(batched, scalar);
    }

    /// Lane-width generic paths all agree with the default.
    #[test]
    fn lane_widths_agree(salt in proptest::collection::vec(any::<u8>(), 0..40),
                         messages in proptest::collection::vec(
                             proptest::collection::vec(any::<u8>(), 0..64), 1..20),
                         iterations in 1u32..12) {
        let refs: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let hasher = SaltedHasher::new(&salt);
        let expected = hasher.iterated_many(&refs, iterations);
        let mut out = Vec::new();
        hasher.iterated_many_lanes_into::<2>(&refs, iterations, &mut out);
        prop_assert_eq!(&out, &expected);
        hasher.iterated_many_lanes_into::<8>(&refs, iterations, &mut out);
        prop_assert_eq!(&out, &expected);
    }

    /// A midstate split at any point of a message reproduces the one-shot
    /// digest.
    #[test]
    fn midstate_split_is_transparent(data in proptest::collection::vec(any::<u8>(), 0..400),
                                     split in 0usize..400) {
        let split = split.min(data.len());
        let midstate = Midstate::new(&data[..split]);
        prop_assert_eq!(midstate.digest_suffix(&data[split..]), Sha256::digest(&data));
    }
    /// Incremental hashing over arbitrary chunk boundaries must equal the
    /// one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Hex encoding round-trips arbitrary byte strings.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(encoded.len(), data.len() * 2);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }

    /// Constant-time equality agrees with `==`.
    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// ct_eq is reflexive.
    #[test]
    fn ct_eq_reflexive(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(ct_eq(&a, &a));
    }

    /// HMAC verification accepts the genuine tag and rejects a flipped bit.
    #[test]
    fn hmac_verify_and_tamper(key in proptest::collection::vec(any::<u8>(), 0..128),
                              msg in proptest::collection::vec(any::<u8>(), 0..256),
                              flip_byte in 0usize..32, flip_bit in 0u8..8) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
        let mut bad = tag;
        bad[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!HmacSha256::verify(&key, &msg, &bad));
    }

    /// The password hasher verifies exactly the message it hashed.
    #[test]
    fn password_hash_round_trip(user in proptest::collection::vec(any::<u8>(), 0..32),
                                msg in proptest::collection::vec(any::<u8>(), 0..128),
                                iterations in 1u32..64) {
        let hasher = PasswordHasher::new("prop", iterations);
        let stored = hasher.hash(&user, &msg);
        prop_assert!(stored.verify(&msg));
        prop_assert!(stored.verify_with(&hasher, &user, &msg));
        // A different message of the same length must not verify.
        if !msg.is_empty() {
            let mut other = msg.clone();
            other[0] = other[0].wrapping_add(1);
            prop_assert!(!stored.verify(&other));
        }
    }

    /// Password-hash records survive serialization.
    #[test]
    fn password_record_round_trip(user in proptest::collection::vec(any::<u8>(), 0..16),
                                  msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hasher = PasswordHasher::new("prop", 3);
        let stored = hasher.hash(&user, &msg);
        let parsed = gp_crypto::PasswordHash::from_record(&stored.to_record()).unwrap();
        prop_assert_eq!(parsed, stored);
    }

    /// Iterated hashing with distinct iteration counts never collides on the
    /// same (salt, message) pair — a regression guard against accidentally
    /// ignoring the iteration parameter.
    #[test]
    fn iterations_matter(salt in proptest::collection::vec(any::<u8>(), 0..16),
                         msg in proptest::collection::vec(any::<u8>(), 0..64),
                         k in 2u32..32) {
        prop_assert_ne!(iterated_hash(&salt, &msg, 1), iterated_hash(&salt, &msg, k));
    }
}
