//! Centered Discretization (§3 of the paper).
//!
//! The 1-D construction: pick a tolerance `r`, partition the line into
//! segments of length `2r`, and shift the partition by an offset `d` chosen
//! per original point `x` so that `x` sits exactly in the middle of its
//! segment:
//!
//! ```text
//! i = ⌊(x − r) / 2r⌋          (segment index, hashed)
//! d = (x − r) mod 2r          (offset, stored in the clear)
//! ```
//!
//! At login, the candidate `x′` is mapped to `i′ = ⌊(x′ − d) / 2r⌋` using the
//! stored offset; `i′ = i` exactly when `x′` falls in `[x − r, x + r)`, i.e.
//! within the centered tolerance.  The 2-D scheme applies the construction
//! independently per axis.
//!
//! For pixel images, the paper adds `0.5` to the desired whole-pixel
//! tolerance so the grid square has odd width `2t + 1` with the original
//! pixel at its center; [`CenteredDiscretization::from_pixel_tolerance`]
//! encodes that convention.

use crate::error::DiscretizationError;
use crate::scheme::{DiscretizationScheme, DiscretizedClick, GridId};
use gp_geometry::{GridCell, Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// One-dimensional Centered Discretization with tolerance `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Centered1D {
    r: f64,
}

impl Centered1D {
    /// Create a 1-D discretizer with tolerance `r > 0`.
    pub fn new(r: f64) -> Result<Self, DiscretizationError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(DiscretizationError::InvalidTolerance { r });
        }
        Ok(Self { r })
    }

    /// The tolerance `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Segment length `2r`.
    pub fn segment_length(&self) -> f64 {
        2.0 * self.r
    }

    /// Discretize an original coordinate: returns `(i, d)` with
    /// `i = ⌊(x − r)/2r⌋` and `d = (x − r) mod 2r ∈ [0, 2r)`.
    pub fn discretize(&self, x: f64) -> (i64, f64) {
        let len = self.segment_length();
        let shifted = x - self.r;
        let i = (shifted / len).floor() as i64;
        let d = shifted.rem_euclid(len);
        (i, d)
    }

    /// Map a login coordinate to a segment index using a stored offset:
    /// `i′ = ⌊(x′ − d)/2r⌋`.
    pub fn locate(&self, d: f64, x_login: f64) -> i64 {
        ((x_login - d) / self.segment_length()).floor() as i64
    }

    /// The segment `[d + 2r·i, d + 2r·(i+1))` identified by `(i, d)`.
    ///
    /// For the `(i, d)` pair produced by [`discretize`](Self::discretize) on
    /// `x`, this is exactly `[x − r, x + r)`.
    pub fn segment(&self, i: i64, d: f64) -> Segment {
        let len = self.segment_length();
        let start = d + i as f64 * len;
        Segment::new(start, start + len)
    }

    /// Whether a login coordinate is accepted for an original coordinate
    /// (same segment under the original's offset).
    pub fn accepts(&self, x_original: f64, x_login: f64) -> bool {
        let (i, d) = self.discretize(x_original);
        self.locate(d, x_login) == i
    }

    /// Validate an offset loaded from a password file.
    pub fn validate_offset(&self, d: f64) -> Result<(), DiscretizationError> {
        if d.is_finite() && (0.0..self.segment_length()).contains(&d) {
            Ok(())
        } else {
            Err(DiscretizationError::CorruptGridId {
                reason: format!("offset {d} outside [0, {})", self.segment_length()),
            })
        }
    }
}

/// Two-dimensional Centered Discretization: the paper's scheme for
/// click-based graphical passwords, applying [`Centered1D`] independently to
/// the x and y axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CenteredDiscretization {
    axis: Centered1D,
}

impl CenteredDiscretization {
    /// Create a scheme with real-valued tolerance `r > 0`.
    pub fn new(r: f64) -> Result<Self, DiscretizationError> {
        Ok(Self {
            axis: Centered1D::new(r)?,
        })
    }

    /// Create a scheme guaranteeing a whole-pixel tolerance of `t` pixels.
    ///
    /// Following the paper's footnote, `r = t + 0.5` so that the grid square
    /// is `2t + 1` pixels wide with the original pixel at its exact center.
    pub fn from_pixel_tolerance(t: u32) -> Self {
        Self::new(t as f64 + 0.5).expect("t + 0.5 is always positive")
    }

    /// Create a scheme whose grid squares have the given side length
    /// (`r = size / 2`).  Used when comparing against Robust Discretization
    /// at equal grid-square size (Table 1 / Figure 7).
    pub fn from_grid_square_size(size: f64) -> Result<Self, DiscretizationError> {
        Self::new(size / 2.0)
    }

    /// The tolerance `r`.
    pub fn r(&self) -> f64 {
        self.axis.r()
    }

    /// The per-axis discretizer.
    pub fn axis(&self) -> &Centered1D {
        &self.axis
    }

    /// The acceptance region around an original click-point: exactly the
    /// centered-tolerance square `[x−r, x+r) × [y−r, y+r)`.
    pub fn acceptance_region(&self, original: &Point) -> Rect {
        let (ix, dx) = self.axis.discretize(original.x);
        let (iy, dy) = self.axis.discretize(original.y);
        Rect::from_segments(self.axis.segment(ix, dx), self.axis.segment(iy, dy))
    }
}

impl DiscretizationScheme for CenteredDiscretization {
    fn name(&self) -> &'static str {
        "centered"
    }

    fn guaranteed_tolerance(&self) -> f64 {
        self.r()
    }

    fn maximum_accepted_distance(&self) -> f64 {
        // The acceptance region is the centered square itself.
        self.r()
    }

    fn grid_square_size(&self) -> f64 {
        2.0 * self.r()
    }

    fn num_grid_identifiers(&self) -> u64 {
        // (2r)² possible (dx, dy) offsets at whole-pixel granularity; the
        // paper's example: r = 9.5 ⇒ 19² = 361 grids.
        let side = self.grid_square_size().round().max(1.0) as u64;
        side * side
    }

    fn enroll(&self, original: &Point) -> DiscretizedClick {
        assert!(original.is_finite(), "click-point must be finite");
        let (ix, dx) = self.axis.discretize(original.x);
        let (iy, dy) = self.axis.discretize(original.y);
        DiscretizedClick {
            grid_id: GridId::Centered { dx, dy },
            cell: GridCell::new(ix, iy),
        }
    }

    fn try_locate(&self, grid_id: &GridId, login: &Point) -> Result<GridCell, DiscretizationError> {
        if !login.is_finite() {
            return Err(DiscretizationError::NonFinitePoint);
        }
        match grid_id {
            GridId::Centered { dx, dy } => {
                self.axis.validate_offset(*dx)?;
                self.axis.validate_offset(*dy)?;
                Ok(GridCell::new(
                    self.axis.locate(*dx, login.x),
                    self.axis.locate(*dy, login.y),
                ))
            }
            other => Err(DiscretizationError::MismatchedGridId {
                scheme: self.name(),
                got: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §3.1: x = 13, r = 5.5 ⇒ i = 0, d = 7.5; login x' = 10 ⇒ i' = 0.
        let c = Centered1D::new(5.5).unwrap();
        let (i, d) = c.discretize(13.0);
        assert_eq!(i, 0);
        assert!((d - 7.5).abs() < 1e-12);
        assert_eq!(c.locate(d, 10.0), 0);
        assert!(c.accepts(13.0, 10.0));
    }

    #[test]
    fn original_point_is_centered_in_its_segment() {
        let c = Centered1D::new(4.5).unwrap();
        for &x in &[0.0, 1.0, 4.4, 9.0, 13.7, 100.0, 12345.6] {
            let (i, d) = c.discretize(x);
            let seg = c.segment(i, d);
            assert!((seg.center() - x).abs() < 1e-9, "x = {x}, segment {seg}");
            assert!((seg.length() - 9.0).abs() < 1e-9);
        }
    }

    #[test]
    fn acceptance_interval_is_exactly_x_minus_r_to_x_plus_r() {
        let c = Centered1D::new(6.5).unwrap();
        let x = 200.0;
        assert!(c.accepts(x, x - 6.5)); // closed at the lower end
        assert!(c.accepts(x, x + 6.4999));
        assert!(!c.accepts(x, x + 6.5)); // half-open at the upper end
        assert!(!c.accepts(x, x - 6.5001));
    }

    #[test]
    fn pixel_tolerance_is_symmetric_on_integer_clicks() {
        // With r = t + 0.5, integer logins up to t pixels away on either
        // side are accepted and t+1 is rejected — no boundary asymmetry.
        let scheme = CenteredDiscretization::from_pixel_tolerance(9);
        let original = Point::new(100.0, 80.0);
        for dx in -9i32..=9 {
            for dy in [-9i32, 0, 9] {
                let login = Point::new(100.0 + dx as f64, 80.0 + dy as f64);
                assert!(scheme.accepts(&original, &login), "offset ({dx},{dy})");
            }
        }
        assert!(!scheme.accepts(&original, &Point::new(110.0, 80.0)));
        assert!(!scheme.accepts(&original, &Point::new(90.0 - 0.5, 80.0)));
        assert!(!scheme.accepts(&original, &Point::new(100.0, 90.0)));
    }

    #[test]
    fn offset_is_always_in_range() {
        let c = Centered1D::new(9.5).unwrap();
        for &x in &[0.0, 0.1, 5.0, 9.5, 18.9, 19.0, 450.0, 0.0001] {
            let (_, d) = c.discretize(x);
            assert!((0.0..19.0).contains(&d), "x = {x}, d = {d}");
        }
    }

    #[test]
    fn points_near_origin_may_use_segment_minus_one() {
        // The paper: i = -1 occurs when x is within r of the origin.
        let c = Centered1D::new(5.5).unwrap();
        let (i, d) = c.discretize(2.0);
        assert_eq!(i, -1);
        assert!((0.0..11.0).contains(&d));
        // And the acceptance interval still behaves correctly.
        assert!(c.accepts(2.0, 0.0));
        assert!(c.accepts(2.0, 7.4));
        assert!(!c.accepts(2.0, 7.5));
    }

    #[test]
    fn enroll_and_locate_are_consistent() {
        let scheme = CenteredDiscretization::from_pixel_tolerance(6);
        let original = Point::new(241.0, 97.0);
        let enrolled = scheme.enroll(&original);
        // The original itself always maps back to its own cell.
        assert_eq!(scheme.locate(&enrolled.grid_id, &original), enrolled.cell);
        // A point within tolerance maps to the same cell.
        assert_eq!(
            scheme.locate(&enrolled.grid_id, &Point::new(247.0, 91.0)),
            enrolled.cell
        );
        // A point outside does not.
        assert_ne!(
            scheme.locate(&enrolled.grid_id, &Point::new(248.0, 97.0)),
            enrolled.cell
        );
    }

    #[test]
    fn acceptance_region_is_centered_square() {
        let scheme = CenteredDiscretization::new(9.5).unwrap();
        let p = Point::new(123.0, 45.0);
        let region = scheme.acceptance_region(&p);
        assert_eq!(region.center(), p);
        assert!((region.width() - 19.0).abs() < 1e-9);
        assert!((region.height() - 19.0).abs() < 1e-9);
    }

    #[test]
    fn scheme_metadata() {
        let scheme = CenteredDiscretization::from_pixel_tolerance(9);
        assert_eq!(scheme.name(), "centered");
        assert_eq!(scheme.guaranteed_tolerance(), 9.5);
        assert_eq!(scheme.maximum_accepted_distance(), 9.5);
        assert_eq!(scheme.grid_square_size(), 19.0);
        assert_eq!(scheme.num_grid_identifiers(), 361); // paper: 19² = 361
        assert!((scheme.identifier_bits() - 361f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn from_grid_square_size_matches_table_pairs() {
        // Table 1/3 pairings: a 13×13 square corresponds to centered r = 6
        // whole pixels (real-valued r = 6.5).
        let scheme = CenteredDiscretization::from_grid_square_size(13.0).unwrap();
        assert_eq!(scheme.r(), 6.5);
        assert_eq!(scheme.grid_square_size(), 13.0);
    }

    #[test]
    fn locate_rejects_foreign_and_corrupt_grid_ids() {
        let scheme = CenteredDiscretization::from_pixel_tolerance(6);
        let p = Point::new(10.0, 10.0);
        assert!(matches!(
            scheme.try_locate(&GridId::Robust { grid_index: 1 }, &p),
            Err(DiscretizationError::MismatchedGridId { .. })
        ));
        assert!(matches!(
            scheme.try_locate(&GridId::Centered { dx: 99.0, dy: 1.0 }, &p),
            Err(DiscretizationError::CorruptGridId { .. })
        ));
        assert!(matches!(
            scheme.try_locate(
                &GridId::Centered { dx: 1.0, dy: 1.0 },
                &Point::new(f64::NAN, 1.0)
            ),
            Err(DiscretizationError::NonFinitePoint)
        ));
    }

    #[test]
    fn invalid_tolerance_rejected() {
        assert!(CenteredDiscretization::new(0.0).is_err());
        assert!(CenteredDiscretization::new(-3.0).is_err());
        assert!(CenteredDiscretization::new(f64::NAN).is_err());
        assert!(CenteredDiscretization::new(f64::INFINITY).is_err());
    }
}
