//! Centered Discretization in arbitrary dimension.
//!
//! Section 3.2 of the paper notes that the construction extends beyond 2-D:
//! "Centered Discretization may be expanded to n-dimensional objects for
//! n ≥ 3 by computing results for each dimension separately and then
//! combining them to form an n-dimensional grid", enabling 3-D graphical
//! password schemes to discretize an entire volume instead of a fixed set of
//! clickable objects.  [`CenteredNd`] implements exactly that: the 1-D
//! scheme applied independently per coordinate.

use crate::centered::Centered1D;
use crate::error::DiscretizationError;
use serde::{Deserialize, Serialize};

/// The result of discretizing an n-dimensional point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdDiscretizedPoint {
    /// Per-axis segment indices (the hashed part).
    pub indices: Vec<i64>,
    /// Per-axis offsets (stored in the clear).
    pub offsets: Vec<f64>,
}

/// Centered Discretization over `n` axes, all sharing the same tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CenteredNd {
    axis: Centered1D,
    dimension: usize,
}

impl CenteredNd {
    /// Create an n-dimensional scheme with tolerance `r > 0`.
    pub fn new(dimension: usize, r: f64) -> Result<Self, DiscretizationError> {
        if dimension == 0 {
            return Err(DiscretizationError::CorruptGridId {
                reason: "dimension must be at least 1".into(),
            });
        }
        Ok(Self {
            axis: Centered1D::new(r)?,
            dimension,
        })
    }

    /// Number of axes.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The tolerance `r`.
    pub fn r(&self) -> f64 {
        self.axis.r()
    }

    /// Discretize an original point.
    ///
    /// # Panics
    /// Panics if the coordinate count does not match the configured
    /// dimension.
    pub fn enroll(&self, coords: &[f64]) -> NdDiscretizedPoint {
        assert_eq!(
            coords.len(),
            self.dimension,
            "expected {} coordinates, got {}",
            self.dimension,
            coords.len()
        );
        let mut indices = Vec::with_capacity(self.dimension);
        let mut offsets = Vec::with_capacity(self.dimension);
        for &x in coords {
            let (i, d) = self.axis.discretize(x);
            indices.push(i);
            offsets.push(d);
        }
        NdDiscretizedPoint { indices, offsets }
    }

    /// Map a login point to per-axis segment indices using stored offsets.
    pub fn locate(&self, offsets: &[f64], coords: &[f64]) -> Result<Vec<i64>, DiscretizationError> {
        if offsets.len() != self.dimension || coords.len() != self.dimension {
            return Err(DiscretizationError::CorruptGridId {
                reason: format!(
                    "expected {} offsets/coordinates, got {}/{}",
                    self.dimension,
                    offsets.len(),
                    coords.len()
                ),
            });
        }
        for &d in offsets {
            self.axis.validate_offset(d)?;
        }
        Ok(offsets
            .iter()
            .zip(coords.iter())
            .map(|(&d, &x)| self.axis.locate(d, x))
            .collect())
    }

    /// Whether a login point is accepted for an original point: every axis
    /// must fall within the centered tolerance.
    pub fn accepts(&self, original: &[f64], login: &[f64]) -> bool {
        let enrolled = self.enroll(original);
        match self.locate(&enrolled.offsets, login) {
            Ok(indices) => indices == enrolled.indices,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_d_acceptance_matches_per_axis_tolerance() {
        let scheme = CenteredNd::new(3, 4.5).unwrap();
        let original = [100.0, 50.0, 200.0];
        assert!(scheme.accepts(&original, &[104.0, 46.0, 204.0]));
        assert!(scheme.accepts(&original, &[95.5, 54.4, 200.0]));
        assert!(!scheme.accepts(&original, &[105.0, 50.0, 200.0]));
        assert!(!scheme.accepts(&original, &[100.0, 50.0, 194.0]));
    }

    #[test]
    fn one_dimensional_case_matches_centered_1d() {
        let nd = CenteredNd::new(1, 5.5).unwrap();
        let c1 = Centered1D::new(5.5).unwrap();
        for &x in &[0.0, 2.0, 13.0, 99.9] {
            let e = nd.enroll(&[x]);
            let (i, d) = c1.discretize(x);
            assert_eq!(e.indices, vec![i]);
            assert_eq!(e.offsets, vec![d]);
        }
    }

    #[test]
    fn enrolled_point_is_always_accepted() {
        let scheme = CenteredNd::new(5, 2.5).unwrap();
        let original = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(scheme.accepts(&original, &original));
    }

    #[test]
    fn locate_validates_offsets_and_lengths() {
        let scheme = CenteredNd::new(2, 4.5).unwrap();
        assert!(scheme.locate(&[0.0], &[1.0, 2.0]).is_err());
        assert!(scheme.locate(&[0.0, 100.0], &[1.0, 2.0]).is_err()); // offset ≥ 2r
        assert!(scheme.locate(&[0.0, 3.0], &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(CenteredNd::new(0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "expected 3 coordinates")]
    fn enroll_panics_on_wrong_arity() {
        CenteredNd::new(3, 1.0).unwrap().enroll(&[1.0, 2.0]);
    }
}
