//! Error types for discretization operations.

use crate::scheme::GridId;

/// Errors produced by discretization schemes.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscretizationError {
    /// The tolerance parameter `r` must be strictly positive and finite.
    InvalidTolerance {
        /// The offending value.
        r: f64,
    },
    /// A click-point coordinate was NaN or infinite.
    NonFinitePoint,
    /// A clear grid identifier produced by one scheme was passed to another
    /// scheme's `locate` (e.g. a Robust grid index handed to Centered
    /// Discretization).
    MismatchedGridId {
        /// Name of the scheme that received the identifier.
        scheme: &'static str,
        /// The identifier that was rejected.
        got: GridId,
    },
    /// A stored grid identifier is internally inconsistent (e.g. a Centered
    /// offset outside `[0, 2r)`, or a Robust grid index ≥ 3).
    CorruptGridId {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl core::fmt::Display for DiscretizationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiscretizationError::InvalidTolerance { r } => {
                write!(f, "tolerance r must be positive and finite, got {r}")
            }
            DiscretizationError::NonFinitePoint => {
                write!(f, "click-point coordinates must be finite")
            }
            DiscretizationError::MismatchedGridId { scheme, got } => {
                write!(
                    f,
                    "{scheme} received a grid identifier of the wrong kind: {got:?}"
                )
            }
            DiscretizationError::CorruptGridId { reason } => {
                write!(f, "corrupt grid identifier: {reason}")
            }
        }
    }
}

impl std::error::Error for DiscretizationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DiscretizationError::InvalidTolerance { r: -1.0 };
        assert!(e.to_string().contains("positive"));
        let e = DiscretizationError::NonFinitePoint;
        assert!(e.to_string().contains("finite"));
        let e = DiscretizationError::CorruptGridId {
            reason: "offset 12 not below 2r=10".into(),
        };
        assert!(e.to_string().contains("offset 12"));
    }
}
