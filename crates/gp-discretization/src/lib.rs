//! Discretization schemes for click-based graphical passwords.
//!
//! This crate is the core of the reproduction of *Centered Discretization
//! with Application to Graphical Passwords* (Chiasson, Srinivasan, Biddle,
//! van Oorschot — USENIX UPSEC 2008).  A click-based graphical password
//! system must hash the user's click-points, yet accept approximately
//! correct re-entries; a *discretization scheme* maps a click-point to a
//! grid-square identifier so that nearby clicks map to the same (hashable)
//! identifier.
//!
//! Three schemes are implemented behind the common
//! [`DiscretizationScheme`] trait:
//!
//! * [`CenteredDiscretization`] — the
//!   paper's contribution.  Each coordinate is discretized into segments of
//!   length `2r` with a per-click offset `d = (x − r) mod 2r` chosen so the
//!   original click is exactly centered in its segment.  Acceptance region =
//!   the centered-tolerance square; false accepts and false rejects are zero
//!   by construction, and grid squares are only `2r` wide.
//!
//! * [`RobustDiscretization`] — the prior
//!   scheme of Birget, Hong and Memon (2006), reproduced as the baseline.
//!   Three diagonally offset grids of square size `6r` guarantee that every
//!   point is *r-safe* in at least one grid, but the tolerance region is not
//!   centered on the click-point, producing false accepts (up to `5r`) and
//!   false rejects (from `r` upward).
//!
//! * [`StaticGridDiscretization`] —
//!   the naive single fixed grid, exhibiting the "edge problem" that
//!   motivated Robust Discretization in the first place.
//!
//! [`password_space`] reproduces the theoretical password-space analysis of
//! the paper's Table 3, and [`centered_nd`] generalizes Centered
//! Discretization to arbitrary dimension as sketched in §3.2 for 3-D
//! graphical password schemes.
//!
//! # Quick example
//!
//! ```
//! use gp_discretization::prelude::*;
//! use gp_geometry::Point;
//!
//! // Guarantee a 9-pixel tolerance around each click-point.
//! let centered = CenteredDiscretization::from_pixel_tolerance(9);
//! let original = Point::new(123.0, 210.0);
//! let enrolled = centered.enroll(&original);
//!
//! // A click 9 pixels away is accepted …
//! assert!(centered.accepts(&original, &Point::new(132.0, 210.0)));
//! // … a click 10 pixels away is not.
//! assert!(!centered.accepts(&original, &Point::new(133.0, 210.0)));
//!
//! // The same decision can be made from the stored clear data alone,
//! // exactly as a server holding only {grid id, hash} would:
//! let login_cell = centered.locate(&enrolled.grid_id, &Point::new(132.0, 210.0));
//! assert_eq!(login_cell, enrolled.cell);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centered;
pub mod centered_nd;
pub mod error;
pub mod password_space;
pub mod robust;
pub mod scheme;
pub mod static_grid;

pub use centered::{Centered1D, CenteredDiscretization};
pub use centered_nd::CenteredNd;
pub use error::DiscretizationError;
pub use password_space::{
    identifier_bits, squares_per_grid, text_password_bits, PasswordSpace, SchemeKind,
};
pub use robust::{GridSelectionPolicy, RobustDiscretization, ROBUST_GRID_COUNT};
pub use scheme::{DiscretizationScheme, DiscretizedClick, GridId};
pub use static_grid::StaticGridDiscretization;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::centered::CenteredDiscretization;
    pub use crate::password_space::{PasswordSpace, SchemeKind};
    pub use crate::robust::{GridSelectionPolicy, RobustDiscretization};
    pub use crate::scheme::{DiscretizationScheme, DiscretizedClick, GridId};
    pub use crate::static_grid::StaticGridDiscretization;
}
