//! Theoretical full password-space analysis (Table 3 of the paper).
//!
//! The size of the theoretical password space of a click-based graphical
//! password depends on the image size, the grid-square size and the number
//! of click-points: with `N` distinguishable squares per grid and `c`
//! clicks, the space is `N^c`, i.e. `c · log2(N)` bits.  Because Robust
//! Discretization needs `6r × 6r` squares to guarantee a tolerance of `r`
//! while Centered Discretization needs only `(2r+1) × (2r+1)`, Centered
//! yields a much larger space at equal usability (equal `r`).

use crate::centered::CenteredDiscretization;
use crate::robust::RobustDiscretization;
use gp_geometry::ImageDims;
use serde::{Deserialize, Serialize};

/// Which discretization scheme a password-space figure refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Centered Discretization (grid square `2r`).
    Centered,
    /// Robust Discretization (grid square `6r`).
    Robust,
}

impl SchemeKind {
    /// The guaranteed whole-pixel tolerance `r` offered by a scheme whose
    /// grid squares have side `grid_size` pixels, as reported in the paper's
    /// tables (e.g. a 9×9 square gives Centered `r = 4` but Robust
    /// `r = 1.50`).
    pub fn r_for_grid_size(&self, grid_size: f64) -> f64 {
        match self {
            SchemeKind::Centered => (grid_size - 1.0) / 2.0,
            SchemeKind::Robust => grid_size / 6.0,
        }
    }

    /// The grid-square side needed to guarantee tolerance `r`
    /// (`2r + 1` for Centered, `6r` for Robust).
    pub fn grid_size_for_r(&self, r: f64) -> f64 {
        match self {
            SchemeKind::Centered => 2.0 * r + 1.0,
            SchemeKind::Robust => 6.0 * r,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Centered => "Centered Discretization",
            SchemeKind::Robust => "Robust Discretization",
        }
    }

    /// Construct the corresponding scheme object for a given guaranteed
    /// tolerance `r` (whole pixels).
    pub fn scheme_for_r(&self, r: u32) -> Box<dyn crate::scheme::DiscretizationScheme> {
        match self {
            SchemeKind::Centered => Box::new(CenteredDiscretization::from_pixel_tolerance(r)),
            SchemeKind::Robust => {
                Box::new(RobustDiscretization::new(r as f64).expect("positive tolerance"))
            }
        }
    }

    /// Construct the corresponding scheme object for a given grid-square
    /// size in pixels.
    pub fn scheme_for_grid_size(
        &self,
        grid_size: f64,
    ) -> Box<dyn crate::scheme::DiscretizationScheme> {
        match self {
            SchemeKind::Centered => Box::new(
                CenteredDiscretization::from_grid_square_size(grid_size)
                    .expect("positive grid size"),
            ),
            SchemeKind::Robust => Box::new(
                RobustDiscretization::from_grid_square_size(grid_size).expect("positive grid size"),
            ),
        }
    }
}

/// Number of distinguishable grid squares covering an image, counting
/// partial squares at the right/bottom edges (they are distinct identifiers
/// even when clipped), which is the convention the paper's Table 3 follows.
pub fn squares_per_grid(image: ImageDims, grid_size: f64) -> u64 {
    assert!(grid_size > 0.0, "grid size must be positive");
    let nx = (image.width as f64 / grid_size).ceil() as u64;
    let ny = (image.height as f64 / grid_size).ceil() as u64;
    nx.max(1) * ny.max(1)
}

/// Theoretical full password space for a click-based graphical password.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PasswordSpace {
    /// Image dimensions.
    pub image: ImageDims,
    /// Grid-square side length in pixels.
    pub grid_size: f64,
    /// Number of click-points per password (the paper uses 5).
    pub clicks: u32,
}

impl PasswordSpace {
    /// Construct a password-space descriptor.
    pub fn new(image: ImageDims, grid_size: f64, clicks: u32) -> Self {
        assert!(clicks > 0, "a password needs at least one click");
        assert!(grid_size > 0.0, "grid size must be positive");
        Self {
            image,
            grid_size,
            clicks,
        }
    }

    /// Number of squares per grid on this image.
    pub fn squares_per_grid(&self) -> u64 {
        squares_per_grid(self.image, self.grid_size)
    }

    /// Size of the theoretical full password space in bits:
    /// `clicks · log2(squares)`.
    pub fn bits(&self) -> f64 {
        self.clicks as f64 * (self.squares_per_grid() as f64).log2()
    }

    /// Total number of passwords (`squares^clicks`) as a floating-point
    /// value (it overflows u64 for realistic parameters).
    pub fn total_passwords(&self) -> f64 {
        (self.squares_per_grid() as f64).powi(self.clicks as i32)
    }
}

/// Theoretical password space of a uniformly random text password over an
/// alphabet of the given size — the paper's comparison point ("52.5 bits for
/// a standard 95-letter alphabet" at 8 characters).
pub fn text_password_bits(alphabet_size: u32, length: u32) -> f64 {
    length as f64 * (alphabet_size as f64).log2()
}

/// Bits of clear-text information revealed by the stored grid identifier
/// (§5.2): `log2(3)` (stored as 2 bits) for Robust, `log2((2r)²)` for
/// Centered with real-valued tolerance `r`.
pub fn identifier_bits(kind: SchemeKind, r: f64) -> f64 {
    match kind {
        SchemeKind::Robust => (3f64).log2(),
        SchemeKind::Centered => (2.0 * r).powi(2).log2(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper asserting a value rounds to the paper's reported one decimal.
    fn assert_rounds_to(value: f64, expected: f64) {
        assert!(
            ((value * 10.0).round() / 10.0 - expected).abs() < 1e-9,
            "value {value:.3} does not round to {expected}"
        );
    }

    #[test]
    fn table3_squares_per_grid_451x331() {
        let img = ImageDims::STUDY;
        assert_eq!(squares_per_grid(img, 9.0), 1887);
        assert_eq!(squares_per_grid(img, 13.0), 910);
        assert_eq!(squares_per_grid(img, 19.0), 432);
        assert_eq!(squares_per_grid(img, 24.0), 266);
        assert_eq!(squares_per_grid(img, 36.0), 130);
        assert_eq!(squares_per_grid(img, 54.0), 63);
    }

    #[test]
    fn table3_squares_per_grid_640x480() {
        let img = ImageDims::VGA;
        assert_eq!(squares_per_grid(img, 9.0), 3888);
        assert_eq!(squares_per_grid(img, 13.0), 1850);
        assert_eq!(squares_per_grid(img, 19.0), 884);
        assert_eq!(squares_per_grid(img, 24.0), 540);
        assert_eq!(squares_per_grid(img, 36.0), 252);
        assert_eq!(squares_per_grid(img, 54.0), 108);
    }

    #[test]
    fn table3_bits_451x331() {
        let img = ImageDims::STUDY;
        assert_rounds_to(PasswordSpace::new(img, 9.0, 5).bits(), 54.4);
        assert_rounds_to(PasswordSpace::new(img, 13.0, 5).bits(), 49.1);
        assert_rounds_to(PasswordSpace::new(img, 19.0, 5).bits(), 43.8);
        assert_rounds_to(PasswordSpace::new(img, 24.0, 5).bits(), 40.3);
        assert_rounds_to(PasswordSpace::new(img, 36.0, 5).bits(), 35.1);
        assert_rounds_to(PasswordSpace::new(img, 54.0, 5).bits(), 29.9);
    }

    #[test]
    fn table3_bits_640x480() {
        let img = ImageDims::VGA;
        assert_rounds_to(PasswordSpace::new(img, 9.0, 5).bits(), 59.6);
        assert_rounds_to(PasswordSpace::new(img, 13.0, 5).bits(), 54.3);
        assert_rounds_to(PasswordSpace::new(img, 19.0, 5).bits(), 48.9);
        assert_rounds_to(PasswordSpace::new(img, 24.0, 5).bits(), 45.4);
        assert_rounds_to(PasswordSpace::new(img, 36.0, 5).bits(), 39.9);
        assert_rounds_to(PasswordSpace::new(img, 54.0, 5).bits(), 33.8);
    }

    #[test]
    fn section_2_2_2_example_gap() {
        // §2.2.2: on 640×480, Robust with r = 6 (36×36 squares) gives 39.9
        // bits versus 54.3 bits for centered-tolerance 13×13 squares.
        let robust = PasswordSpace::new(ImageDims::VGA, 36.0, 5);
        let centered = PasswordSpace::new(ImageDims::VGA, 13.0, 5);
        assert_rounds_to(robust.bits(), 39.9);
        assert_rounds_to(centered.bits(), 54.3);
    }

    #[test]
    fn section_5_example_r4_gap() {
        // §5: "on a 640x480 image the full theoretical password space is
        // 59.6 bits for r = 4 using Centered Discretization but only 45.4
        // bits for Robust Discretization".
        let centered_grid = SchemeKind::Centered.grid_size_for_r(4.0);
        let robust_grid = SchemeKind::Robust.grid_size_for_r(4.0);
        assert_eq!(centered_grid, 9.0);
        assert_eq!(robust_grid, 24.0);
        assert_rounds_to(
            PasswordSpace::new(ImageDims::VGA, centered_grid, 5).bits(),
            59.6,
        );
        assert_rounds_to(
            PasswordSpace::new(ImageDims::VGA, robust_grid, 5).bits(),
            45.4,
        );
    }

    #[test]
    fn r_for_grid_size_matches_table_columns() {
        assert_eq!(SchemeKind::Centered.r_for_grid_size(9.0), 4.0);
        assert_eq!(SchemeKind::Centered.r_for_grid_size(13.0), 6.0);
        assert_eq!(SchemeKind::Centered.r_for_grid_size(19.0), 9.0);
        assert_eq!(SchemeKind::Centered.r_for_grid_size(24.0), 11.5);
        assert_eq!(SchemeKind::Centered.r_for_grid_size(36.0), 17.5);
        assert_eq!(SchemeKind::Centered.r_for_grid_size(54.0), 26.5);
        assert!((SchemeKind::Robust.r_for_grid_size(9.0) - 1.5).abs() < 1e-9);
        assert!((SchemeKind::Robust.r_for_grid_size(13.0) - 2.1666).abs() < 1e-3);
        assert!((SchemeKind::Robust.r_for_grid_size(19.0) - 3.1666).abs() < 1e-3);
        assert_eq!(SchemeKind::Robust.r_for_grid_size(24.0), 4.0);
        assert_eq!(SchemeKind::Robust.r_for_grid_size(36.0), 6.0);
        assert_eq!(SchemeKind::Robust.r_for_grid_size(54.0), 9.0);
    }

    #[test]
    fn text_password_comparison_point() {
        // 8-character password over 95 printable characters ≈ 52.5 bits.
        let bits = text_password_bits(95, 8);
        assert!((bits - 52.56).abs() < 0.1);
    }

    #[test]
    fn identifier_bits_section_5_2() {
        // Robust reveals ~2 bits; Centered with r = 8 reveals 8 bits.
        assert!((identifier_bits(SchemeKind::Robust, 8.0) - 1.585).abs() < 1e-3);
        assert_eq!(identifier_bits(SchemeKind::Centered, 8.0), 8.0);
    }

    #[test]
    fn scheme_factories_agree_with_kind() {
        let c = SchemeKind::Centered.scheme_for_r(9);
        assert_eq!(c.name(), "centered");
        assert_eq!(c.grid_square_size(), 19.0);
        let r = SchemeKind::Robust.scheme_for_r(9);
        assert_eq!(r.name(), "robust");
        assert_eq!(r.grid_square_size(), 54.0);
        let cg = SchemeKind::Centered.scheme_for_grid_size(13.0);
        assert_eq!(cg.grid_square_size(), 13.0);
        let rg = SchemeKind::Robust.scheme_for_grid_size(13.0);
        assert!((rg.guaranteed_tolerance() - 13.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one click")]
    fn zero_clicks_rejected() {
        PasswordSpace::new(ImageDims::VGA, 9.0, 0);
    }
}
