//! Robust Discretization (Birget, Hong, Memon 2006) — the baseline scheme
//! the paper analyzes and improves upon.
//!
//! Three grids of square size `6r`, diagonally offset from one another by
//! `2r`, guarantee that every point of the plane is *r-safe* (at Chebyshev
//! distance at least `r` from every edge of its square) in at least one
//! grid.  At enrollment the system picks such a grid, stores the grid index
//! in the clear (2 bits), and hashes the grid-square coordinates.  At login
//! the pre-selected grid is overlaid again and the candidate click-point is
//! accepted iff it falls in the same square.
//!
//! Because the original click-point is only guaranteed to be at least `r`
//! from the square's edges — not centered — a login may be rejected as
//! little as just over `r` away (a **false reject** relative to the user's
//! centered mental model) or accepted as far as `5r` away (a **false
//! accept**).  Section 4 of the paper implements an "optimal" variant that
//! selects, among the r-safe grids, the one whose square the point is most
//! centered in; [`GridSelectionPolicy::MostCentered`] reproduces that
//! choice and [`GridSelectionPolicy::FirstSafe`] the literal specification.

use crate::error::DiscretizationError;
use crate::scheme::{DiscretizationScheme, DiscretizedClick, GridId};
use gp_geometry::{GridCell, Point, Rect, UniformGrid};
use serde::{Deserialize, Serialize};

/// Number of offset grids used by Robust Discretization (shown by Birget et
/// al. to be both necessary and sufficient in 2-D).
pub const ROBUST_GRID_COUNT: u8 = 3;

/// How the enrolling system chooses among the grids in which the original
/// click-point is r-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GridSelectionPolicy {
    /// Select the lowest-indexed grid in which the point is r-safe — the
    /// literal reading of the original specification.
    FirstSafe,
    /// Select the grid in which the point is closest to the center of its
    /// square (maximum distance to the nearest edge), breaking ties by the
    /// lower index.  This is the implementation choice the paper made to
    /// minimize false accepts and rejects ("we calculated the distance from
    /// the click-point to the grid edges and selected the grid where the
    /// point was closest to the center", §4) and is the default.
    #[default]
    MostCentered,
}

/// Robust Discretization with minimum guaranteed tolerance `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustDiscretization {
    r: f64,
    policy: GridSelectionPolicy,
}

impl RobustDiscretization {
    /// Create a scheme with minimum tolerance `r > 0` and the default
    /// ([`GridSelectionPolicy::MostCentered`]) grid-selection policy.
    pub fn new(r: f64) -> Result<Self, DiscretizationError> {
        Self::with_policy(r, GridSelectionPolicy::default())
    }

    /// Create a scheme with an explicit grid-selection policy.
    pub fn with_policy(r: f64, policy: GridSelectionPolicy) -> Result<Self, DiscretizationError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(DiscretizationError::InvalidTolerance { r });
        }
        Ok(Self { r, policy })
    }

    /// Create a scheme whose grid squares have the given side length
    /// (`r = size / 6`), as used when comparing against Centered
    /// Discretization at equal grid-square size (Table 1 / Figure 7).
    pub fn from_grid_square_size(size: f64) -> Result<Self, DiscretizationError> {
        Self::new(size / 6.0)
    }

    /// The minimum guaranteed tolerance `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The grid-selection policy in use.
    pub fn policy(&self) -> GridSelectionPolicy {
        self.policy
    }

    /// The three candidate grids: square size `6r`, grid `k` offset
    /// diagonally by `k·2r`.
    pub fn grids(&self) -> [UniformGrid; ROBUST_GRID_COUNT as usize] {
        let cell = 6.0 * self.r;
        let step = 2.0 * self.r;
        [
            UniformGrid::new(cell, 0.0, 0.0),
            UniformGrid::new(cell, step, step),
            UniformGrid::new(cell, 2.0 * step, 2.0 * step),
        ]
    }

    /// The grid with a given index.
    ///
    /// Returns an error for indices ≥ [`ROBUST_GRID_COUNT`], which can only
    /// arise from a corrupt password file.
    pub fn grid(&self, index: u8) -> Result<UniformGrid, DiscretizationError> {
        if index >= ROBUST_GRID_COUNT {
            return Err(DiscretizationError::CorruptGridId {
                reason: format!("robust grid index {index} out of range"),
            });
        }
        Ok(self.grids()[index as usize])
    }

    /// Distance from `p` to the nearest edge of its square in each grid.
    pub fn safety_distances(&self, p: &Point) -> [f64; ROBUST_GRID_COUNT as usize] {
        let grids = self.grids();
        [
            grids[0].distance_to_cell_edge(p),
            grids[1].distance_to_cell_edge(p),
            grids[2].distance_to_cell_edge(p),
        ]
    }

    /// The grid index the enrolling system selects for `p`, together with
    /// the point's distance to the nearest edge in that grid.
    ///
    /// At least one grid is always r-safe (the central guarantee of Birget
    /// et al.); if floating-point boundary effects ever leave none strictly
    /// r-safe, the safest available grid is returned.
    pub fn select_grid(&self, p: &Point) -> (u8, f64) {
        let safety = self.safety_distances(p);
        match self.policy {
            GridSelectionPolicy::FirstSafe => {
                for (k, &s) in safety.iter().enumerate() {
                    if s >= self.r {
                        return (k as u8, s);
                    }
                }
            }
            GridSelectionPolicy::MostCentered => {
                let mut best = 0usize;
                for k in 1..safety.len() {
                    if safety[k] > safety[best] {
                        best = k;
                    }
                }
                if safety[best] >= self.r {
                    return (best as u8, safety[best]);
                }
            }
        }
        // Fallback: no strictly r-safe grid (possible only through rounding
        // at exact square boundaries) — take the safest one.
        let mut best = 0usize;
        for k in 1..safety.len() {
            if safety[k] > safety[best] {
                best = k;
            }
        }
        (best as u8, safety[best])
    }

    /// The acceptance region for an original click-point: the full grid
    /// square of the selected grid (side `6r`, generally *not* centered on
    /// the click-point).
    pub fn acceptance_region(&self, original: &Point) -> Rect {
        let (k, _) = self.select_grid(original);
        let grid = self.grids()[k as usize];
        grid.cell_rect(&grid.cell_of(original))
    }
}

impl DiscretizationScheme for RobustDiscretization {
    fn name(&self) -> &'static str {
        "robust"
    }

    fn guaranteed_tolerance(&self) -> f64 {
        self.r
    }

    fn maximum_accepted_distance(&self) -> f64 {
        // Worst case: the original point is exactly r from one edge, so a
        // login 5r away towards the opposite edge still shares the square.
        5.0 * self.r
    }

    fn grid_square_size(&self) -> f64 {
        6.0 * self.r
    }

    fn num_grid_identifiers(&self) -> u64 {
        ROBUST_GRID_COUNT as u64
    }

    fn enroll(&self, original: &Point) -> DiscretizedClick {
        assert!(original.is_finite(), "click-point must be finite");
        let (k, _) = self.select_grid(original);
        let grid = self.grids()[k as usize];
        DiscretizedClick {
            grid_id: GridId::Robust { grid_index: k },
            cell: grid.cell_of(original),
        }
    }

    fn try_locate(&self, grid_id: &GridId, login: &Point) -> Result<GridCell, DiscretizationError> {
        if !login.is_finite() {
            return Err(DiscretizationError::NonFinitePoint);
        }
        match grid_id {
            GridId::Robust { grid_index } => {
                let grid = self.grid(*grid_index)?;
                Ok(grid.cell_of(login))
            }
            other => Err(DiscretizationError::MismatchedGridId {
                scheme: self.name(),
                got: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn every_point_is_r_safe_in_at_least_one_grid() {
        // The theorem of Birget et al. that the whole construction rests on.
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let p = Point::new(rng.gen_range(0.0..640.0), rng.gen_range(0.0..480.0));
            let safety = scheme.safety_distances(&p);
            assert!(
                safety.iter().any(|&s| s >= 6.0 - 1e-9),
                "point {p} unsafe in all grids: {safety:?}"
            );
        }
    }

    #[test]
    fn grids_are_offset_diagonally_by_2r() {
        let scheme = RobustDiscretization::new(5.0).unwrap();
        let grids = scheme.grids();
        assert_eq!(grids[0].cell, 30.0);
        assert_eq!((grids[1].offset_x, grids[1].offset_y), (10.0, 10.0));
        assert_eq!((grids[2].offset_x, grids[2].offset_y), (20.0, 20.0));
    }

    #[test]
    fn guaranteed_tolerance_always_accepted() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let original = Point::new(rng.gen_range(0.0..451.0), rng.gen_range(0.0..331.0));
            let dx = rng.gen_range(-6.0..6.0);
            let dy = rng.gen_range(-6.0..6.0);
            let login = original.offset(dx, dy);
            assert!(
                scheme.accepts(&original, &login),
                "login at ({dx:.2},{dy:.2}) from {original} rejected"
            );
        }
    }

    #[test]
    fn false_accepts_exist_beyond_centered_tolerance() {
        // A point r-safe but near one edge of its square accepts logins far
        // beyond r in the opposite direction.
        let r = 6.0;
        let scheme = RobustDiscretization::with_policy(r, GridSelectionPolicy::FirstSafe).unwrap();
        // Click at exactly (r, r) inside grid 0's square [0,36)²: r-safe in
        // grid 0 under FirstSafe.
        let original = Point::new(r, r);
        let enrolled = scheme.enroll(&original);
        assert_eq!(enrolled.grid_id, GridId::Robust { grid_index: 0 });
        // A login 4.9r away (well outside centered tolerance) is accepted.
        let far_login = Point::new(r + 4.9 * r, r + 4.9 * r);
        assert!(scheme.accepts(&original, &far_login));
        assert!(original.chebyshev(&far_login) > r);
    }

    #[test]
    fn false_rejects_exist_within_3r_of_original() {
        // With 6r squares a user might expect a 3r buffer; Robust can reject
        // clicks just over r away.
        let r = 6.0;
        let scheme = RobustDiscretization::with_policy(r, GridSelectionPolicy::FirstSafe).unwrap();
        let original = Point::new(r, r); // r from the left edge of its square
        let login = Point::new(r - (r + 0.5), r); // r + 0.5 to the left
        assert!(original.chebyshev(&login) < 3.0 * r);
        assert!(!scheme.accepts(&original, &login));
    }

    #[test]
    fn most_centered_policy_maximizes_safety() {
        let scheme = RobustDiscretization::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2_000 {
            let p = Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
            let (k, safety) = scheme.select_grid(&p);
            let all = scheme.safety_distances(&p);
            let max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(safety, all[k as usize]);
            assert!(
                (safety - max).abs() < 1e-12,
                "policy picked grid {k} with safety {safety}, max is {max}"
            );
        }
    }

    #[test]
    fn first_safe_policy_picks_lowest_safe_index() {
        let scheme =
            RobustDiscretization::with_policy(5.0, GridSelectionPolicy::FirstSafe).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..2_000 {
            let p = Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
            let (k, _) = scheme.select_grid(&p);
            let all = scheme.safety_distances(&p);
            for earlier in 0..k {
                assert!(
                    all[earlier as usize] < 5.0,
                    "grid {earlier} was already safe for {p} but policy picked {k}"
                );
            }
            assert!(all[k as usize] >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn acceptance_region_is_a_6r_square_containing_the_point() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let p = Point::new(123.4, 210.7);
        let region = scheme.acceptance_region(&p);
        assert!((region.width() - 36.0).abs() < 1e-9);
        assert!(region.contains(&p));
        // The point is r-safe inside the region.
        assert!(region.distance_to_nearest_edge(&p) >= 6.0 - 1e-9);
    }

    #[test]
    fn locate_uses_the_stored_grid_only() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let original = Point::new(100.0, 100.0);
        let enrolled = scheme.enroll(&original);
        // Whatever grid was selected, locating the original again matches.
        assert_eq!(scheme.locate(&enrolled.grid_id, &original), enrolled.cell);
    }

    #[test]
    fn locate_rejects_bad_identifiers() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        let p = Point::new(1.0, 1.0);
        assert!(matches!(
            scheme.try_locate(&GridId::Robust { grid_index: 3 }, &p),
            Err(DiscretizationError::CorruptGridId { .. })
        ));
        assert!(matches!(
            scheme.try_locate(&GridId::Centered { dx: 0.0, dy: 0.0 }, &p),
            Err(DiscretizationError::MismatchedGridId { .. })
        ));
        assert!(matches!(
            scheme.try_locate(
                &GridId::Robust { grid_index: 0 },
                &Point::new(f64::NAN, 0.0)
            ),
            Err(DiscretizationError::NonFinitePoint)
        ));
    }

    #[test]
    fn scheme_metadata_matches_paper() {
        let scheme = RobustDiscretization::new(6.0).unwrap();
        assert_eq!(scheme.name(), "robust");
        assert_eq!(scheme.guaranteed_tolerance(), 6.0);
        assert_eq!(scheme.maximum_accepted_distance(), 30.0); // 5r
        assert_eq!(scheme.grid_square_size(), 36.0); // 6r
        assert_eq!(scheme.num_grid_identifiers(), 3);
        assert_eq!(scheme.identifier_bits(), 3f64.log2()); // ≈ 1.58, stored as 2 bits
    }

    #[test]
    fn from_grid_square_size_matches_table1_r_values() {
        // Table 1: 9×9 ⇒ r = 1.50, 13×13 ⇒ r ≈ 2.17, 19×19 ⇒ r ≈ 3.17.
        assert!(
            (RobustDiscretization::from_grid_square_size(9.0)
                .unwrap()
                .r()
                - 1.5)
                .abs()
                < 1e-9
        );
        assert!(
            (RobustDiscretization::from_grid_square_size(13.0)
                .unwrap()
                .r()
                - 13.0 / 6.0)
                .abs()
                < 1e-9
        );
        assert!(
            (RobustDiscretization::from_grid_square_size(19.0)
                .unwrap()
                .r()
                - 19.0 / 6.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn invalid_tolerance_rejected() {
        assert!(RobustDiscretization::new(0.0).is_err());
        assert!(RobustDiscretization::new(-2.0).is_err());
        assert!(RobustDiscretization::new(f64::NAN).is_err());
    }
}
