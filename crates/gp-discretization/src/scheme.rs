//! The common interface implemented by every discretization scheme.
//!
//! A scheme answers two questions:
//!
//! 1. **Enrollment** — given an original click-point, which grid square does
//!    it map to, and what *clear* grid identifier must be stored alongside
//!    the hash so that future logins can be discretized consistently?
//! 2. **Location** — given that clear identifier and a login click-point,
//!    which grid square does the login map to?  The login is accepted iff
//!    the hashed square identifiers match.
//!
//! Keeping the two halves separate mirrors the deployment model of the
//! paper: the server stores `(grid identifier, H(grid square ‖ …))` and
//! never the original coordinates.

use crate::error::DiscretizationError;
use gp_geometry::{GridCell, Point};
use serde::{Deserialize, Serialize};

/// The clear (unhashed) per-click data stored by a scheme.
///
/// * Centered Discretization stores the two segment offsets `(dx, dy)`,
///   each in `[0, 2r)` — `log2((2r)²)` bits of information (§5.2).
/// * Robust Discretization stores which of its three grids was selected —
///   2 bits of information.
/// * The static grid stores nothing (there is only one grid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GridId {
    /// Centered Discretization offsets for the x and y axes.
    Centered {
        /// Offset of the x-axis segmentation from the origin, `0 ≤ dx < 2r`.
        dx: f64,
        /// Offset of the y-axis segmentation from the origin, `0 ≤ dy < 2r`.
        dy: f64,
    },
    /// Robust Discretization grid index (0, 1 or 2).
    Robust {
        /// Index of the selected grid.
        grid_index: u8,
    },
    /// The static grid needs no per-click information.
    Static,
}

impl GridId {
    /// Canonical byte encoding of the identifier, used when it is mixed
    /// into the password hash (the paper hashes `h(dx, dy, ix, iy, …)`).
    ///
    /// Offsets are encoded as IEEE-754 bit patterns, which is deterministic
    /// because enrollment and every subsequent login recompute the same
    /// double-precision value from the stored identifier.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.write_into(&mut v);
        v
    }

    /// Exact length of the [`GridId::to_bytes`] encoding.
    pub fn encoded_len(&self) -> usize {
        match self {
            GridId::Centered { .. } => 17,
            GridId::Robust { .. } => 2,
            GridId::Static => 1,
        }
    }

    /// Append the canonical encoding to `out` without allocating — the
    /// building block of the zero-allocation verify/guess pipeline.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        match self {
            GridId::Centered { dx, dy } => {
                out.push(0x01);
                out.extend_from_slice(&dx.to_bits().to_be_bytes());
                out.extend_from_slice(&dy.to_bits().to_be_bytes());
            }
            GridId::Robust { grid_index } => out.extend_from_slice(&[0x02, *grid_index]),
            GridId::Static => out.push(0x03),
        }
    }

    /// Decode an identifier previously produced by [`GridId::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DiscretizationError> {
        match bytes.first() {
            Some(0x01) if bytes.len() == 17 => {
                let dx = f64::from_bits(u64::from_be_bytes(bytes[1..9].try_into().unwrap()));
                let dy = f64::from_bits(u64::from_be_bytes(bytes[9..17].try_into().unwrap()));
                if !dx.is_finite() || !dy.is_finite() {
                    return Err(DiscretizationError::CorruptGridId {
                        reason: "non-finite centered offsets".into(),
                    });
                }
                Ok(GridId::Centered { dx, dy })
            }
            Some(0x02) if bytes.len() == 2 => Ok(GridId::Robust {
                grid_index: bytes[1],
            }),
            Some(0x03) if bytes.len() == 1 => Ok(GridId::Static),
            _ => Err(DiscretizationError::CorruptGridId {
                reason: format!(
                    "unrecognised grid identifier encoding ({} bytes)",
                    bytes.len()
                ),
            }),
        }
    }
}

/// The result of discretizing one original click-point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscretizedClick {
    /// Clear data stored alongside the hash.
    pub grid_id: GridId,
    /// The grid-square index that will be hashed.
    pub cell: GridCell,
}

impl DiscretizedClick {
    /// Canonical byte encoding of `(grid_id, cell)` for hashing, matching
    /// the paper's `h(dx, dy, ix, iy)` per-click contribution.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.write_into(&mut v);
        v
    }

    /// Exact length of the [`DiscretizedClick::to_bytes`] encoding.
    pub fn encoded_len(&self) -> usize {
        self.grid_id.encoded_len() + 16
    }

    /// Append the canonical encoding to `out` without allocating.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        self.grid_id.write_into(out);
        out.extend_from_slice(&self.cell.ix.to_be_bytes());
        out.extend_from_slice(&self.cell.iy.to_be_bytes());
    }
}

/// Interface shared by Centered, Robust and static-grid discretization.
pub trait DiscretizationScheme {
    /// Human-readable scheme name (used in reports and password files).
    fn name(&self) -> &'static str;

    /// The minimum tolerance guaranteed around every original click-point:
    /// any login within this Chebyshev distance is accepted.
    fn guaranteed_tolerance(&self) -> f64;

    /// The maximum distance at which a login can still be accepted
    /// (`r` for Centered, `5r` for Robust in the worst case).
    fn maximum_accepted_distance(&self) -> f64;

    /// Side length of the grid squares the scheme hashes.
    fn grid_square_size(&self) -> f64;

    /// Number of distinct clear grid identifiers the scheme can emit
    /// (3 for Robust, `(2r)²` for Centered, 1 for static).
    fn num_grid_identifiers(&self) -> u64;

    /// Discretize an original click-point at enrollment time.
    fn enroll(&self, original: &Point) -> DiscretizedClick;

    /// Map a login click-point to a grid square using the clear identifier
    /// stored at enrollment.  Fails if the identifier belongs to a different
    /// scheme or is corrupt.
    fn try_locate(&self, grid_id: &GridId, login: &Point) -> Result<GridCell, DiscretizationError>;

    /// Infallible variant of [`try_locate`](Self::try_locate).
    ///
    /// # Panics
    /// Panics if the identifier does not belong to this scheme; use
    /// `try_locate` when handling untrusted password files.
    fn locate(&self, grid_id: &GridId, login: &Point) -> GridCell {
        self.try_locate(grid_id, login)
            .expect("grid identifier does not belong to this discretization scheme")
    }

    /// Whether a login click-point would be accepted for the given original
    /// click-point (enroll + locate + compare).
    fn accepts(&self, original: &Point, login: &Point) -> bool {
        let enrolled = self.enroll(original);
        match self.try_locate(&enrolled.grid_id, login) {
            Ok(cell) => cell == enrolled.cell,
            Err(_) => false,
        }
    }

    /// Bits of clear information revealed by the stored grid identifier
    /// (§5.2: 2 bits for Robust, `log2((2r)²)` for Centered).
    fn identifier_bits(&self) -> f64 {
        (self.num_grid_identifiers() as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_id_round_trip_centered() {
        let id = GridId::Centered { dx: 7.5, dy: 12.25 };
        let decoded = GridId::from_bytes(&id.to_bytes()).unwrap();
        assert_eq!(decoded, id);
    }

    #[test]
    fn grid_id_round_trip_robust_and_static() {
        for idx in 0..3u8 {
            let id = GridId::Robust { grid_index: idx };
            assert_eq!(GridId::from_bytes(&id.to_bytes()).unwrap(), id);
        }
        assert_eq!(
            GridId::from_bytes(&GridId::Static.to_bytes()).unwrap(),
            GridId::Static
        );
    }

    #[test]
    fn grid_id_rejects_garbage() {
        assert!(GridId::from_bytes(&[]).is_err());
        assert!(GridId::from_bytes(&[0x01, 1, 2]).is_err());
        assert!(GridId::from_bytes(&[0x09]).is_err());
        // Non-finite offsets are rejected even with a valid layout.
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&f64::NAN.to_bits().to_be_bytes());
        bytes.extend_from_slice(&1.0f64.to_bits().to_be_bytes());
        assert!(GridId::from_bytes(&bytes).is_err());
    }

    #[test]
    fn discretized_click_encoding_contains_cell_indices() {
        let click = DiscretizedClick {
            grid_id: GridId::Robust { grid_index: 2 },
            cell: GridCell::new(-3, 42),
        };
        let bytes = click.to_bytes();
        // 2 bytes of grid id + 8 + 8 of cell indices.
        assert_eq!(bytes.len(), 2 + 16);
        let other = DiscretizedClick {
            grid_id: GridId::Robust { grid_index: 2 },
            cell: GridCell::new(-3, 43),
        };
        assert_ne!(bytes, other.to_bytes());
    }
}
