//! The naive single-grid baseline and its "edge problem".
//!
//! Section 2 of the paper describes the simplest possible discretization: a
//! single static grid overlaid on the image; a login is accepted iff it
//! falls in the same grid square as the original click.  Its flaw is the
//! *edge problem*: an original click next to a grid line can be rejected for
//! logins only one pixel away, because the neighbouring pixel falls in the
//! adjacent square.  Robust Discretization was invented to fix this, and
//! Centered Discretization fixes it without Robust's false accepts/rejects.
//!
//! The scheme is included as a baseline for tests, examples and ablation
//! benches.

use crate::error::DiscretizationError;
use crate::scheme::{DiscretizationScheme, DiscretizedClick, GridId};
use gp_geometry::{GridCell, Point, UniformGrid};
use serde::{Deserialize, Serialize};

/// A single fixed grid anchored at the image origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticGridDiscretization {
    grid: UniformGrid,
}

impl StaticGridDiscretization {
    /// Create a static grid with the given square size.
    pub fn new(square_size: f64) -> Result<Self, DiscretizationError> {
        if !(square_size.is_finite() && square_size > 0.0) {
            return Err(DiscretizationError::InvalidTolerance { r: square_size });
        }
        Ok(Self {
            grid: UniformGrid::anchored_at_origin(square_size),
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }
}

impl DiscretizationScheme for StaticGridDiscretization {
    fn name(&self) -> &'static str {
        "static-grid"
    }

    fn guaranteed_tolerance(&self) -> f64 {
        // The edge problem: a click exactly on a grid line has zero
        // guaranteed tolerance.
        0.0
    }

    fn maximum_accepted_distance(&self) -> f64 {
        // A click in a square corner can be matched by the opposite corner.
        self.grid.cell
    }

    fn grid_square_size(&self) -> f64 {
        self.grid.cell
    }

    fn num_grid_identifiers(&self) -> u64 {
        1
    }

    fn enroll(&self, original: &Point) -> DiscretizedClick {
        assert!(original.is_finite(), "click-point must be finite");
        DiscretizedClick {
            grid_id: GridId::Static,
            cell: self.grid.cell_of(original),
        }
    }

    fn try_locate(&self, grid_id: &GridId, login: &Point) -> Result<GridCell, DiscretizationError> {
        if !login.is_finite() {
            return Err(DiscretizationError::NonFinitePoint);
        }
        match grid_id {
            GridId::Static => Ok(self.grid.cell_of(login)),
            other => Err(DiscretizationError::MismatchedGridId {
                scheme: self.name(),
                got: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_points_in_same_square() {
        let scheme = StaticGridDiscretization::new(20.0).unwrap();
        let original = Point::new(10.0, 10.0);
        assert!(scheme.accepts(&original, &Point::new(19.0, 0.5)));
        assert!(!scheme.accepts(&original, &Point::new(20.5, 10.0)));
    }

    #[test]
    fn edge_problem_demonstrated() {
        // A click just left of the grid line at x = 20 is rejected for a
        // login one pixel to the right, even though the user was only one
        // pixel off.
        let scheme = StaticGridDiscretization::new(20.0).unwrap();
        let original = Point::new(19.5, 10.0);
        let login = Point::new(20.5, 10.0);
        assert!(original.chebyshev(&login) <= 1.0);
        assert!(!scheme.accepts(&original, &login));
        assert_eq!(scheme.guaranteed_tolerance(), 0.0);
    }

    #[test]
    fn metadata() {
        let scheme = StaticGridDiscretization::new(13.0).unwrap();
        assert_eq!(scheme.name(), "static-grid");
        assert_eq!(scheme.grid_square_size(), 13.0);
        assert_eq!(scheme.num_grid_identifiers(), 1);
        assert_eq!(scheme.identifier_bits(), 0.0);
        assert_eq!(scheme.maximum_accepted_distance(), 13.0);
    }

    #[test]
    fn locate_rejects_foreign_grid_id() {
        let scheme = StaticGridDiscretization::new(10.0).unwrap();
        assert!(matches!(
            scheme.try_locate(&GridId::Robust { grid_index: 0 }, &Point::new(1.0, 1.0)),
            Err(DiscretizationError::MismatchedGridId { .. })
        ));
    }

    #[test]
    fn invalid_square_size_rejected() {
        assert!(StaticGridDiscretization::new(0.0).is_err());
        assert!(StaticGridDiscretization::new(-1.0).is_err());
    }
}
