//! Property-based tests for the central claims of the paper.
//!
//! These encode, as machine-checked invariants, the statements the paper
//! makes about the two schemes:
//!
//! * Centered Discretization accepts exactly the centered-tolerance region
//!   (zero false accepts, zero false rejects).
//! * Robust Discretization always accepts within `r` and never accepts
//!   beyond `5r`; outside the centered-tolerance region it *can* accept
//!   (false accepts) and inside the user-expected `3r` region it *can*
//!   reject (false rejects).
//! * Every point of the plane is r-safe in at least one of the three
//!   Robust grids.

use gp_discretization::prelude::*;
use gp_geometry::Point;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    0.0..5_000.0f64
}

fn arb_point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn pixel_point() -> impl Strategy<Value = Point> {
    (0u32..2_000, 0u32..2_000).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

proptest! {
    /// Centered: a login is accepted iff it lies within the centered
    /// tolerance (half-open at +r, closed at −r on each axis).
    #[test]
    fn centered_accepts_exactly_centered_tolerance(
        original in arb_point(),
        dx in -60.0..60.0f64,
        dy in -60.0..60.0f64,
        r in 1.0..25.0f64,
    ) {
        let scheme = CenteredDiscretization::new(r).unwrap();
        let login = original.offset(dx, dy);
        let inside = (-r..r).contains(&dx) && (-r..r).contains(&dy);
        prop_assert_eq!(scheme.accepts(&original, &login), inside,
            "r={} dx={} dy={}", r, dx, dy);
    }

    /// Centered, pixel convention: with `from_pixel_tolerance(t)` every
    /// integer offset within ±t pixels is accepted and every offset with a
    /// component beyond t is rejected — perfectly symmetric behaviour.
    #[test]
    fn centered_pixel_tolerance_is_symmetric(
        original in pixel_point(),
        t in 1u32..20,
        dx in -40i64..40,
        dy in -40i64..40,
    ) {
        let scheme = CenteredDiscretization::from_pixel_tolerance(t);
        let login = Point::new(original.x + dx as f64, original.y + dy as f64);
        let inside = dx.unsigned_abs() <= t as u64 && dy.unsigned_abs() <= t as u64;
        prop_assert_eq!(scheme.accepts(&original, &login), inside);
    }

    /// Centered: the enrolled offsets always lie in `[0, 2r)` and the
    /// original point is the exact center of its acceptance region.
    #[test]
    fn centered_offsets_valid_and_region_centered(original in arb_point(), r in 0.5..30.0f64) {
        let scheme = CenteredDiscretization::new(r).unwrap();
        let enrolled = scheme.enroll(&original);
        match enrolled.grid_id {
            GridId::Centered { dx, dy } => {
                prop_assert!((0.0..2.0 * r).contains(&dx));
                prop_assert!((0.0..2.0 * r).contains(&dy));
            }
            other => prop_assert!(false, "unexpected grid id {:?}", other),
        }
        let region = scheme.acceptance_region(&original);
        prop_assert!((region.center().x - original.x).abs() < 1e-6);
        prop_assert!((region.center().y - original.y).abs() < 1e-6);
    }

    /// Robust: every point is r-safe in at least one grid (Birget et al.'s
    /// theorem), so enrollment always selects a grid with safety ≥ r.
    #[test]
    fn robust_every_point_has_a_safe_grid(p in arb_point(), r in 0.5..25.0f64) {
        let scheme = RobustDiscretization::new(r).unwrap();
        let (_, safety) = scheme.select_grid(&p);
        prop_assert!(safety >= r - 1e-6, "selected safety {} < r {}", safety, r);
    }

    /// Robust: guaranteed acceptance within r, guaranteed rejection beyond
    /// 5r (r_max), for both grid-selection policies.
    #[test]
    fn robust_tolerance_bounds(
        original in arb_point(),
        dx in -160.0..160.0f64,
        dy in -160.0..160.0f64,
        r in 1.0..25.0f64,
        most_centered in any::<bool>(),
    ) {
        let policy = if most_centered {
            GridSelectionPolicy::MostCentered
        } else {
            GridSelectionPolicy::FirstSafe
        };
        let scheme = RobustDiscretization::with_policy(r, policy).unwrap();
        let login = original.offset(dx, dy);
        let cheb = original.chebyshev(&login);
        let accepted = scheme.accepts(&original, &login);
        if cheb < r - 1e-9 {
            prop_assert!(accepted, "rejected at distance {} < r = {}", cheb, r);
        }
        if cheb > 5.0 * r + 1e-9 {
            prop_assert!(!accepted, "accepted at distance {} > 5r = {}", cheb, 5.0 * r);
        }
    }

    /// Robust with MostCentered never behaves worse than FirstSafe in the
    /// sense that its acceptance region always contains the centered
    /// tolerance (both do) — and both schemes agree with a direct
    /// region-containment check.
    #[test]
    fn robust_acceptance_equals_region_containment(
        original in arb_point(),
        dx in -160.0..160.0f64,
        dy in -160.0..160.0f64,
        r in 1.0..25.0f64,
    ) {
        let scheme = RobustDiscretization::new(r).unwrap();
        let login = original.offset(dx, dy);
        let region = scheme.acceptance_region(&original);
        prop_assert_eq!(scheme.accepts(&original, &login), region.contains(&login));
    }

    /// Cross-scheme comparison at equal r: anything Centered accepts,
    /// Robust also accepts (Robust's region is a superset), which is why
    /// Robust has false accepts but Centered cannot have false rejects
    /// relative to it.
    #[test]
    fn robust_region_superset_of_centered_at_equal_r(
        original in arb_point(),
        dx in -30.0..30.0f64,
        dy in -30.0..30.0f64,
        r in 1.0..20.0f64,
    ) {
        let centered = CenteredDiscretization::new(r).unwrap();
        let robust = RobustDiscretization::new(r).unwrap();
        let login = original.offset(dx, dy);
        if centered.accepts(&original, &login) {
            prop_assert!(robust.accepts(&original, &login));
        }
    }

    /// Static grid: accepts iff the two points share the anchored square.
    #[test]
    fn static_grid_matches_shared_square(
        original in arb_point(),
        login in arb_point(),
        cell in 2.0..60.0f64,
    ) {
        let scheme = StaticGridDiscretization::new(cell).unwrap();
        let same_square = (original.x / cell).floor() == (login.x / cell).floor()
            && (original.y / cell).floor() == (login.y / cell).floor();
        prop_assert_eq!(scheme.accepts(&original, &login), same_square);
    }

    /// Grid identifiers survive the byte round-trip for every scheme.
    #[test]
    fn grid_id_bytes_round_trip(p in arb_point(), r in 1.0..20.0f64, which in 0u8..3) {
        let enrolled = match which {
            0 => CenteredDiscretization::new(r).unwrap().enroll(&p),
            1 => RobustDiscretization::new(r).unwrap().enroll(&p),
            _ => StaticGridDiscretization::new(r * 2.0).unwrap().enroll(&p),
        };
        let decoded = GridId::from_bytes(&enrolled.grid_id.to_bytes()).unwrap();
        prop_assert_eq!(decoded, enrolled.grid_id);
    }

    /// Password space monotonicity: more clicks or smaller squares never
    /// shrink the space; Centered always beats Robust at equal r.
    #[test]
    fn password_space_monotonicity(
        w in 100u32..2000, h in 100u32..2000,
        grid in 4.0..100.0f64, clicks in 1u32..8, r in 1.0..20.0f64,
    ) {
        use gp_geometry::ImageDims;
        let img = ImageDims::new(w, h);
        let a = PasswordSpace::new(img, grid, clicks).bits();
        let b = PasswordSpace::new(img, grid, clicks + 1).bits();
        prop_assert!(b >= a);
        let small = PasswordSpace::new(img, grid, clicks).bits();
        let large = PasswordSpace::new(img, grid * 2.0, clicks).bits();
        prop_assert!(small >= large);

        let centered_bits = PasswordSpace::new(img, SchemeKind::Centered.grid_size_for_r(r), 5).bits();
        let robust_bits = PasswordSpace::new(img, SchemeKind::Robust.grid_size_for_r(r), 5).bits();
        prop_assert!(centered_bits >= robust_bits);
    }
}
