//! Image dimensions and containment helpers.

use crate::point::{PixelPoint, Point};
use serde::{Deserialize, Serialize};

/// The pixel dimensions of a background image.
///
/// The paper's user study used two 451×331-pixel images ("Cars" and "Pool");
/// its password-space analysis (Table 3) additionally considers 640×480.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageDims {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl ImageDims {
    /// Construct image dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero: a zero-area image cannot host
    /// click-points and would poison later division.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self { width, height }
    }

    /// The 451×331 image size used in the paper's field and lab studies.
    pub const STUDY: ImageDims = ImageDims {
        width: 451,
        height: 331,
    };

    /// The 640×480 image size used in the paper's password-space table.
    pub const VGA: ImageDims = ImageDims {
        width: 640,
        height: 480,
    };

    /// Total number of pixels.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether a pixel coordinate lies on the image.
    pub fn contains_pixel(&self, p: &PixelPoint) -> bool {
        p.x < self.width && p.y < self.height
    }

    /// Whether a continuous coordinate lies within `[0, width) × [0, height)`.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x < self.width as f64 && p.y < self.height as f64
    }

    /// Clamp a continuous point into the image (inclusive of the far edge
    /// minus one pixel, so the result is always a valid click location).
    pub fn clamp_point(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(0.0, (self.width - 1) as f64),
            p.y.clamp(0.0, (self.height - 1) as f64),
        )
    }

    /// Clamp a pixel point into the image.
    pub fn clamp_pixel(&self, p: &PixelPoint) -> PixelPoint {
        PixelPoint::new(p.x.min(self.width - 1), p.y.min(self.height - 1))
    }

    /// Center of the image.
    pub fn center(&self) -> Point {
        Point::new(self.width as f64 / 2.0, self.height as f64 / 2.0)
    }
}

impl core::fmt::Display for ImageDims {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_and_vga_constants_match_paper() {
        assert_eq!(ImageDims::STUDY.to_string(), "451x331");
        assert_eq!(ImageDims::VGA.to_string(), "640x480");
    }

    #[test]
    fn area() {
        assert_eq!(ImageDims::new(10, 20).area(), 200);
        assert_eq!(ImageDims::VGA.area(), 307_200);
    }

    #[test]
    fn pixel_containment_is_half_open() {
        let d = ImageDims::new(100, 50);
        assert!(d.contains_pixel(&PixelPoint::new(0, 0)));
        assert!(d.contains_pixel(&PixelPoint::new(99, 49)));
        assert!(!d.contains_pixel(&PixelPoint::new(100, 0)));
        assert!(!d.contains_pixel(&PixelPoint::new(0, 50)));
    }

    #[test]
    fn point_containment_is_half_open() {
        let d = ImageDims::new(100, 50);
        assert!(d.contains_point(&Point::new(0.0, 0.0)));
        assert!(d.contains_point(&Point::new(99.999, 49.999)));
        assert!(!d.contains_point(&Point::new(100.0, 10.0)));
        assert!(!d.contains_point(&Point::new(-0.001, 10.0)));
    }

    #[test]
    fn clamping_puts_points_inside() {
        let d = ImageDims::new(100, 50);
        let clamped = d.clamp_point(&Point::new(150.0, -3.0));
        assert!(d.contains_point(&clamped));
        assert_eq!(clamped, Point::new(99.0, 0.0));
        assert_eq!(
            d.clamp_pixel(&PixelPoint::new(1000, 2)),
            PixelPoint::new(99, 2)
        );
    }

    #[test]
    fn center_is_midpoint() {
        assert_eq!(ImageDims::new(100, 50).center(), Point::new(50.0, 25.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        ImageDims::new(0, 10);
    }
}
