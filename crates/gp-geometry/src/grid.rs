//! Uniform offset grids.
//!
//! Both discretization schemes overlay a uniform square grid on the image:
//! Robust Discretization uses three fixed grids of square size `6r`
//! diagonally offset by `2r`; Centered Discretization derives a per-password
//! grid of square size `2r` whose offset is computed from the click-point
//! itself.  [`UniformGrid`] captures the shared geometry: a square cell
//! size and an `(offset_x, offset_y)` translation of the grid origin.

use crate::dims::ImageDims;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Identifier of one square in a [`UniformGrid`].
///
/// Cell indices may be negative: when a grid is offset to the right of the
/// origin, points to the left of the first full cell fall in cell `-1`
/// (the paper's 1-D description allows `i = -1` for points within `r` of
/// the origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCell {
    /// Column index.
    pub ix: i64,
    /// Row index.
    pub iy: i64,
}

impl GridCell {
    /// Construct a cell identifier.
    pub const fn new(ix: i64, iy: i64) -> Self {
        Self { ix, iy }
    }
}

impl core::fmt::Display for GridCell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.ix, self.iy)
    }
}

/// A uniform square grid with a translated origin.
///
/// Cell `(0, 0)` covers `[offset_x, offset_x + cell) × [offset_y, offset_y + cell)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    /// Side length of each (square) cell.
    pub cell: f64,
    /// Horizontal translation of the grid origin.
    pub offset_x: f64,
    /// Vertical translation of the grid origin.
    pub offset_y: f64,
}

impl UniformGrid {
    /// Construct a grid.
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive or any parameter is
    /// non-finite.
    pub fn new(cell: f64, offset_x: f64, offset_y: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive");
        assert!(
            offset_x.is_finite() && offset_y.is_finite(),
            "grid offsets must be finite"
        );
        Self {
            cell,
            offset_x,
            offset_y,
        }
    }

    /// Grid with cells of size `cell` anchored at the image origin.
    pub fn anchored_at_origin(cell: f64) -> Self {
        Self::new(cell, 0.0, 0.0)
    }

    /// The cell containing point `p`.
    pub fn cell_of(&self, p: &Point) -> GridCell {
        GridCell::new(
            ((p.x - self.offset_x) / self.cell).floor() as i64,
            ((p.y - self.offset_y) / self.cell).floor() as i64,
        )
    }

    /// The rectangle covered by a cell.
    pub fn cell_rect(&self, cell: &GridCell) -> Rect {
        let x0 = self.offset_x + cell.ix as f64 * self.cell;
        let y0 = self.offset_y + cell.iy as f64 * self.cell;
        Rect::new(x0, y0, x0 + self.cell, y0 + self.cell)
    }

    /// Center of the cell containing `p`.
    pub fn cell_center(&self, p: &Point) -> Point {
        self.cell_rect(&self.cell_of(p)).center()
    }

    /// Chebyshev distance from `p` to the nearest edge of its own cell.
    ///
    /// This is the quantity Robust Discretization calls "safety": a point is
    /// *r-safe* in this grid when the returned distance is at least `r`.
    pub fn distance_to_cell_edge(&self, p: &Point) -> f64 {
        let cell = self.cell_of(p);
        let rect = self.cell_rect(&cell);
        let dx = (p.x - rect.x0).min(rect.x1 - p.x);
        let dy = (p.y - rect.y0).min(rect.y1 - p.y);
        dx.min(dy)
    }

    /// Whether `p` is at Chebyshev distance at least `r` from every edge of
    /// its cell (the paper's *r-safe* predicate).
    pub fn is_r_safe(&self, p: &Point, r: f64) -> bool {
        self.distance_to_cell_edge(p) >= r
    }

    /// Number of whole or partial cells needed to cover an image of the
    /// given dimensions (per axis and total).
    ///
    /// Following the paper's Table 3, the count uses full squares that fit
    /// in the image (`floor(extent / cell)`), which is how the "252 36x36
    /// grid-squares per grid" figure for a 640×480 image is obtained.
    pub fn squares_per_image(&self, dims: ImageDims) -> (u64, u64) {
        let nx = (dims.width as f64 / self.cell).floor() as u64;
        let ny = (dims.height as f64 / self.cell).floor() as u64;
        (nx, ny)
    }

    /// Total number of full squares covering the image.
    pub fn total_squares(&self, dims: ImageDims) -> u64 {
        let (nx, ny) = self.squares_per_image(dims);
        nx * ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_basic() {
        let g = UniformGrid::anchored_at_origin(10.0);
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), GridCell::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(9.999, 9.999)), GridCell::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(10.0, 0.0)), GridCell::new(1, 0));
        assert_eq!(g.cell_of(&Point::new(25.0, 31.0)), GridCell::new(2, 3));
    }

    #[test]
    fn offset_grid_shifts_cells() {
        let g = UniformGrid::new(10.0, 4.0, 6.0);
        assert_eq!(g.cell_of(&Point::new(4.0, 6.0)), GridCell::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(3.9, 6.0)), GridCell::new(-1, 0));
        assert_eq!(g.cell_of(&Point::new(14.5, 2.0)), GridCell::new(1, -1));
    }

    #[test]
    fn cell_rect_round_trips_cell_of() {
        let g = UniformGrid::new(7.0, 2.5, -1.5);
        for &(x, y) in &[(0.0, 0.0), (13.3, 27.9), (-5.0, 3.0), (100.0, 200.0)] {
            let p = Point::new(x, y);
            let cell = g.cell_of(&p);
            let rect = g.cell_rect(&cell);
            assert!(
                rect.contains(&p),
                "point {p} not in rect {rect} for cell {cell}"
            );
        }
    }

    #[test]
    fn distance_to_cell_edge_and_r_safety() {
        let g = UniformGrid::anchored_at_origin(12.0);
        let p = Point::new(6.0, 6.0); // dead center of cell (0,0)
        assert_eq!(g.distance_to_cell_edge(&p), 6.0);
        assert!(g.is_r_safe(&p, 6.0));
        assert!(!g.is_r_safe(&p, 6.1));

        let q = Point::new(2.0, 6.0); // 2 from the left edge
        assert_eq!(g.distance_to_cell_edge(&q), 2.0);
        assert!(g.is_r_safe(&q, 2.0));
        assert!(!g.is_r_safe(&q, 2.5));
    }

    #[test]
    fn squares_per_image_matches_paper_table3_examples() {
        // 640x480 with 36x36 squares -> 17 x 13 = 221? The paper reports 252.
        // The paper counts ceil on one axis?  Check: 640/36 = 17.8 -> 17,
        // 480/36 = 13.3 -> 13, 17*13 = 221.  The paper's 252 = 18*14 uses
        // ceiling (partial squares are still distinct identifiers).  We
        // expose floor here and the password-space module uses ceiling; this
        // test pins the floor behaviour.
        let g = UniformGrid::anchored_at_origin(36.0);
        assert_eq!(g.squares_per_image(ImageDims::VGA), (17, 13));

        let g9 = UniformGrid::anchored_at_origin(9.0);
        assert_eq!(g9.squares_per_image(ImageDims::VGA), (71, 53));
    }

    #[test]
    fn cell_center() {
        let g = UniformGrid::anchored_at_origin(10.0);
        assert_eq!(g.cell_center(&Point::new(3.0, 4.0)), Point::new(5.0, 5.0));
        assert_eq!(
            g.cell_center(&Point::new(17.0, 25.0)),
            Point::new(15.0, 25.0)
        );
    }

    #[test]
    fn negative_coordinates_use_floor_not_truncation() {
        let g = UniformGrid::anchored_at_origin(10.0);
        assert_eq!(g.cell_of(&Point::new(-0.5, -0.5)), GridCell::new(-1, -1));
        assert_eq!(g.cell_of(&Point::new(-10.0, 0.0)), GridCell::new(-1, 0));
        assert_eq!(g.cell_of(&Point::new(-10.1, 0.0)), GridCell::new(-2, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        UniformGrid::new(0.0, 0.0, 0.0);
    }
}
