//! Geometry substrate for click-based graphical passwords.
//!
//! Click-based graphical password schemes (PassPoints, Cued Click-Points,
//! Persuasive Cued Click-Points) operate on pixel coordinates of one or more
//! background images.  This crate provides the small, dependency-free
//! geometric vocabulary shared by the rest of the workspace:
//!
//! * [`point`] — continuous ([`Point`]) and pixel ([`PixelPoint`]) 2-D
//!   points with the distance metrics relevant to tolerance analysis
//!   (Chebyshev for square tolerance regions, Euclidean and Manhattan for
//!   diagnostics).
//! * [`dims`] — image dimensions ([`ImageDims`]) with containment and
//!   clamping helpers.
//! * [`segment`] — 1-D half-open intervals used when reasoning about the
//!   per-axis behaviour of discretization.
//! * [`rect`] — axis-aligned rectangles (grid squares, tolerance squares,
//!   persuasive viewports).
//! * [`grid`] — uniform offset grids overlaid on an image, the geometric
//!   object both Robust and Centered Discretization manipulate.
//! * [`tolerance`] — centered square tolerance regions ("centered-tolerance"
//!   in the paper's terminology).
//!
//! All types are plain data with `serde` derives so datasets and experiment
//! results can be persisted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dims;
pub mod grid;
pub mod point;
pub mod rect;
pub mod segment;
pub mod tolerance;

pub use dims::ImageDims;
pub use grid::{GridCell, UniformGrid};
pub use point::{PixelPoint, Point};
pub use rect::Rect;
pub use segment::Segment;
pub use tolerance::ToleranceSquare;
