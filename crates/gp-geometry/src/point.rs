//! Continuous and pixel-valued 2-D points, with the distance metrics used in
//! tolerance analysis.

use serde::{Deserialize, Serialize};

/// A point with continuous (real-valued) coordinates.
///
/// The discretization mathematics in the paper is defined over the reals and
/// only then specialized to pixels ("We used real numbers for our
/// computations and comparisons to minimize rounding errors", §4), so the
/// continuous type is the primary one; [`PixelPoint`] converts losslessly
/// into it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate, increasing rightwards.
    pub x: f64,
    /// Vertical coordinate, increasing downwards (image convention).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Chebyshev (L∞) distance: `max(|Δx|, |Δy|)`.
    ///
    /// A login click is inside a centered square tolerance of half-width `r`
    /// exactly when its Chebyshev distance from the original click is ≤ `r`,
    /// which makes this the canonical metric of the paper.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Euclidean (L2) distance.
    pub fn euclidean(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (L1) distance.
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Componentwise translation.
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Round to the nearest pixel, clamping negative coordinates to zero.
    pub fn to_pixel(&self) -> PixelPoint {
        PixelPoint::new(
            self.x.round().max(0.0) as u32,
            self.y.round().max(0.0) as u32,
        )
    }

    /// True when both coordinates are finite (not NaN / infinite).
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<PixelPoint> for Point {
    fn from(p: PixelPoint) -> Self {
        Point::new(p.x as f64, p.y as f64)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A point on a discrete pixel raster, as produced by a mouse click.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PixelPoint {
    /// Horizontal pixel coordinate (column).
    pub x: u32,
    /// Vertical pixel coordinate (row).
    pub y: u32,
}

impl PixelPoint {
    /// Construct a pixel point.
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Chebyshev (L∞) distance in whole pixels.
    pub fn chebyshev(&self, other: &PixelPoint) -> u32 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx.max(dy)
    }

    /// Euclidean distance (as a float, since it is generally not integral).
    pub fn euclidean(&self, other: &PixelPoint) -> f64 {
        Point::from(*self).euclidean(&Point::from(*other))
    }

    /// Manhattan distance in whole pixels.
    pub fn manhattan(&self, other: &PixelPoint) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Translate by a signed offset, saturating at the raster boundary
    /// (coordinates never go negative).
    pub fn saturating_offset(&self, dx: i64, dy: i64) -> PixelPoint {
        let clamp = |v: i64| -> u32 {
            if v < 0 {
                0
            } else if v > u32::MAX as i64 {
                u32::MAX
            } else {
                v as u32
            }
        };
        PixelPoint::new(clamp(self.x as i64 + dx), clamp(self.y as i64 + dy))
    }
}

impl From<(u32, u32)> for PixelPoint {
    fn from((x, y): (u32, u32)) -> Self {
        PixelPoint::new(x, y)
    }
}

impl core::fmt::Display for PixelPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_is_max_of_axis_distances() {
        let a = Point::new(10.0, 20.0);
        let b = Point::new(13.0, 27.0);
        assert_eq!(a.chebyshev(&b), 7.0);
        assert_eq!(b.chebyshev(&a), 7.0);
    }

    #[test]
    fn euclidean_345_triangle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axes() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, -1.0);
        assert_eq!(a.manhattan(&b), 5.0);
    }

    #[test]
    fn distances_are_zero_for_identical_points() {
        let p = Point::new(5.5, 7.25);
        assert_eq!(p.chebyshev(&p), 0.0);
        assert_eq!(p.euclidean(&p), 0.0);
        assert_eq!(p.manhattan(&p), 0.0);
    }

    #[test]
    fn pixel_chebyshev_symmetric() {
        let a = PixelPoint::new(3, 10);
        let b = PixelPoint::new(8, 4);
        assert_eq!(a.chebyshev(&b), 6);
        assert_eq!(b.chebyshev(&a), 6);
    }

    #[test]
    fn pixel_to_point_round_trip() {
        let px = PixelPoint::new(123, 456);
        let p: Point = px.into();
        assert_eq!(p.to_pixel(), px);
    }

    #[test]
    fn to_pixel_rounds_to_nearest_and_clamps_negative() {
        assert_eq!(Point::new(1.4, 2.6).to_pixel(), PixelPoint::new(1, 3));
        assert_eq!(Point::new(-3.0, 0.2).to_pixel(), PixelPoint::new(0, 0));
    }

    #[test]
    fn saturating_offset_clamps_at_zero() {
        let p = PixelPoint::new(2, 2);
        assert_eq!(p.saturating_offset(-5, 1), PixelPoint::new(0, 3));
        assert_eq!(p.saturating_offset(3, -10), PixelPoint::new(5, 0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PixelPoint::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }

    #[test]
    fn is_finite_rejects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
