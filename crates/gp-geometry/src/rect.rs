//! Axis-aligned rectangles: grid squares, tolerance squares and persuasive
//! viewports are all expressed as [`Rect`]s.

use crate::point::Point;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, half-open on both axes:
/// `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Inclusive left edge.
    pub x0: f64,
    /// Inclusive top edge.
    pub y0: f64,
    /// Exclusive right edge.
    pub x1: f64,
    /// Exclusive bottom edge.
    pub y1: f64,
}

impl Rect {
    /// Construct a rectangle from its corner coordinates.
    ///
    /// # Panics
    /// Panics if the rectangle is inverted or any coordinate is non-finite.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite(),
            "rectangle coordinates must be finite"
        );
        assert!(x0 <= x1 && y0 <= y1, "rectangle must not be inverted");
        Self { x0, y0, x1, y1 }
    }

    /// Construct from two 1-D segments.
    pub fn from_segments(x: Segment, y: Segment) -> Self {
        Self::new(x.start, y.start, x.end, y.end)
    }

    /// Square of side `2r` centered on `center` — the paper's
    /// "centered-tolerance" square.
    pub fn centered_square(center: Point, r: f64) -> Self {
        assert!(r >= 0.0, "half-width must be non-negative");
        Self::new(center.x - r, center.y - r, center.x + r, center.y + r)
    }

    /// Horizontal extent as a segment.
    pub fn x_segment(&self) -> Segment {
        Segment::new(self.x0, self.x1)
    }

    /// Vertical extent as a segment.
    pub fn y_segment(&self) -> Segment {
        Segment::new(self.y0, self.y1)
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether `p` lies inside (half-open semantics).
    pub fn contains(&self, p: &Point) -> bool {
        self.x_segment().contains(p.x) && self.y_segment().contains(p.y)
    }

    /// Whether `p` lies inside or on the boundary (closed semantics).
    pub fn contains_closed(&self, p: &Point) -> bool {
        self.x_segment().contains_closed(p.x) && self.y_segment().contains_closed(p.y)
    }

    /// Chebyshev distance from `p` to the nearest edge; 0 when outside.
    ///
    /// For a click-point inside a grid square this is the paper's notion of
    /// how "safe" the point is: Robust Discretization requires it to be at
    /// least `r`.
    pub fn distance_to_nearest_edge(&self, p: &Point) -> f64 {
        if !self.contains_closed(p) {
            return 0.0;
        }
        self.x_segment()
            .distance_to_nearest_edge(p.x)
            .min(self.y_segment().distance_to_nearest_edge(p.y))
    }

    /// Intersection with another rectangle, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x = self.x_segment().intersect(&other.x_segment())?;
        let y = self.y_segment().intersect(&other.y_segment())?;
        Some(Rect::from_segments(x, y))
    }

    /// Area of overlap with another rectangle.
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.intersect(other).map_or(0.0, |r| r.area())
    }

    /// Translate the rectangle.
    pub fn offset(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{:.2}, {:.2}) x [{:.2}, {:.2})",
            self.x0, self.x1, self.y0, self.y1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_square_geometry() {
        let r = Rect::centered_square(Point::new(10.0, 20.0), 4.5);
        assert_eq!(r.width(), 9.0);
        assert_eq!(r.height(), 9.0);
        assert_eq!(r.center(), Point::new(10.0, 20.0));
        assert_eq!(r.area(), 81.0);
    }

    #[test]
    fn containment_half_open_vs_closed() {
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(!r.contains(&Point::new(10.0, 2.0)));
        assert!(r.contains_closed(&Point::new(10.0, 5.0)));
        assert!(!r.contains_closed(&Point::new(10.1, 5.0)));
    }

    #[test]
    fn edge_distance_is_min_over_axes() {
        let r = Rect::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(r.distance_to_nearest_edge(&Point::new(3.0, 10.0)), 3.0);
        assert_eq!(r.distance_to_nearest_edge(&Point::new(5.0, 1.0)), 1.0);
        assert_eq!(r.distance_to_nearest_edge(&Point::new(-1.0, 1.0)), 0.0);
    }

    #[test]
    fn intersection_and_overlap_area() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Rect::new(5.0, 5.0, 10.0, 10.0));
        assert_eq!(a.overlap_area(&b), 25.0);
        let c = Rect::new(20.0, 20.0, 30.0, 30.0);
        assert!(a.intersect(&c).is_none());
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn worst_case_robust_vs_centered_overlap() {
        // Figure 1 of the paper: original point at distance r from one edge
        // of a 6r x 6r robust square.  The centered-tolerance square of
        // half-width 3r then sticks out by 2r on two sides.
        let r = 1.0;
        let robust = Rect::new(0.0, 0.0, 6.0 * r, 6.0 * r);
        let click = Point::new(r, r); // worst case: r from left and top edges
        let centered = Rect::centered_square(click, 3.0 * r);
        let overlap = robust.overlap_area(&centered);
        // Overlap is a 4r x 4r region.
        assert_eq!(overlap, 16.0 * r * r);
        // False-reject region: centered-tolerance area not covered by robust.
        assert_eq!(centered.area() - overlap, 36.0 - 16.0);
        // False-accept region: robust area not covered by centered-tolerance.
        assert_eq!(robust.area() - overlap, 36.0 - 16.0);
    }

    #[test]
    fn offset_translates() {
        let r = Rect::new(0.0, 0.0, 2.0, 3.0).offset(1.0, -1.0);
        assert_eq!(r, Rect::new(1.0, -1.0, 3.0, 2.0));
    }

    #[test]
    fn from_segments_matches_new() {
        let r = Rect::from_segments(Segment::new(1.0, 2.0), Segment::new(3.0, 5.0));
        assert_eq!(r, Rect::new(1.0, 3.0, 2.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_rejected() {
        Rect::new(5.0, 0.0, 1.0, 2.0);
    }
}
