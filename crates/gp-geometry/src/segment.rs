//! 1-D intervals.
//!
//! Centered Discretization is defined one axis at a time (§3.1 of the
//! paper): a continuous line is partitioned into segments of length `2r`
//! starting from a per-password offset `d`.  [`Segment`] is the half-open
//! interval `[start, end)` used to express and test that partition.

use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` on the real line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Inclusive lower endpoint.
    pub start: f64,
    /// Exclusive upper endpoint.
    pub end: f64,
}

impl Segment {
    /// Construct a segment.
    ///
    /// # Panics
    /// Panics if `start > end` or either endpoint is non-finite.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite(),
            "segment endpoints must be finite"
        );
        assert!(start <= end, "segment start must not exceed end");
        Self { start, end }
    }

    /// Construct the segment of half-width `r` centered on `center`.
    pub fn centered(center: f64, r: f64) -> Self {
        assert!(r >= 0.0, "half-width must be non-negative");
        Self::new(center - r, center + r)
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.end - self.start
    }

    /// Midpoint of the segment.
    pub fn center(&self) -> f64 {
        (self.start + self.end) / 2.0
    }

    /// Whether `x` lies in `[start, end)`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.start && x < self.end
    }

    /// Whether `x` lies in the closed interval `[start, end]`.
    pub fn contains_closed(&self, x: f64) -> bool {
        x >= self.start && x <= self.end
    }

    /// Distance from `x` to the nearer endpoint; 0 when outside.
    pub fn distance_to_nearest_edge(&self, x: f64) -> f64 {
        if !self.contains_closed(x) {
            return 0.0;
        }
        (x - self.start).min(self.end - x)
    }

    /// Intersection with another segment, or `None` when disjoint.
    pub fn intersect(&self, other: &Segment) -> Option<Segment> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Segment::new(start, end))
        } else {
            None
        }
    }
}

impl core::fmt::Display for Segment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:.2}, {:.2})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_construction() {
        let s = Segment::centered(13.0, 5.5);
        assert_eq!(s.start, 7.5);
        assert_eq!(s.end, 18.5);
        assert_eq!(s.length(), 11.0);
        assert_eq!(s.center(), 13.0);
    }

    #[test]
    fn containment_is_half_open() {
        let s = Segment::new(2.0, 4.0);
        assert!(s.contains(2.0));
        assert!(s.contains(3.999));
        assert!(!s.contains(4.0));
        assert!(s.contains_closed(4.0));
        assert!(!s.contains(1.999));
    }

    #[test]
    fn edge_distance() {
        let s = Segment::new(0.0, 10.0);
        assert_eq!(s.distance_to_nearest_edge(3.0), 3.0);
        assert_eq!(s.distance_to_nearest_edge(8.0), 2.0);
        assert_eq!(s.distance_to_nearest_edge(5.0), 5.0);
        assert_eq!(s.distance_to_nearest_edge(-1.0), 0.0);
    }

    #[test]
    fn intersection() {
        let a = Segment::new(0.0, 5.0);
        let b = Segment::new(3.0, 8.0);
        assert_eq!(a.intersect(&b), Some(Segment::new(3.0, 5.0)));
        let c = Segment::new(6.0, 7.0);
        assert_eq!(a.intersect(&c), None);
        // Touching intervals have empty interior intersection.
        let d = Segment::new(5.0, 9.0);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn zero_length_segment_is_allowed_and_empty() {
        let s = Segment::new(1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert!(!s.contains(1.0));
        assert!(s.contains_closed(1.0));
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn inverted_segment_rejected() {
        Segment::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_endpoint_rejected() {
        Segment::new(f64::NAN, 1.0);
    }
}
