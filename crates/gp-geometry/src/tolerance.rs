//! Centered tolerance regions.
//!
//! The paper defines the *centered-tolerance* square as "an evenly
//! distributed buffer" of half-width `r` around the original click-point —
//! the region a user most plausibly expects to be accepted.  Centered
//! Discretization accepts exactly this region; Robust Discretization accepts
//! a different (larger, off-center) region, which is what produces false
//! accepts and false rejects.

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A square tolerance region of half-width `r` centered on an original
/// click-point, using the Chebyshev metric (so the region is an axis-aligned
/// square of side `2r`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceSquare {
    /// The original click-point at the center of the region.
    pub center: Point,
    /// Half-width of the square (the guaranteed tolerance `r`).
    pub r: f64,
}

impl ToleranceSquare {
    /// Construct a tolerance square.
    ///
    /// # Panics
    /// Panics if `r` is negative or non-finite.
    pub fn new(center: Point, r: f64) -> Self {
        assert!(r.is_finite() && r >= 0.0, "tolerance must be non-negative");
        Self { center, r }
    }

    /// Whether a login click-point is accepted under centered tolerance,
    /// i.e. its Chebyshev distance from the original point is at most `r`.
    pub fn accepts(&self, login: &Point) -> bool {
        self.center.chebyshev(login) <= self.r
    }

    /// The region as a rectangle (closed square of side `2r`).
    pub fn as_rect(&self) -> Rect {
        Rect::centered_square(self.center, self.r)
    }

    /// Area of the tolerance region (`(2r)^2`).
    pub fn area(&self) -> f64 {
        (2.0 * self.r).powi(2)
    }

    /// The effective pixel width of the tolerance square when `r` encodes a
    /// whole-pixel tolerance: `2*r + 1` pixels (the `+1` is the original
    /// click-point's own pixel, footnote 1/2 of the paper).
    pub fn pixel_width(&self) -> f64 {
        2.0 * self.r + 1.0
    }
}

impl core::fmt::Display for ToleranceSquare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "±{:.2} around {}", self.r, self.center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_within_r_in_both_axes() {
        let t = ToleranceSquare::new(Point::new(100.0, 100.0), 6.0);
        assert!(t.accepts(&Point::new(100.0, 100.0)));
        assert!(t.accepts(&Point::new(106.0, 94.0)));
        assert!(t.accepts(&Point::new(94.0, 106.0)));
        assert!(!t.accepts(&Point::new(107.0, 100.0)));
        assert!(!t.accepts(&Point::new(100.0, 93.0)));
        // Corner case: both axes at exactly r.
        assert!(t.accepts(&Point::new(106.0, 106.0)));
        // Diagonal beyond r in one axis only.
        assert!(!t.accepts(&Point::new(106.5, 100.0)));
    }

    #[test]
    fn zero_tolerance_accepts_only_exact_point() {
        let t = ToleranceSquare::new(Point::new(5.0, 5.0), 0.0);
        assert!(t.accepts(&Point::new(5.0, 5.0)));
        assert!(!t.accepts(&Point::new(5.0, 5.000001)));
    }

    #[test]
    fn rect_and_area() {
        let t = ToleranceSquare::new(Point::new(10.0, 10.0), 4.5);
        let r = t.as_rect();
        assert_eq!(r.width(), 9.0);
        assert_eq!(r.center(), Point::new(10.0, 10.0));
        assert_eq!(t.area(), 81.0);
    }

    #[test]
    fn pixel_width_matches_paper_footnote() {
        // "if the desired tolerance is 9, we need the width of the
        //  grid-square to be (r + 1 + r)" = 19 pixels.
        let t = ToleranceSquare::new(Point::ORIGIN, 9.0);
        assert_eq!(t.pixel_width(), 19.0);
        // r = 6 -> 13x13 (the paper's "13x13 pixel centered-tolerance
        // square" for a guaranteed 6-pixel tolerance).
        let t6 = ToleranceSquare::new(Point::ORIGIN, 6.0);
        assert_eq!(t6.pixel_width(), 13.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        ToleranceSquare::new(Point::ORIGIN, -1.0);
    }
}
