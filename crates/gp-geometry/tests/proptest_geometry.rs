//! Property-based tests for the geometry substrate.

use gp_geometry::{
    GridCell, ImageDims, PixelPoint, Point, Rect, Segment, ToleranceSquare, UniformGrid,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -10_000.0..10_000.0f64
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Chebyshev distance is a metric: symmetric, zero iff equal (on the
    /// sampled domain), and satisfies the triangle inequality.
    #[test]
    fn chebyshev_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.chebyshev(&b) - b.chebyshev(&a)).abs() < 1e-9);
        prop_assert_eq!(a.chebyshev(&a), 0.0);
        prop_assert!(a.chebyshev(&c) <= a.chebyshev(&b) + b.chebyshev(&c) + 1e-9);
    }

    /// Chebyshev <= Euclidean <= Manhattan for any pair of points.
    #[test]
    fn metric_ordering(a in arb_point(), b in arb_point()) {
        let ch = a.chebyshev(&b);
        let eu = a.euclidean(&b);
        let ma = a.manhattan(&b);
        prop_assert!(ch <= eu + 1e-9);
        prop_assert!(eu <= ma + 1e-9);
    }

    /// Every point lies in the rectangle of the grid cell it maps to.
    #[test]
    fn grid_cell_rect_contains_point(
        cell in 0.5..200.0f64,
        ox in -500.0..500.0f64,
        oy in -500.0..500.0f64,
        p in arb_point(),
    ) {
        let grid = UniformGrid::new(cell, ox, oy);
        let c = grid.cell_of(&p);
        let rect = grid.cell_rect(&c);
        prop_assert!(rect.contains(&p), "{p} not in {rect}");
        // And the cell is unique: neighbouring cells do not contain it.
        let right = grid.cell_rect(&GridCell::new(c.ix + 1, c.iy));
        prop_assert!(!right.contains(&p));
    }

    /// The r-safety distance never exceeds half the cell size.
    #[test]
    fn cell_edge_distance_bounded_by_half_cell(
        cell in 0.5..200.0f64,
        ox in -500.0..500.0f64,
        oy in -500.0..500.0f64,
        p in arb_point(),
    ) {
        let grid = UniformGrid::new(cell, ox, oy);
        let d = grid.distance_to_cell_edge(&p);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= cell / 2.0 + 1e-9);
    }

    /// Tolerance-square acceptance agrees with rectangle containment
    /// (closed semantics) of the corresponding centered square.
    #[test]
    fn tolerance_square_matches_rect(center in arb_point(), r in 0.0..100.0f64, login in arb_point()) {
        let t = ToleranceSquare::new(center, r);
        prop_assert_eq!(t.accepts(&login), t.as_rect().contains_closed(&login));
    }

    /// Rectangle intersection area is symmetric and bounded by each operand.
    #[test]
    fn overlap_area_symmetric_and_bounded(
        ax in finite_coord(), ay in finite_coord(), aw in 0.0..500.0f64, ah in 0.0..500.0f64,
        bx in finite_coord(), by in finite_coord(), bw in 0.0..500.0f64, bh in 0.0..500.0f64,
    ) {
        let a = Rect::new(ax, ay, ax + aw, ay + ah);
        let b = Rect::new(bx, by, bx + bw, by + bh);
        let ab = a.overlap_area(&b);
        let ba = b.overlap_area(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab <= a.area() + 1e-6);
        prop_assert!(ab <= b.area() + 1e-6);
    }

    /// Segment intersection is contained in both operands.
    #[test]
    fn segment_intersection_contained(
        s1 in finite_coord(), l1 in 0.0..500.0f64,
        s2 in finite_coord(), l2 in 0.0..500.0f64,
        probe in 0.0..1.0f64,
    ) {
        let a = Segment::new(s1, s1 + l1);
        let b = Segment::new(s2, s2 + l2);
        if let Some(i) = a.intersect(&b) {
            let x = i.start + probe * i.length();
            prop_assert!(a.contains_closed(x));
            prop_assert!(b.contains_closed(x));
        }
    }

    /// Clamped points are always contained in the image.
    #[test]
    fn clamp_point_lands_inside(w in 1u32..2000, h in 1u32..2000, p in arb_point()) {
        let dims = ImageDims::new(w, h);
        prop_assert!(dims.contains_point(&dims.clamp_point(&p)));
    }

    /// Pixel Chebyshev distance equals the continuous Chebyshev distance of
    /// the converted points.
    #[test]
    fn pixel_and_continuous_chebyshev_agree(ax in 0u32..5000, ay in 0u32..5000,
                                            bx in 0u32..5000, by in 0u32..5000) {
        let a = PixelPoint::new(ax, ay);
        let b = PixelPoint::new(bx, by);
        let cont = Point::from(a).chebyshev(&Point::from(b));
        prop_assert_eq!(a.chebyshev(&b) as f64, cont);
    }
}
