//! L1 clean counterpart: the barrier runs first, then the ack is built.
fn settle_enroll_after_barrier(turn: Turn) -> ServerMessage {
    store.group_commit(&turn.records);
    ServerMessage::EnrollOk { user: turn.user }
}
