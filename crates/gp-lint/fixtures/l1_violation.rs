//! L1 fixture: the `EnrollOk` ack is constructed before the durability
//! barrier, so a crash between the two lines could ack a lost enroll.
fn settle_enroll_early_ack(turn: Turn) -> ServerMessage {
    let ack = ServerMessage::EnrollOk { user: turn.user };
    store.group_commit(&turn.records);
    ack
}
