//! L2 clean counterpart: accounts before wal, the canonical order.
fn index_then_append(&self, shard: usize) {
    let mut accounts = self.accounts.write();
    let wal = self.wals[shard].lock();
    wal.append(3);
    accounts.insert(1, 2);
}
