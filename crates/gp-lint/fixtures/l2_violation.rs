//! L2 fixture: the WAL mutex is taken before the accounts RwLock,
//! inverting the canonical `snap -> accounts -> wal` order.
fn append_then_index(&self, shard: usize) {
    let wal = self.wals[shard].lock();
    let mut accounts = self.accounts.write();
    accounts.insert(1, 2);
    wal.append(3);
}
