//! L3 fixture: an `unsafe` block. Flagged anywhere except
//! `gp-netauth/src/sys.rs`; the test lints this file under both paths.
fn read_raw(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
