//! L4 clean counterpart: defensive handling instead of panicking calls.
fn drive_defensively(conn: Option<&mut Conn>) -> bool {
    let Some(conn) = conn else {
        return false;
    };
    conn.ready
}
