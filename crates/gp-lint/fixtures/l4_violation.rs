//! L4 fixture: panicking calls in a hot-path module, one suppressed via
//! the counted allow escape hatch, one inside test code (ignored).
fn drive(conn: Option<&mut Conn>) {
    let conn = conn.unwrap();
    conn.try_flush().expect("flush failed");
    if conn.broken {
        panic!("broken connection");
    }
}

fn checked(v: Option<u32>) -> u32 {
    // gp-lint: allow(L4, fixture-proven escape hatch)
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
