//! L5 clean counterpart: the same graph, but the blocking hop is cut by
//! an allow on the call-site line (the refresh is dispatched off-loop).
// gp-lint: reactor-root
fn run_loop() {
    poll_once();
}

fn poll_once() {
    // gp-lint: allow(L5, snapshot refresh is dispatched to the worker pool)
    refresh_snapshot();
}

fn refresh_snapshot() {
    let _f = File::open("snapshot.bin");
}
