//! L5 fixture: a blocking `File::open` is reachable from the reactor
//! event loop through two call hops.
// gp-lint: reactor-root
fn run_loop() {
    poll_once();
}

fn poll_once() {
    refresh_snapshot();
}

fn refresh_snapshot() {
    let _f = File::open("snapshot.bin");
}
