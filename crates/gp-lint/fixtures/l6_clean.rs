use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn spin_until_ready(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
}

fn issue_sequence(seq: &AtomicU64) -> u64 {
    seq.fetch_add(1, Ordering::AcqRel) + 1
}

fn bump_counter(stats: &AtomicU64) {
    stats.fetch_add(1, Ordering::Relaxed);
}

fn claim_slot(next: &AtomicU64) -> u64 {
    // gp-lint: allow(L6, slot ids need uniqueness only; slots publish via the queue mutex)
    next.fetch_add(1, Ordering::Relaxed)
}
