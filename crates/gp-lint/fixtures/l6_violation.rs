use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn spin_until_ready(flag: &AtomicBool) {
    while !flag.load(Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}

fn issue_sequence(seq: &AtomicU64) -> u64 {
    seq.fetch_add(1, Ordering::Relaxed) + 1
}

fn bump_counter(stats: &AtomicU64) {
    stats.fetch_add(1, Ordering::Relaxed);
}
