use std::sync::{Condvar, Mutex};

struct Queue {
    items: Mutex<Vec<u64>>,
    ready: Condvar,
}

impl Queue {
    fn pop_looped(&self) -> u64 {
        let mut items = self.items.lock().unwrap();
        while items.is_empty() {
            items = self.ready.wait(items).unwrap();
        }
        items.pop().unwrap()
    }

    fn pop_predicate(&self) -> u64 {
        let mut items = self
            .ready
            .wait_while(self.items.lock().unwrap(), |i| i.is_empty())
            .unwrap();
        items.pop().unwrap()
    }

    fn poll_readiness(&self, epoll: &Epoll, events: &mut Events) {
        epoll.wait(&mut events, 10);
    }

    fn coalesce_once(&self) -> Option<u64> {
        let items = self.items.lock().unwrap();
        // gp-lint: allow(L7, bounded coalescing nap; the caller's loop re-polls)
        let (mut items, _) = self.ready.wait_timeout(items, NAP).unwrap();
        items.pop()
    }
}
