use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Queue {
    items: Mutex<Vec<u64>>,
    ready: Condvar,
}

impl Queue {
    fn pop_naked(&self) -> Option<u64> {
        let mut items = self.items.lock().unwrap();
        if items.is_empty() {
            items = self.ready.wait(items).unwrap();
        }
        items.pop()
    }

    fn pop_timed(&self) -> Option<u64> {
        let mut items = self.items.lock().unwrap();
        if items.is_empty() {
            let (guard, _) = self.ready.wait_timeout(items, Duration::from_millis(1)).unwrap();
            items = guard;
        }
        items.pop()
    }
}
