use std::fs;

impl Store {
    fn flush_outside_lock(&self) {
        let bytes = {
            let wal = self.wals[0].lock();
            wal.pending_bytes()
        };
        write_file(&bytes);
    }

    fn barrier(&self) {
        let wal = self.wals[0].lock();
        // gp-lint: allow(L8, group-commit barrier: the wal mutex must cover the fsync)
        wal.file.sync_all().expect("fsync");
    }
}

fn write_file(bytes: &[u8]) {
    fs::write("wal.bin", bytes).expect("wal write");
}
