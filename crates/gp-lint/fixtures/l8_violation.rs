use std::fs;

impl Store {
    fn flush_under_lock(&self) {
        let wal = self.wals[0].lock();
        wal.file.sync_all().expect("fsync");
    }

    fn persist(&self) {
        let accounts = self.shard.accounts.write();
        write_snapshot(&accounts);
    }

    fn notify_under_lock(&self, tx: &Sender<u64>) {
        let guard = self.snap_locks[0].lock();
        tx.send(1).expect("receiver alive");
        drop(guard);
    }
}

fn write_snapshot(accounts: &AccountMap) {
    fs::write("snapshot.json", render(accounts)).expect("snapshot write");
}
