const TAG_PING: u8 = 0x01;
const TAG_PONG: u8 = 0x02;

pub enum ReplicaMessage {
    Ping { seq: u64 },
    Pong { seq: u64 },
}

impl ReplicaMessage {
    fn encode(&self) -> Vec<u8> {
        Vec::new()
    }

    fn decode(tag: u8) -> Option<ReplicaMessage> {
        match tag {
            TAG_PING => Some(ReplicaMessage::Ping { seq: 0 }),
            TAG_PONG => Some(ReplicaMessage::Pong { seq: 0 }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_round_trips() {
        let m = ReplicaMessage::Ping { seq: 7 };
        let decoded = ReplicaMessage::decode(m.encode()[0]);
        assert!(decoded.is_some());
    }

    #[test]
    fn truncated_ping_rejected() {
        let m = ReplicaMessage::Ping { seq: 7 };
        let _ = m.encode();
        assert!(ReplicaMessage::decode(0xff).is_none());
    }
}
