//! Hand-rolled Rust lexer, just enough for the gp-lint rules.
//!
//! Produces a flat token stream with 1-based line numbers. It understands the
//! lexical features that would otherwise corrupt a naive text scan: line and
//! block comments (nested), string literals with escapes, raw strings with
//! arbitrary `#` fencing, byte strings, char literals vs. lifetimes, and
//! numeric literals. Everything else is an identifier or a one-character
//! punctuation token.
//!
//! `// gp-lint:` directives are *not* thrown away with other comments — they
//! are captured as [`Directive`]s so rules can honour allow-comments and root
//! annotations.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Single punctuation character (`{`, `}`, `.`, `(`, ...).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for `Punct` this is the single character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True if this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// A `// gp-lint: ...` comment captured from the source.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Text after the `gp-lint:` marker, trimmed.
    pub body: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream in source order.
    pub tokens: Vec<Token>,
    /// All `// gp-lint:` directives, in source order.
    pub directives: Vec<Directive>,
}

const DIRECTIVE_MARKER: &str = "gp-lint:";

/// Lex `source` into tokens and gp-lint directives.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                capture_directive(source, start, i, line, &mut out.directives);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Nested block comment; track newlines inside it.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let (end, newlines) = scan_raw_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                let end = scan_char_literal(bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                i = end;
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                let (end, newlines) = scan_string(bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Either a char literal or a lifetime. A char literal closes
                // with `'` after one (possibly escaped) character; a lifetime
                // is `'` followed by an identifier with no closing quote.
                if is_char_literal(bytes, i) {
                    let end = scan_char_literal(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_continue(bytes[i]) || bytes[i] == b'.')
                    && !(bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.')
                {
                    // Stop a numeric scan before `..` so range punctuation
                    // survives (`0..n`).
                    if bytes[i] == b'.' && i + 1 < bytes.len() && !bytes[i + 1].is_ascii_digit() {
                        break;
                    }
                    i += 1;
                }
                // Number text is kept (unlike string literals): L9 parses
                // opcode values out of `const TAG_X: u8 = 0x41;`.
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn capture_directive(
    source: &str,
    start: usize,
    end: usize,
    line: u32,
    directives: &mut Vec<Directive>,
) {
    let comment = &source[start..end];
    if let Some(pos) = comment.find(DIRECTIVE_MARKER) {
        directives.push(Directive {
            body: comment[pos + DIRECTIVE_MARKER.len()..].trim().to_string(),
            line,
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Does the text at `i` start a raw (byte) string: `r"`, `r#`, `br"`, `br#`?
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    j < bytes.len() && (bytes[j] == b'"' || bytes[j] == b'#')
}

/// Scan a raw string starting at `i`; returns (index past it, newline count).
fn scan_raw_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // skip 'r'
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return (j, 0); // malformed; treat conservatively
    }
    j += 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

/// Scan a normal string starting at the opening quote at `i`.
fn scan_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Is the quote at `i` the start of a char literal (vs. a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // `'\...'` is always a char literal.
    if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
        return true;
    }
    // `'x'` — one char then a closing quote.
    if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
        return true;
    }
    false
}

/// Scan a char literal starting at the opening quote at `i`.
fn scan_char_literal(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
// unsafe in a comment
/* unsafe /* nested */ still comment */
let s = "unsafe in a string";
let r = r#"unsafe raw "quoted" string"#;
let c = 'u';
fn real() {}
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "ids: {ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
    }

    #[test]
    fn directives_are_captured_with_lines() {
        let src = "fn a() {}\n// gp-lint: allow(L4, infallible by construction)\nfn b() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].line, 2);
        assert!(lexed.directives[0].body.starts_with("allow(L4"));
    }

    #[test]
    fn number_tokens_keep_their_text() {
        let src = "const TAG_HELLO: u8 = 0x41;\nlet n = 10_000u64;\nfor i in 0..7 {}\n";
        let lexed = lex(src);
        let numbers: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(numbers, vec!["0x41", "10_000u64", "0", "7"]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nfn after() {}\n";
        let lexed = lex(src);
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after");
        assert_eq!(f.line, 4);
    }
}
