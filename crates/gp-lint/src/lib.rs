//! `gp-lint` — repo-specific static analysis for the graphical-passwords
//! workspace.
//!
//! The serving stack's correctness rests on invariants that ordinary
//! compilers cannot see: acks may only follow the WAL group-commit barrier,
//! locks are taken in the canonical `snap → accounts → wal` order, `unsafe`
//! lives only in `gp-netauth::sys`, hot-path modules never panic, and the
//! reactor event-loop thread never blocks on the filesystem. This crate
//! machine-checks all five with a hand-rolled lexer and a lightweight
//! per-function model — zero dependencies, so it runs in the same offline
//! environment as the rest of the workspace.
//!
//! Run it over the repo with `cargo run -p gp-lint -- --workspace`, or embed
//! it via [`lint_sources`] (used by the fixture tests).

#![warn(missing_docs)]

pub mod lexer;
pub mod model;
pub mod rules;

pub use rules::{AllowUse, Diagnostic, Report, Rule, ALL_RULES};

/// One in-memory source file to lint.
///
/// The `path` is used verbatim for rule scoping (e.g. L4's hot-path module
/// list matches on path suffixes) and in diagnostics, so virtual paths work —
/// fixture tests pass paths like `crates/gp-netauth/src/reactor.rs` with
/// fixture content.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path used for scoping and diagnostics.
    pub path: String,
    /// Full file content.
    pub content: String,
}

/// Lint a set of source files and return the combined report.
pub fn lint_sources(sources: &[SourceFile]) -> Report {
    let pairs: Vec<(String, String)> = sources
        .iter()
        .map(|s| (s.path.clone(), s.content.clone()))
        .collect();
    let model = model::build(&pairs);
    rules::run(&model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_clean() {
        let report = lint_sources(&[]);
        assert!(report.diagnostics.is_empty());
        assert!(report.allows.is_empty());
    }

    #[test]
    fn allow_directives_are_counted_even_when_nothing_fires() {
        let report = lint_sources(&[SourceFile {
            path: "crates/gp-netauth/src/reactor.rs".into(),
            content: "// gp-lint: allow(L4, documented contract)\nfn quiet() {}\n".into(),
        }]);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.allows.len(), 1);
        assert_eq!(report.allows[0].rule, Rule::L4);
        assert_eq!(report.allows[0].reason, "documented contract");
    }
}
