//! CLI for `gp-lint`.
//!
//! ```text
//! cargo run -p gp-lint -- --workspace [--report PATH]
//! cargo run -p gp-lint -- FILE.rs [FILE.rs ...]
//! ```
//!
//! `--workspace` scans `crates/` and `src/` from the current directory,
//! skipping `vendor/`, `target/`, `fixtures/`, `tests/`, `benches/`, and
//! `examples/`. Exit status is 1 when any rule fires. `--report` writes the
//! full report (diagnostics plus the allow-directive inventory) to a file,
//! which CI uploads as an artifact.

use gp_lint::{lint_sources, Report, SourceFile};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into during a workspace scan.
const SKIP_DIRS: &[&str] = &[
    "vendor", "target", "fixtures", "tests", "benches", "examples", ".git",
];

fn main() -> ExitCode {
    let mut workspace = false;
    let mut report_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("gp-lint: --report requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: gp-lint [--workspace] [--report PATH] [FILE.rs ...]");
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        for root in ["crates", "src"] {
            collect_rs_files(Path::new(root), &mut files);
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("gp-lint: no input files (use --workspace or pass paths)");
        return ExitCode::from(2);
    }

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(content) => sources.push(SourceFile {
                path: path.display().to_string(),
                content,
            }),
            Err(err) => {
                eprintln!("gp-lint: cannot read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = lint_sources(&sources);
    let rendered = render(&report, sources.len());
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, &rendered) {
            eprintln!("gp-lint: cannot write report {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`] components.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Render the report: diagnostics, allow inventory, summary line.
fn render(report: &Report, scanned: usize) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}", d.render());
    }
    if !report.allows.is_empty() {
        let _ = writeln!(out, "allow directives in effect ({}):", report.allows.len());
        for a in &report.allows {
            let _ = writeln!(
                out,
                "  {}:{}: allow({}) — {}",
                a.file,
                a.line,
                a.rule.id(),
                if a.reason.is_empty() {
                    "(no reason)"
                } else {
                    &a.reason
                }
            );
        }
    }
    let _ = writeln!(
        out,
        "gp-lint: {} file(s) scanned, {} violation(s), {} allow directive(s)",
        scanned,
        report.diagnostics.len(),
        report.allows.len()
    );
    out
}
