//! CLI for `gp-lint`.
//!
//! ```text
//! cargo run -p gp-lint -- --workspace [--report PATH] [--json PATH]
//! cargo run -p gp-lint -- FILE.rs [FILE.rs ...]
//! ```
//!
//! `--workspace` scans `crates/` and `src/` from the current directory,
//! skipping `vendor/`, `target/`, `fixtures/`, `tests/`, `benches/`, and
//! `examples/`. Exit status is 1 when any rule fires. `--report` writes the
//! human-readable report (diagnostics plus the allow-directive inventory) to
//! a file; `--json` writes the same data machine-readably (per-rule counts,
//! every diagnostic, the full allow inventory). CI uploads both as
//! artifacts.

use gp_lint::{lint_sources, Report, SourceFile, ALL_RULES};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into during a workspace scan.
const SKIP_DIRS: &[&str] = &[
    "vendor", "target", "fixtures", "tests", "benches", "examples", ".git",
];

fn main() -> ExitCode {
    let mut workspace = false;
    let mut report_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("gp-lint: --report requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("gp-lint: --json requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: gp-lint [--workspace] [--report PATH] [--json PATH] [FILE.rs ...]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        for root in ["crates", "src"] {
            collect_rs_files(Path::new(root), &mut files);
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("gp-lint: no input files (use --workspace or pass paths)");
        return ExitCode::from(2);
    }

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(content) => sources.push(SourceFile {
                path: path.display().to_string(),
                content,
            }),
            Err(err) => {
                eprintln!("gp-lint: cannot read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = lint_sources(&sources);
    let rendered = render(&report, sources.len());
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, &rendered) {
            eprintln!("gp-lint: cannot write report {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = json_path {
        let json = render_json(&report, sources.len());
        if let Err(err) = std::fs::write(&path, &json) {
            eprintln!("gp-lint: cannot write json {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`] components.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Render the report: diagnostics, allow inventory, summary line.
fn render(report: &Report, scanned: usize) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}", d.render());
    }
    if !report.allows.is_empty() {
        let _ = writeln!(out, "allow directives in effect ({}):", report.allows.len());
        for a in &report.allows {
            let _ = writeln!(
                out,
                "  {}:{}: allow({}) — {}",
                a.file,
                a.line,
                a.rule.id(),
                if a.reason.is_empty() {
                    "(no reason)"
                } else {
                    &a.reason
                }
            );
        }
    }
    let _ = writeln!(
        out,
        "gp-lint: {} file(s) scanned, {} violation(s), {} allow directive(s)",
        scanned,
        report.diagnostics.len(),
        report.allows.len()
    );
    out
}

/// Render the report as JSON for CI artifact consumption.
///
/// Hand-rolled (no serde in this workspace): the shape is flat enough that
/// escaping strings is the only subtlety. Per-rule counts cover every rule,
/// including zeros, so dashboards can diff runs without knowing the rule set.
fn render_json(report: &Report, scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {scanned},");
    let _ = writeln!(out, "  \"violations\": {},", report.diagnostics.len());
    let _ = writeln!(out, "  \"allows\": {},", report.allows.len());
    out.push_str("  \"per_rule\": {");
    for (i, rule) in ALL_RULES.into_iter().enumerate() {
        let count = report.diagnostics.iter().filter(|d| d.rule == rule).count();
        let sep = if i + 1 < ALL_RULES.len() { "," } else { "" };
        let _ = write!(out, " \"{}\": {count}{sep}", rule.id());
    }
    out.push_str(" },\n");
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let sep = if i + 1 < report.diagnostics.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}{sep}",
            json_escape(&d.file),
            d.line,
            d.rule.id(),
            json_escape(&d.message)
        );
    }
    if report.diagnostics.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"allow_inventory\": [");
    for (i, a) in report.allows.iter().enumerate() {
        let sep = if i + 1 < report.allows.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\" }}{sep}",
            json_escape(&a.file),
            a.line,
            a.rule.id(),
            json_escape(&a.reason)
        );
    }
    if report.allows.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
