//! Lightweight per-function model built on top of the token stream.
//!
//! For every scanned file this extracts every function with its body token
//! span, every lock-acquisition site (`.lock()` / `.read()` / `.write()`,
//! classified by receiver name into the repo's canonical lock classes), and
//! a name-based call graph. Test code — `#[cfg(test)]` modules and `#[test]`
//! functions — is carried with [`FunctionInfo::is_test`] set: rules L1–L8
//! skip it, while L9 (frame-coverage) reads test bodies to prove round-trip
//! and truncation coverage of replication opcodes.
//!
//! The model is deliberately approximate: calls resolve by bare name and only
//! when that name is defined exactly once across the scanned set, guards are
//! tracked by lexical scope, and receivers classify by substring. That keeps
//! the pass dependency-free and fast while still catching the invariant
//! breaks the rules exist for; the `// gp-lint: allow(...)` escape hatch
//! covers the residue.

use crate::lexer::{self, Directive, Token, TokenKind};
use std::collections::HashMap;

/// Canonical lock classes of the store, in acquisition order.
///
/// The machine-checked invariant is `Snap < Accounts < Wal`: a thread holding
/// a later class may never acquire an earlier (or equal) one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockClass {
    /// Per-shard snapshot serialization lock (`snap_locks`).
    Snap,
    /// Per-shard account map `RwLock` (`accounts`).
    Accounts,
    /// Per-shard WAL mutex (`wals`).
    Wal,
}

impl LockClass {
    /// Canonical rank; edges must go strictly upward.
    pub fn rank(self) -> u8 {
        match self {
            LockClass::Snap => 0,
            LockClass::Accounts => 1,
            LockClass::Wal => 2,
        }
    }

    /// Name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::Snap => "snap",
            LockClass::Accounts => "accounts",
            LockClass::Wal => "wal",
        }
    }
}

/// One `.lock()` / `.read()` / `.write()` site inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Lock class, when the receiver names one of the canonical locks.
    pub class: Option<LockClass>,
    /// Whether the guard is bound by a `let` (held past the statement).
    pub held: bool,
    /// 1-based source line.
    pub line: u32,
    /// Index of the method-name token in the file token stream.
    pub token_index: usize,
    /// Token index at which the guard's lexical scope ends (release point).
    pub release_index: usize,
}

/// One call site (bare-name) inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Index of the callee-name token in the file token stream.
    pub token_index: usize,
}

/// A function with its extracted facts.
#[derive(Debug)]
pub struct FunctionInfo {
    /// Function name as written (no path / receiver qualification).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span `[start, end)` of the body including both braces.
    pub body: (usize, usize),
    /// Acquisition sites in token order.
    pub acquisitions: Vec<Acquisition>,
    /// Call sites in token order.
    pub calls: Vec<CallSite>,
    /// True for `#[test]` functions and anything inside `#[cfg(test)]`
    /// regions. Production-invariant rules skip these; coverage rules
    /// (L9) read them.
    pub is_test: bool,
}

/// Model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path as supplied by the caller (used verbatim in diagnostics).
    pub path: String,
    /// Full token stream.
    pub tokens: Vec<Token>,
    /// `// gp-lint:` directives.
    pub directives: Vec<Directive>,
    /// Every function, test and non-test (see [`FunctionInfo::is_test`]).
    pub functions: Vec<FunctionInfo>,
}

/// Whole-scan model: every file plus the cross-file name registry.
#[derive(Debug)]
pub struct Model {
    /// Per-file models, in input order.
    pub files: Vec<FileModel>,
    /// Function name → number of non-test definitions across the scan.
    pub definition_counts: HashMap<String, usize>,
}

impl Model {
    /// Resolve a callee name to `(file index, function index)` — only when
    /// the name is defined exactly once among non-test functions across the
    /// scanned set (test helpers never absorb production call edges).
    pub fn resolve_unique(&self, name: &str) -> Option<(usize, usize)> {
        if self.definition_counts.get(name).copied() != Some(1) {
            return None;
        }
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                if !f.is_test && f.name == name {
                    return Some((fi, gi));
                }
            }
        }
        None
    }
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "fn", "as", "in", "move", "ref", "mut",
    "pub", "use", "else", "break", "continue", "await", "dyn", "impl", "where", "struct", "enum",
    "union", "trait", "type", "mod", "static", "const", "crate", "super", "unsafe", "Some", "Ok",
    "Err", "None",
];

/// Method names (`.name(...)`) that are overwhelmingly std-library calls
/// (atomics, channels, I/O); excluded from the name-based call graph so a
/// workspace function that happens to share the name (e.g. a free `load`)
/// doesn't absorb every `Atomic*::load` site.
const STD_METHOD_NAMES: &[&str] = &[
    "load", "store", "swap", "flush", "send", "recv", "wait", "join", "clone", "push", "pop",
    "insert", "get", "remove", "drain", "take", "extend", "shutdown", "finish",
];

/// Build the model for a set of `(path, source)` pairs.
pub fn build(sources: &[(String, String)]) -> Model {
    let mut files = Vec::with_capacity(sources.len());
    for (path, source) in sources {
        let lexed = lexer::lex(source);
        let functions = extract_functions(&lexed.tokens);
        files.push(FileModel {
            path: path.clone(),
            tokens: lexed.tokens,
            directives: lexed.directives,
            functions,
        });
    }
    let mut definition_counts: HashMap<String, usize> = HashMap::new();
    for file in &files {
        for f in file.functions.iter().filter(|f| !f.is_test) {
            *definition_counts.entry(f.name.clone()).or_insert(0) += 1;
        }
    }
    Model {
        files,
        definition_counts,
    }
}

fn extract_functions(tokens: &[Token]) -> Vec<FunctionInfo> {
    let mut functions = Vec::new();
    let mut i = 0usize;
    let mut depth: i32 = 0;
    // Brace depths at which a `#[cfg(test)]`-attributed block started; while
    // non-empty, everything is test code.
    let mut test_region: Vec<i32> = Vec::new();
    // A test attribute was seen and has not yet been attached to an item.
    let mut pending_test_attr = false;

    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('#') => {
                // Attribute: `#[...]` or `#![...]`. Scan it whole.
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].is_punct('!') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('[') {
                    let (end, is_test) = scan_attribute(tokens, j);
                    if is_test {
                        pending_test_attr = true;
                    }
                    i = end;
                    continue;
                }
                i += 1;
            }
            TokenKind::Punct('{') => {
                depth += 1;
                if pending_test_attr {
                    // `#[cfg(test)] mod tests { ... }` and friends: the whole
                    // block is test code.
                    test_region.push(depth);
                    pending_test_attr = false;
                }
                i += 1;
            }
            TokenKind::Punct('}') => {
                if test_region.last() == Some(&depth) {
                    test_region.pop();
                }
                depth -= 1;
                i += 1;
            }
            TokenKind::Punct(';') => {
                // `#[cfg(test)] mod tests;` / attributed use items.
                pending_test_attr = false;
                i += 1;
            }
            TokenKind::Ident if t.text == "fn" => {
                let is_test = pending_test_attr || !test_region.is_empty();
                pending_test_attr = false;
                let name = match tokens.get(i + 1) {
                    Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let fn_line = t.line;
                // Find the body `{` (or `;` for bodyless trait fns) at paren
                // depth zero.
                let mut j = i + 2;
                let mut paren: i32 = 0;
                let mut body_start = None;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
                        TokenKind::Punct('{') if paren == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        TokenKind::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(start) = body_start else {
                    i = j + 1;
                    continue;
                };
                let end = matching_brace(tokens, start);
                let (acquisitions, calls) = scan_body(tokens, start, end);
                functions.push(FunctionInfo {
                    name,
                    line: fn_line,
                    body: (start, end),
                    acquisitions,
                    calls,
                    is_test,
                });
                i = end;
            }
            _ => i += 1,
        }
    }
    functions
}

/// Scan `#[...]` starting at the `[`; returns (index past `]`, is-test-attr).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokenKind::Ident => idents.push(tokens[j].text.as_str()),
            _ => {}
        }
        j += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j, is_test)
}

/// Index just past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Names of guards bound by the `let` of the statement containing `idx`.
fn let_bound_names(tokens: &[Token], stmt_start: usize, idx: usize) -> Option<Vec<String>> {
    if !tokens.get(stmt_start)?.is_ident("let") {
        return None;
    }
    let mut names = Vec::new();
    let mut j = stmt_start + 1;
    while j < idx {
        match &tokens[j].kind {
            TokenKind::Punct('=') => return Some(names),
            TokenKind::Ident if tokens[j].text != "mut" => names.push(tokens[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    Some(names)
}

/// Walk a function body collecting acquisitions (with scope-based release
/// points) and call sites.
fn scan_body(tokens: &[Token], start: usize, end: usize) -> (Vec<Acquisition>, Vec<CallSite>) {
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();
    // Held guards: (acquisition index, declaration depth, bound names).
    let mut active: Vec<(usize, i32, Vec<String>)> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = start + 1;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                stmt_start = j + 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                stmt_start = j + 1;
                active.retain(|(ai, d, _)| {
                    if depth < *d {
                        acquisitions[*ai].release_index = j;
                        false
                    } else {
                        true
                    }
                });
            }
            TokenKind::Punct(';') => stmt_start = j + 1,
            TokenKind::Ident if is_acquisition_method(&t.text, tokens, j) => {
                let chain = receiver_chain(tokens, j, stmt_start);
                let class = classify(&t.text, &chain);
                let bound = let_bound_names(tokens, stmt_start, j);
                let held = bound.is_some();
                let idx = acquisitions.len();
                acquisitions.push(Acquisition {
                    class,
                    held,
                    line: t.line,
                    token_index: j,
                    release_index: end,
                });
                if held && class.is_some() {
                    active.push((idx, depth, bound.unwrap_or_default()));
                }
            }
            TokenKind::Ident if t.text == "drop" => {
                // `drop(guard)` releases the named guard early.
                if let (Some(open), Some(name)) = (tokens.get(j + 1), tokens.get(j + 2)) {
                    if open.is_punct('(') && name.kind == TokenKind::Ident {
                        active.retain(|(ai, _, names)| {
                            if names.contains(&name.text) {
                                acquisitions[*ai].release_index = j;
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
            }
            TokenKind::Ident => {
                let is_macro = matches!(tokens.get(j + 1), Some(n) if n.is_punct('!'));
                let is_call = matches!(tokens.get(j + 1), Some(n) if n.is_punct('('));
                let is_method = j > start && tokens[j - 1].is_punct('.');
                let is_std_method = is_method && STD_METHOD_NAMES.contains(&t.text.as_str());
                let is_fn_name =
                    matches!(tokens.get(j.wrapping_sub(1)), Some(p) if p.is_ident("fn"));
                if is_call
                    && !is_macro
                    && !is_std_method
                    && !is_fn_name
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                {
                    calls.push(CallSite {
                        name: t.text.clone(),
                        line: t.line,
                        token_index: j,
                    });
                }
            }
            _ => {}
        }
        j += 1;
    }
    (acquisitions, calls)
}

/// Is the ident at `j` a zero-arg `.lock()` / `.read()` / `.write()` call?
fn is_acquisition_method(name: &str, tokens: &[Token], j: usize) -> bool {
    if !matches!(name, "lock" | "read" | "write") {
        return false;
    }
    let dotted = matches!(tokens.get(j.wrapping_sub(1)), Some(p) if p.is_punct('.'));
    let zero_arg = matches!(tokens.get(j + 1), Some(p) if p.is_punct('('))
        && matches!(tokens.get(j + 2), Some(p) if p.is_punct(')'));
    dotted && j > 0 && zero_arg
}

/// Identifiers in the receiver expression of the method call at `j`.
fn receiver_chain(tokens: &[Token], j: usize, stmt_start: usize) -> Vec<String> {
    let mut chain = Vec::new();
    if j < 2 {
        return chain;
    }
    let mut k = j - 2; // token before the `.`
    loop {
        let t = &tokens[k];
        match &t.kind {
            TokenKind::Ident if t.text == "let" => break,
            TokenKind::Ident => chain.push(t.text.clone()),
            TokenKind::Lifetime | TokenKind::Literal | TokenKind::Number => {}
            TokenKind::Punct(c) => {
                if !matches!(c, '.' | '[' | ']' | '(' | ')' | '&' | '*' | ':' | '?') {
                    break;
                }
            }
        }
        if k == stmt_start || k == 0 {
            break;
        }
        k -= 1;
    }
    chain
}

/// Map a `.lock()`/`.read()`/`.write()` receiver to a canonical lock class.
fn classify(method: &str, chain: &[String]) -> Option<LockClass> {
    let has = |needle: &str| chain.iter().any(|c| c.to_lowercase().contains(needle));
    match method {
        "read" | "write" if has("accounts") => Some(LockClass::Accounts),
        "lock" if has("wal") => Some(LockClass::Wal),
        "lock" if has("snap") => Some(LockClass::Snap),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        build(&[("test.rs".to_string(), src.to_string())])
    }

    #[test]
    fn extracts_functions_and_flags_test_code() {
        let src = r#"
fn real_one() { helper(); }

#[cfg(test)]
mod tests {
    fn test_helper() {}
    #[test]
    fn a_test() { real_one(); }
}

#[test]
fn top_level_test() {}

fn real_two() {}
"#;
        let m = model_of(src);
        let non_test: Vec<_> = m.files[0]
            .functions
            .iter()
            .filter(|f| !f.is_test)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(non_test, vec!["real_one", "real_two"]);
        let test_fns: Vec<_> = m.files[0]
            .functions
            .iter()
            .filter(|f| f.is_test)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(test_fns, vec!["test_helper", "a_test", "top_level_test"]);
        // Test helpers never enter the production name registry.
        assert!(m.resolve_unique("test_helper").is_none());
        assert!(m.resolve_unique("a_test").is_none());
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipped() {}\n";
        let m = model_of(src);
        assert_eq!(m.files[0].functions.len(), 1);
    }

    #[test]
    fn classifies_acquisitions_and_held_state() {
        let src = r#"
fn store_insert(&self) {
    let mut accounts = self.shard.accounts.write();
    self.state.wals[idx].lock().append(1);
}
"#;
        let m = model_of(src);
        let f = &m.files[0].functions[0];
        assert_eq!(f.acquisitions.len(), 2);
        assert_eq!(f.acquisitions[0].class, Some(LockClass::Accounts));
        assert!(f.acquisitions[0].held);
        assert_eq!(f.acquisitions[1].class, Some(LockClass::Wal));
        assert!(!f.acquisitions[1].held);
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = r#"
fn snapshot(&self) {
    let _snap = self.snap_locks[s].lock();
    {
        let accounts = shard.accounts.read();
        use_it(&accounts);
    }
    let wal = self.wals[s].lock();
}
"#;
        let m = model_of(src);
        let f = &m.files[0].functions[0];
        let accounts = &f.acquisitions[1];
        let wal = &f.acquisitions[2];
        assert_eq!(accounts.class, Some(LockClass::Accounts));
        // The read guard is released before the second wal lock.
        assert!(accounts.release_index < wal.token_index);
    }

    #[test]
    fn pending_accounts_mutex_is_not_the_accounts_class() {
        // `PendingAccounts` is a std Mutex whose field happens to be named
        // `accounts`; only `.read()`/`.write()` receivers classify as the
        // accounts RwLock.
        let src = "fn park(&self) { let g = self.pending.accounts.lock(); }";
        let m = model_of(src);
        assert_eq!(m.files[0].functions[0].acquisitions[0].class, None);
    }

    #[test]
    fn unique_name_resolution() {
        let src = "fn once_only() {}\nfn twice() {}\nfn caller() { once_only(); twice(); }\n";
        let src2 = "fn twice() {}\n";
        let m = build(&[
            ("a.rs".to_string(), src.to_string()),
            ("b.rs".to_string(), src2.to_string()),
        ]);
        assert!(m.resolve_unique("once_only").is_some());
        assert!(m.resolve_unique("twice").is_none());
    }
}
