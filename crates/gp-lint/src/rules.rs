//! The five lint rules, evaluated over the [`crate::model::Model`].
//!
//! | rule | invariant |
//! |------|-----------|
//! | L1 | `EnrollOk` may not be constructed/encoded before the group-commit barrier in the same function |
//! | L2 | lock acquisitions must follow the canonical `snap → accounts → wal` order, inter-function |
//! | L3 | `unsafe` is confined to `gp-netauth/src/sys.rs` |
//! | L4 | no `unwrap`/`expect`/`panic!` in non-test hot-path modules |
//! | L5 | no blocking fs / un-timed connect calls reachable from the reactor event loop |
//!
//! Suppression: `// gp-lint: allow(<rule>, <reason>)` on the offending line or
//! the line above. For L5 an allow on a *call site* line also cuts that call
//! edge out of the reachability walk. `// gp-lint: reactor-root` marks the
//! next `fn` in the file as an L5 reachability root.

use crate::lexer::{Token, TokenKind};
use crate::model::{LockClass, Model};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Durability ordering (ack-after-barrier).
    L1,
    /// Lock-order conformance.
    L2,
    /// Unsafe confinement.
    L3,
    /// Panic-freedom of hot-path modules.
    L4,
    /// Non-blocking reactor event loop.
    L5,
}

impl Rule {
    /// Stable id used in diagnostics and allow-comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        match id {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            _ => None,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File path as supplied to the linter.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line: error[Lx]: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: error[{}]: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A parsed `allow(...)` directive (counted and reported, not hidden).
#[derive(Debug, Clone)]
pub struct AllowUse {
    /// File containing the directive.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule being suppressed.
    pub rule: Rule,
    /// The stated reason.
    pub reason: String,
}

/// Full lint output: findings plus the allow-directive inventory.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every `allow(...)` directive seen, sorted by (file, line).
    pub allows: Vec<AllowUse>,
}

/// Hot-path modules subject to L4 (path suffixes within the serving crates).
const HOT_PATH_FILES: &[&str] = &[
    "reactor.rs",
    "server.rs",
    "replication.rs",
    "cluster.rs",
    "wal.rs",
    "shard.rs",
];

/// Function names that form the durability barrier for L1.
const BARRIER_CALLS: &[&str] = &["commit_enrolls", "commit_shards", "group_commit"];

/// Per-file directive state.
struct FileDirectives {
    allows: Vec<AllowUse>,
    root_lines: Vec<u32>,
}

fn parse_directives(model: &Model) -> Vec<FileDirectives> {
    let mut out = Vec::with_capacity(model.files.len());
    for file in &model.files {
        let mut allows = Vec::new();
        let mut root_lines = Vec::new();
        for d in &file.directives {
            if d.body == "reactor-root" {
                root_lines.push(d.line);
            } else if let Some(rest) = d.body.strip_prefix("allow(") {
                if let Some(inner) = rest.strip_suffix(')') {
                    let (id, reason) = match inner.split_once(',') {
                        Some((id, reason)) => (id.trim(), reason.trim()),
                        None => (inner.trim(), ""),
                    };
                    if let Some(rule) = Rule::from_id(id) {
                        allows.push(AllowUse {
                            file: file.path.clone(),
                            line: d.line,
                            rule,
                            reason: reason.to_string(),
                        });
                    }
                }
            }
        }
        out.push(FileDirectives { allows, root_lines });
    }
    out
}

impl FileDirectives {
    /// Is `rule` suppressed at `line` (allow on the same or previous line)?
    fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Run every rule; returns the combined report.
pub fn run(model: &Model) -> Report {
    let directives = parse_directives(model);
    let mut diagnostics = Vec::new();
    check_l1(model, &directives, &mut diagnostics);
    check_l2(model, &directives, &mut diagnostics);
    check_l3(model, &directives, &mut diagnostics);
    check_l4(model, &directives, &mut diagnostics);
    check_l5(model, &directives, &mut diagnostics);
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diagnostics.dedup();
    let mut allows: Vec<AllowUse> = directives.into_iter().flat_map(|d| d.allows).collect();
    allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Report {
        diagnostics,
        allows,
    }
}

/// L1: in gp-netauth, `EnrollOk` construction may not precede the
/// group-commit barrier call within the same function body.
fn check_l1(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !file.path.contains("gp-netauth") {
            continue;
        }
        for f in &file.functions {
            let body = &file.tokens[f.body.0..f.body.1];
            let enroll = body
                .iter()
                .position(|t| t.is_ident("EnrollOk"))
                .map(|i| (i, body[i].line));
            let barrier = body.iter().position(|t| {
                t.kind == TokenKind::Ident && BARRIER_CALLS.contains(&t.text.as_str())
            });
            if let (Some((ei, eline)), Some(bi)) = (enroll, barrier) {
                if ei < bi && !directives[fi].allowed(Rule::L1, eline) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: eline,
                        rule: Rule::L1,
                        message: format!(
                            "`EnrollOk` is constructed before the durability barrier \
                             ({}) in `{}`; acks must not precede the WAL group commit",
                            BARRIER_CALLS.join("/"),
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Per-function transitive lock-class footprints (direct + unique-name calls).
fn transitive_classes(model: &Model) -> Vec<Vec<BTreeSet<LockClass>>> {
    let mut classes: Vec<Vec<BTreeSet<LockClass>>> = model
        .files
        .iter()
        .map(|file| {
            file.functions
                .iter()
                .map(|f| f.acquisitions.iter().filter_map(|a| a.class).collect())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (fi, file) in model.files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                for call in &f.calls {
                    if let Some((cfi, cgi)) = model.resolve_unique(&call.name) {
                        let callee: Vec<LockClass> = classes[cfi][cgi].iter().copied().collect();
                        for c in callee {
                            if classes[fi][gi].insert(c) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    classes
}

/// L2: build the acquisition-order graph and flag edges that do not go
/// strictly up the canonical `snap < accounts < wal` ranking.
fn check_l2(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    let footprints = transitive_classes(model);
    let mut seen: HashSet<(LockClass, LockClass, String, u32)> = HashSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        for f in &file.functions {
            // Merge acquisitions and calls into token order.
            enum Ev<'a> {
                Acq(&'a crate::model::Acquisition),
                Call(&'a crate::model::CallSite),
            }
            let mut events: Vec<(usize, Ev)> = f
                .acquisitions
                .iter()
                .map(|a| (a.token_index, Ev::Acq(a)))
                .chain(f.calls.iter().map(|c| (c.token_index, Ev::Call(c))))
                .collect();
            events.sort_by_key(|(i, _)| *i);
            let mut held: Vec<&crate::model::Acquisition> = Vec::new();
            for (tok, ev) in events {
                held.retain(|h| h.release_index > tok);
                match ev {
                    Ev::Acq(a) => {
                        if let Some(to) = a.class {
                            for h in &held {
                                let from = h.class.unwrap_or(to);
                                if seen.insert((from, to, file.path.clone(), a.line)) {
                                    emit_l2(from, to, file, a.line, &f.name, &directives[fi], out);
                                }
                            }
                        }
                        if a.held && a.class.is_some() {
                            held.push(a);
                        }
                    }
                    Ev::Call(c) => {
                        if held.is_empty() {
                            continue;
                        }
                        if let Some((cfi, cgi)) = model.resolve_unique(&c.name) {
                            for to in footprints[cfi][cgi].iter().copied() {
                                for h in &held {
                                    let from = h.class.unwrap_or(to);
                                    if seen.insert((from, to, file.path.clone(), c.line)) {
                                        emit_l2(
                                            from,
                                            to,
                                            file,
                                            c.line,
                                            &f.name,
                                            &directives[fi],
                                            out,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn emit_l2(
    from: LockClass,
    to: LockClass,
    file: &crate::model::FileModel,
    line: u32,
    func: &str,
    directives: &FileDirectives,
    out: &mut Vec<Diagnostic>,
) {
    if from.rank() >= to.rank() && !directives.allowed(Rule::L2, line) {
        out.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule: Rule::L2,
            message: format!(
                "lock-order inversion in `{}`: `{}` acquired while holding `{}` \
                 (canonical order is snap -> accounts -> wal)",
                func,
                to.name(),
                from.name()
            ),
        });
    }
}

/// L3: `unsafe` tokens outside `gp-netauth/src/sys.rs`.
fn check_l3(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if file.path.ends_with("gp-netauth/src/sys.rs") {
            continue;
        }
        for t in &file.tokens {
            if t.is_ident("unsafe") && !directives[fi].allowed(Rule::L3, t.line) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: t.line,
                    rule: Rule::L3,
                    message: "`unsafe` outside the confined `gp-netauth/src/sys.rs` module"
                        .to_string(),
                });
            }
        }
    }
}

fn is_hot_path(path: &str) -> bool {
    (path.contains("gp-netauth") || path.contains("gp-passwords"))
        && HOT_PATH_FILES
            .iter()
            .any(|f| path.ends_with(&format!("src/{f}")) || path == *f)
}

/// L4: `unwrap`/`expect`/`panic!` in non-test code of hot-path modules.
fn check_l4(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !is_hot_path(&file.path) {
            continue;
        }
        for f in &file.functions {
            let body = &file.tokens[f.body.0..f.body.1];
            for (i, t) in body.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let flagged = match t.text.as_str() {
                    "unwrap" | "expect" => {
                        i > 0
                            && body[i - 1].is_punct('.')
                            && matches!(body.get(i + 1), Some(n) if n.is_punct('('))
                    }
                    "panic" => matches!(body.get(i + 1), Some(n) if n.is_punct('!')),
                    _ => false,
                };
                if flagged && !directives[fi].allowed(Rule::L4, t.line) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: t.line,
                        rule: Rule::L4,
                        message: format!(
                            "`{}` in hot-path function `{}`; return an error or add \
                             `// gp-lint: allow(L4, <why infallible>)`",
                            if t.text == "panic" { "panic!" } else { &t.text },
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Blocking-call patterns for L5, matched against a function body.
fn blocking_sites(body: &[Token]) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |k: usize, ch: char| matches!(body.get(i + k), Some(n) if n.is_punct(ch));
        match t.text.as_str() {
            "connect" if next_is(1, '(') => {
                sites.push((
                    t.line,
                    "`connect` without a timeout blocks the caller".into(),
                ));
            }
            "sync_all" | "sync_data" if next_is(1, '(') => {
                sites.push((t.line, format!("blocking fsync (`{}`)", t.text)));
            }
            "File" if next_is(1, ':') && next_is(2, ':') => {
                if let Some(m) = body.get(i + 3) {
                    if m.is_ident("open") || m.is_ident("create") || m.is_ident("options") {
                        sites.push((t.line, format!("blocking file {} call", m.text)));
                    }
                }
            }
            "OpenOptions" => {
                sites.push((t.line, "blocking file open via `OpenOptions`".into()));
            }
            "fs" if next_is(1, ':') && next_is(2, ':') => {
                sites.push((t.line, "blocking `std::fs` call".into()));
            }
            _ => {}
        }
    }
    sites
}

/// L5: walk the call graph from `reactor-root` functions; flag blocking
/// calls in everything reachable. An `allow(L5, ...)` on a call-site line
/// cuts that edge.
fn check_l5(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    // Roots: nearest fn after each `reactor-root` directive.
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut reachable: HashSet<(usize, usize)> = HashSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        for &root_line in &directives[fi].root_lines {
            let next_fn = file
                .functions
                .iter()
                .enumerate()
                .filter(|(_, f)| f.line > root_line)
                .min_by_key(|(_, f)| f.line)
                .map(|(gi, _)| gi);
            if let Some(gi) = next_fn {
                if reachable.insert((fi, gi)) {
                    queue.push_back((fi, gi));
                }
            }
        }
    }
    // Map (file, fn) for resolution caching.
    let mut resolve_cache: HashMap<String, Option<(usize, usize)>> = HashMap::new();
    while let Some((fi, gi)) = queue.pop_front() {
        let f = &model.files[fi].functions[gi];
        for call in &f.calls {
            if directives[fi].allowed(Rule::L5, call.line) {
                continue; // explicitly reasoned-about edge cut
            }
            let target = resolve_cache
                .entry(call.name.clone())
                .or_insert_with(|| model.resolve_unique(&call.name));
            if let Some(t) = *target {
                if reachable.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }
    for (fi, gi) in reachable {
        let file = &model.files[fi];
        let f = &file.functions[gi];
        for (line, what) in blocking_sites(&file.tokens[f.body.0..f.body.1]) {
            if !directives[fi].allowed(Rule::L5, line) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line,
                    rule: Rule::L5,
                    message: format!(
                        "{} in `{}`, reachable from the reactor event loop",
                        what, f.name
                    ),
                });
            }
        }
    }
}
