//! The nine lint rules, evaluated over the [`crate::model::Model`].
//!
//! | rule | invariant |
//! |------|-----------|
//! | L1 | `EnrollOk` may not be constructed/encoded before the group-commit barrier in the same function |
//! | L2 | lock acquisitions must follow the canonical `snap → accounts → wal` order, inter-function |
//! | L3 | `unsafe` is confined to `gp-netauth/src/sys.rs` |
//! | L4 | no `unwrap`/`expect`/`panic!` in non-test hot-path modules |
//! | L5 | no blocking fs / un-timed connect calls reachable from the reactor event loop |
//! | L6 | no `Ordering::Relaxed` on atomics whose value gates control flow or whose RMW result is consumed |
//! | L7 | no naked condvar `wait`/`wait_timeout` outside a predicate re-check loop |
//! | L8 | no blocking I/O (fs, fsync, connect, channel send/recv) while a canonical lock is held |
//! | L9 | every replication opcode (`TAG_*`) has a round-trip test and a truncation-fuzz test |
//!
//! Suppression: `// gp-lint: allow(<rule>, <reason>)` on the offending line or
//! the line above. For L5 an allow on a *call site* line also cuts that call
//! edge out of the reachability walk. `// gp-lint: reactor-root` marks the
//! next `fn` in the file as an L5 reachability root.

use crate::lexer::{Token, TokenKind};
use crate::model::{LockClass, Model};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Durability ordering (ack-after-barrier).
    L1,
    /// Lock-order conformance.
    L2,
    /// Unsafe confinement.
    L3,
    /// Panic-freedom of hot-path modules.
    L4,
    /// Non-blocking reactor event loop.
    L5,
    /// No load-bearing `Ordering::Relaxed` (control flow or consumed RMW).
    L6,
    /// Condvar waits must sit in a predicate re-check loop.
    L7,
    /// No blocking I/O while holding a canonical lock.
    L8,
    /// Replication opcode test coverage (round-trip + truncation).
    L9,
}

/// Every rule, in id order (drives per-rule counters in reports).
pub const ALL_RULES: [Rule; 9] = [
    Rule::L1,
    Rule::L2,
    Rule::L3,
    Rule::L4,
    Rule::L5,
    Rule::L6,
    Rule::L7,
    Rule::L8,
    Rule::L9,
];

impl Rule {
    /// Stable id used in diagnostics and allow-comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
            Rule::L9 => "L9",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File path as supplied to the linter.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line: error[Lx]: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: error[{}]: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A parsed `allow(...)` directive (counted and reported, not hidden).
#[derive(Debug, Clone)]
pub struct AllowUse {
    /// File containing the directive.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule being suppressed.
    pub rule: Rule,
    /// The stated reason.
    pub reason: String,
}

/// Full lint output: findings plus the allow-directive inventory.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every `allow(...)` directive seen, sorted by (file, line).
    pub allows: Vec<AllowUse>,
}

/// Hot-path modules subject to L4 (path suffixes within the serving crates).
const HOT_PATH_FILES: &[&str] = &[
    "reactor.rs",
    "server.rs",
    "replication.rs",
    "cluster.rs",
    "wal.rs",
    "shard.rs",
];

/// Function names that form the durability barrier for L1.
const BARRIER_CALLS: &[&str] = &["commit_enrolls", "commit_shards", "group_commit"];

/// Per-file directive state.
struct FileDirectives {
    allows: Vec<AllowUse>,
    root_lines: Vec<u32>,
}

fn parse_directives(model: &Model) -> Vec<FileDirectives> {
    let mut out = Vec::with_capacity(model.files.len());
    for file in &model.files {
        let mut allows = Vec::new();
        let mut root_lines = Vec::new();
        for d in &file.directives {
            if d.body == "reactor-root" {
                root_lines.push(d.line);
            } else if let Some(rest) = d.body.strip_prefix("allow(") {
                if let Some(inner) = rest.strip_suffix(')') {
                    let (id, reason) = match inner.split_once(',') {
                        Some((id, reason)) => (id.trim(), reason.trim()),
                        None => (inner.trim(), ""),
                    };
                    if let Some(rule) = Rule::from_id(id) {
                        allows.push(AllowUse {
                            file: file.path.clone(),
                            line: d.line,
                            rule,
                            reason: reason.to_string(),
                        });
                    }
                }
            }
        }
        out.push(FileDirectives { allows, root_lines });
    }
    out
}

impl FileDirectives {
    /// Is `rule` suppressed at `line` (allow on the same or previous line)?
    fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Run every rule; returns the combined report.
pub fn run(model: &Model) -> Report {
    let directives = parse_directives(model);
    let mut diagnostics = Vec::new();
    check_l1(model, &directives, &mut diagnostics);
    check_l2(model, &directives, &mut diagnostics);
    check_l3(model, &directives, &mut diagnostics);
    check_l4(model, &directives, &mut diagnostics);
    check_l5(model, &directives, &mut diagnostics);
    check_l6(model, &directives, &mut diagnostics);
    check_l7(model, &directives, &mut diagnostics);
    check_l8(model, &directives, &mut diagnostics);
    check_l9(model, &directives, &mut diagnostics);
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diagnostics.dedup();
    let mut allows: Vec<AllowUse> = directives.into_iter().flat_map(|d| d.allows).collect();
    allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Report {
        diagnostics,
        allows,
    }
}

/// L1: in gp-netauth, `EnrollOk` construction may not precede the
/// group-commit barrier call within the same function body.
fn check_l1(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !file.path.contains("gp-netauth") {
            continue;
        }
        for f in file.functions.iter().filter(|f| !f.is_test) {
            let body = &file.tokens[f.body.0..f.body.1];
            let enroll = body
                .iter()
                .position(|t| t.is_ident("EnrollOk"))
                .map(|i| (i, body[i].line));
            let barrier = body.iter().position(|t| {
                t.kind == TokenKind::Ident && BARRIER_CALLS.contains(&t.text.as_str())
            });
            if let (Some((ei, eline)), Some(bi)) = (enroll, barrier) {
                if ei < bi && !directives[fi].allowed(Rule::L1, eline) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: eline,
                        rule: Rule::L1,
                        message: format!(
                            "`EnrollOk` is constructed before the durability barrier \
                             ({}) in `{}`; acks must not precede the WAL group commit",
                            BARRIER_CALLS.join("/"),
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Per-function transitive lock-class footprints (direct + unique-name calls).
fn transitive_classes(model: &Model) -> Vec<Vec<BTreeSet<LockClass>>> {
    let mut classes: Vec<Vec<BTreeSet<LockClass>>> = model
        .files
        .iter()
        .map(|file| {
            file.functions
                .iter()
                .map(|f| f.acquisitions.iter().filter_map(|a| a.class).collect())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (fi, file) in model.files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                for call in &f.calls {
                    if let Some((cfi, cgi)) = model.resolve_unique(&call.name) {
                        let callee: Vec<LockClass> = classes[cfi][cgi].iter().copied().collect();
                        for c in callee {
                            if classes[fi][gi].insert(c) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    classes
}

/// L2: build the acquisition-order graph and flag edges that do not go
/// strictly up the canonical `snap < accounts < wal` ranking.
fn check_l2(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    let footprints = transitive_classes(model);
    let mut seen: HashSet<(LockClass, LockClass, String, u32)> = HashSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        for f in file.functions.iter().filter(|f| !f.is_test) {
            // Merge acquisitions and calls into token order.
            enum Ev<'a> {
                Acq(&'a crate::model::Acquisition),
                Call(&'a crate::model::CallSite),
            }
            let mut events: Vec<(usize, Ev)> = f
                .acquisitions
                .iter()
                .map(|a| (a.token_index, Ev::Acq(a)))
                .chain(f.calls.iter().map(|c| (c.token_index, Ev::Call(c))))
                .collect();
            events.sort_by_key(|(i, _)| *i);
            let mut held: Vec<&crate::model::Acquisition> = Vec::new();
            for (tok, ev) in events {
                held.retain(|h| h.release_index > tok);
                match ev {
                    Ev::Acq(a) => {
                        if let Some(to) = a.class {
                            for h in &held {
                                let from = h.class.unwrap_or(to);
                                if seen.insert((from, to, file.path.clone(), a.line)) {
                                    emit_l2(from, to, file, a.line, &f.name, &directives[fi], out);
                                }
                            }
                        }
                        if a.held && a.class.is_some() {
                            held.push(a);
                        }
                    }
                    Ev::Call(c) => {
                        if held.is_empty() {
                            continue;
                        }
                        if let Some((cfi, cgi)) = model.resolve_unique(&c.name) {
                            for to in footprints[cfi][cgi].iter().copied() {
                                for h in &held {
                                    let from = h.class.unwrap_or(to);
                                    if seen.insert((from, to, file.path.clone(), c.line)) {
                                        emit_l2(
                                            from,
                                            to,
                                            file,
                                            c.line,
                                            &f.name,
                                            &directives[fi],
                                            out,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn emit_l2(
    from: LockClass,
    to: LockClass,
    file: &crate::model::FileModel,
    line: u32,
    func: &str,
    directives: &FileDirectives,
    out: &mut Vec<Diagnostic>,
) {
    if from.rank() >= to.rank() && !directives.allowed(Rule::L2, line) {
        out.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule: Rule::L2,
            message: format!(
                "lock-order inversion in `{}`: `{}` acquired while holding `{}` \
                 (canonical order is snap -> accounts -> wal)",
                func,
                to.name(),
                from.name()
            ),
        });
    }
}

/// L3: `unsafe` tokens outside `gp-netauth/src/sys.rs`.
fn check_l3(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if file.path.ends_with("gp-netauth/src/sys.rs") {
            continue;
        }
        for t in &file.tokens {
            if t.is_ident("unsafe") && !directives[fi].allowed(Rule::L3, t.line) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: t.line,
                    rule: Rule::L3,
                    message: "`unsafe` outside the confined `gp-netauth/src/sys.rs` module"
                        .to_string(),
                });
            }
        }
    }
}

fn is_hot_path(path: &str) -> bool {
    (path.contains("gp-netauth") || path.contains("gp-passwords"))
        && HOT_PATH_FILES
            .iter()
            .any(|f| path.ends_with(&format!("src/{f}")) || path == *f)
}

/// L4: `unwrap`/`expect`/`panic!` in non-test code of hot-path modules.
fn check_l4(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !is_hot_path(&file.path) {
            continue;
        }
        for f in file.functions.iter().filter(|f| !f.is_test) {
            let body = &file.tokens[f.body.0..f.body.1];
            for (i, t) in body.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let flagged = match t.text.as_str() {
                    "unwrap" | "expect" => {
                        i > 0
                            && body[i - 1].is_punct('.')
                            && matches!(body.get(i + 1), Some(n) if n.is_punct('('))
                    }
                    "panic" => matches!(body.get(i + 1), Some(n) if n.is_punct('!')),
                    _ => false,
                };
                if flagged && !directives[fi].allowed(Rule::L4, t.line) {
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: t.line,
                        rule: Rule::L4,
                        message: format!(
                            "`{}` in hot-path function `{}`; return an error or add \
                             `// gp-lint: allow(L4, <why infallible>)`",
                            if t.text == "panic" { "panic!" } else { &t.text },
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Blocking-call patterns for L5/L8, matched against a function body.
/// Returns `(index into the slice, line, description)` per site. With
/// `channels` set, blocking channel `.send(` / `.recv(` calls are included
/// (L8 cares — a parked reactor under a lock convoys everyone; L5's
/// reactor thread only uses non-blocking queues so it stays scoped to
/// fs/connect).
fn blocking_sites(body: &[Token], channels: bool) -> Vec<(usize, u32, String)> {
    let mut sites = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |k: usize, ch: char| matches!(body.get(i + k), Some(n) if n.is_punct(ch));
        let prev_is_dot = i > 0 && body[i - 1].is_punct('.');
        match t.text.as_str() {
            "connect" if next_is(1, '(') => {
                sites.push((
                    i,
                    t.line,
                    "`connect` without a timeout blocks the caller".into(),
                ));
            }
            "sync_all" | "sync_data" if next_is(1, '(') => {
                sites.push((i, t.line, format!("blocking fsync (`{}`)", t.text)));
            }
            "File" if next_is(1, ':') && next_is(2, ':') => {
                if let Some(m) = body.get(i + 3) {
                    if m.is_ident("open") || m.is_ident("create") || m.is_ident("options") {
                        sites.push((i, t.line, format!("blocking file {} call", m.text)));
                    }
                }
            }
            "OpenOptions" => {
                sites.push((i, t.line, "blocking file open via `OpenOptions`".into()));
            }
            "fs" if next_is(1, ':') && next_is(2, ':') => {
                sites.push((i, t.line, "blocking `std::fs` call".into()));
            }
            "send" | "recv" if channels && prev_is_dot && next_is(1, '(') => {
                sites.push((i, t.line, format!("blocking channel `.{}()`", t.text)));
            }
            _ => {}
        }
    }
    sites
}

/// L5: walk the call graph from `reactor-root` functions; flag blocking
/// calls in everything reachable. An `allow(L5, ...)` on a call-site line
/// cuts that edge.
fn check_l5(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    // Roots: nearest fn after each `reactor-root` directive.
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut reachable: HashSet<(usize, usize)> = HashSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        for &root_line in &directives[fi].root_lines {
            let next_fn = file
                .functions
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.is_test && f.line > root_line)
                .min_by_key(|(_, f)| f.line)
                .map(|(gi, _)| gi);
            if let Some(gi) = next_fn {
                if reachable.insert((fi, gi)) {
                    queue.push_back((fi, gi));
                }
            }
        }
    }
    // Map (file, fn) for resolution caching.
    let mut resolve_cache: HashMap<String, Option<(usize, usize)>> = HashMap::new();
    while let Some((fi, gi)) = queue.pop_front() {
        let f = &model.files[fi].functions[gi];
        for call in &f.calls {
            if directives[fi].allowed(Rule::L5, call.line) {
                continue; // explicitly reasoned-about edge cut
            }
            let target = resolve_cache
                .entry(call.name.clone())
                .or_insert_with(|| model.resolve_unique(&call.name));
            if let Some(t) = *target {
                if reachable.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }
    for (fi, gi) in reachable {
        let file = &model.files[fi];
        let f = &file.functions[gi];
        for (_, line, what) in blocking_sites(&file.tokens[f.body.0..f.body.1], false) {
            if !directives[fi].allowed(Rule::L5, line) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line,
                    rule: Rule::L5,
                    message: format!(
                        "{} in `{}`, reachable from the reactor event loop",
                        what, f.name
                    ),
                });
            }
        }
    }
}

/// `if`/`while` condition spans `(keyword index, terminator index)` within a
/// body token range. The `{` (or, defensively, `;`) at bracket depth 0 ends
/// the condition — Rust forbids bare struct literals there, so a depth-0
/// brace is the loop/branch body.
fn condition_spans(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for j in start..end {
        let t = &tokens[j];
        if !(t.is_ident("if") || t.is_ident("while")) {
            continue;
        }
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < end {
            match tokens[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') | TokenKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        spans.push((j, k));
    }
    spans
}

/// Atomic read-modify-write method names whose memory ordering becomes
/// load-bearing the moment the returned value is used.
fn is_rmw_name(name: &str) -> bool {
    name.starts_with("fetch_") || name == "swap" || name.starts_with("compare_exchange")
}

/// Index of the `)` matching the `(` at `open` (or the end of the stream).
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Start of the statement containing `idx`: the token after the nearest
/// preceding `;`, `{`, or `}`.
fn stmt_start_index(tokens: &[Token], lo: usize, idx: usize) -> usize {
    let mut j = idx;
    while j > lo {
        if matches!(
            tokens[j - 1].kind,
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
        ) {
            return j;
        }
        j -= 1;
    }
    j
}

/// Is the result of the RMW at method-ident `m` (arguments closing at
/// `close`) consumed — bound by a non-`_` `let`, or used inside a larger
/// expression (anything but `;` right after the call)?
fn rmw_result_consumed(tokens: &[Token], body_start: usize, m: usize, close: usize) -> bool {
    let stmt = stmt_start_index(tokens, body_start, m);
    if tokens[stmt].is_ident("let") {
        // `let _ = x.fetch_add(..)` is an explicit discard.
        return !matches!(tokens.get(stmt + 1), Some(t) if t.is_ident("_"));
    }
    !matches!(tokens.get(close + 1), Some(t) if t.is_punct(';'))
}

/// L6: `Ordering::Relaxed` where the ordering is load-bearing — the loaded
/// value gates an `if`/`while`, or an RMW's result is consumed. A Relaxed
/// stat counter (`stats.fetch_add(1, Relaxed);`, result discarded) stays
/// legal: nothing downstream depends on its ordering.
fn check_l6(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        for f in file.functions.iter().filter(|f| !f.is_test) {
            let (start, end) = f.body;
            let conds = condition_spans(&file.tokens, start, end);
            // RMW argument spans with a consumption verdict each.
            let mut rmws: Vec<(usize, usize, bool, String)> = Vec::new();
            for m in start..end {
                let t = &file.tokens[m];
                if t.kind == TokenKind::Ident
                    && is_rmw_name(&t.text)
                    && m > 0
                    && file.tokens[m - 1].is_punct('.')
                    && matches!(file.tokens.get(m + 1), Some(n) if n.is_punct('('))
                {
                    let close = matching_paren(&file.tokens, m + 1);
                    let consumed = rmw_result_consumed(&file.tokens, start, m, close);
                    rmws.push((m, close, consumed, t.text.clone()));
                }
            }
            for j in start..end {
                let t = &file.tokens[j];
                if !t.is_ident("Relaxed") || directives[fi].allowed(Rule::L6, t.line) {
                    continue;
                }
                let in_cond = conds.iter().any(|&(a, b)| j > a && j < b);
                let rmw = rmws
                    .iter()
                    .find(|(m, c, consumed, _)| j > *m && j < *c && *consumed);
                let message = if in_cond {
                    format!(
                        "`Ordering::Relaxed` load gates control flow in `{}`; a Relaxed read \
                         carries no happens-before edge — use Acquire, or add \
                         `// gp-lint: allow(L6, <why the race is benign>)`",
                        f.name
                    )
                } else if let Some((_, _, _, name)) = rmw {
                    format!(
                        "`{}` with `Ordering::Relaxed` has its result consumed in `{}`; the RMW \
                         orders nothing for observers of that value — use AcqRel (or \
                         Acquire/Release), or add `// gp-lint: allow(L6, <why>)`",
                        name, f.name
                    )
                } else {
                    continue;
                };
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: t.line,
                    rule: Rule::L6,
                    message,
                });
            }
        }
    }
}

/// L7: a condvar `.wait(guard)` / `.wait_timeout(guard, d)` must sit inside
/// a `loop`/`while`/`for` in its function — spurious wakeups make a single
/// un-rechecked wait incorrect. `wait_while`/`wait_timeout_while` loop
/// internally and always pass. The first-argument-must-be-an-identifier
/// gate keeps non-condvar waits (`epoll.wait(&mut events, ...)`,
/// `child.wait()`) out of scope.
fn check_l7(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        for f in file.functions.iter().filter(|f| !f.is_test) {
            let (start, end) = f.body;
            let mut loop_stack: Vec<bool> = Vec::new();
            let mut pending_loop = false;
            for j in start..end {
                let t = &file.tokens[j];
                match &t.kind {
                    TokenKind::Punct('{') => {
                        loop_stack.push(pending_loop);
                        pending_loop = false;
                    }
                    TokenKind::Punct('}') => {
                        loop_stack.pop();
                    }
                    TokenKind::Ident if matches!(t.text.as_str(), "loop" | "while" | "for") => {
                        pending_loop = true;
                    }
                    TokenKind::Ident if matches!(t.text.as_str(), "wait" | "wait_timeout") => {
                        let dotted = j > start && file.tokens[j - 1].is_punct('.');
                        let guard_arg = matches!(file.tokens.get(j + 1), Some(n) if n.is_punct('('))
                            && matches!(
                                file.tokens.get(j + 2),
                                Some(n) if n.kind == TokenKind::Ident
                            );
                        if dotted
                            && guard_arg
                            && !loop_stack.iter().any(|&in_loop| in_loop)
                            && !directives[fi].allowed(Rule::L7, t.line)
                        {
                            out.push(Diagnostic {
                                file: file.path.clone(),
                                line: t.line,
                                rule: Rule::L7,
                                message: format!(
                                    "condvar `.{}()` outside a predicate re-check loop in `{}`; \
                                     spurious wakeups make a single wait incorrect — re-check in \
                                     a loop, use `wait_while`/`wait_timeout_while`, or add \
                                     `// gp-lint: allow(L7, <why one check suffices>)`",
                                    t.text, f.name
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Which functions transitively perform blocking I/O (fs, fsync, connect,
/// channel send/recv)? Fixpoint over the unique-name call graph, seeded
/// from direct blocking sites.
fn transitive_blocking(model: &Model) -> Vec<Vec<bool>> {
    let mut blocks: Vec<Vec<bool>> = model
        .files
        .iter()
        .map(|file| {
            file.functions
                .iter()
                .map(|f| {
                    !f.is_test && !blocking_sites(&file.tokens[f.body.0..f.body.1], true).is_empty()
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (fi, file) in model.files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                if f.is_test || blocks[fi][gi] {
                    continue;
                }
                for call in &f.calls {
                    if let Some((cfi, cgi)) = model.resolve_unique(&call.name) {
                        if blocks[cfi][cgi] {
                            blocks[fi][gi] = true;
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    blocks
}

/// L8: blocking I/O while a canonical lock guard (`snap`/`accounts`/`wal`)
/// is held — directly inside the critical section, or via a call to a
/// transitively-blocking function. WAL-barrier writes that are *by design*
/// under the wal mutex carry reasoned `allow(L8, ...)` comments, which the
/// allow inventory keeps honest.
fn check_l8(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    let blocks = transitive_blocking(model);
    let mut seen: HashSet<(String, u32, LockClass)> = HashSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        for f in file.functions.iter().filter(|f| !f.is_test) {
            let held: Vec<_> = f
                .acquisitions
                .iter()
                .filter(|a| a.held && a.class.is_some())
                .collect();
            if held.is_empty() {
                continue;
            }
            let direct: Vec<(usize, u32, String)> =
                blocking_sites(&file.tokens[f.body.0..f.body.1], true)
                    .into_iter()
                    .map(|(i, line, what)| (i + f.body.0, line, what))
                    .collect();
            for a in &held {
                let class = a.class.expect("held filter keeps classed guards only");
                let span = a.token_index..a.release_index;
                for (tok, line, what) in &direct {
                    if span.contains(tok)
                        && seen.insert((file.path.clone(), *line, class))
                        && !directives[fi].allowed(Rule::L8, *line)
                    {
                        out.push(Diagnostic {
                            file: file.path.clone(),
                            line: *line,
                            rule: Rule::L8,
                            message: format!(
                                "{} while holding the `{}` lock in `{}`; move the I/O outside \
                                 the critical section or add \
                                 `// gp-lint: allow(L8, <why the section must block>)`",
                                what,
                                class.name(),
                                f.name
                            ),
                        });
                    }
                }
                for call in &f.calls {
                    if !span.contains(&call.token_index) {
                        continue;
                    }
                    if let Some((cfi, cgi)) = model.resolve_unique(&call.name) {
                        if blocks[cfi][cgi]
                            && seen.insert((file.path.clone(), call.line, class))
                            && !directives[fi].allowed(Rule::L8, call.line)
                        {
                            out.push(Diagnostic {
                                file: file.path.clone(),
                                line: call.line,
                                rule: Rule::L8,
                                message: format!(
                                    "call to `{}` (transitively blocks on fs/fsync/connect/\
                                     channel I/O) while holding the `{}` lock in `{}`; hoist it \
                                     out of the critical section or add \
                                     `// gp-lint: allow(L8, <why the section must block>)`",
                                    call.name,
                                    class.name(),
                                    f.name
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Parse a `u8` literal in decimal or `0x` hex form (underscores stripped).
fn parse_u8_literal(text: &str) -> Option<u8> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// L9: every replication wire opcode (`const TAG_*`) must be exercised by a
/// same-file round-trip test (mentions the decoded variant plus `encode` and
/// `decode`) and a truncation-fuzz test (mentions the variant from a test
/// whose name or body references truncation/fuzzing). Coverage follows
/// helper indirection: a test calling a `messages()`-style constructor
/// helper inherits everything the helper mentions.
fn check_l9(model: &Model, directives: &[FileDirectives], out: &mut Vec<Diagnostic>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !file.path.contains("replication") {
            continue;
        }
        let toks = &file.tokens;
        // Opcode consts: `const TAG_X: u8 = 0xNN;`.
        let mut opcodes: Vec<(String, Option<u8>, u32)> = Vec::new();
        for j in 0..toks.len() {
            if !toks[j].is_ident("const") {
                continue;
            }
            let Some(name_tok) = toks.get(j + 1) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident || !name_tok.text.starts_with("TAG_") {
                continue;
            }
            let mut value = None;
            let mut k = j + 2;
            while k < toks.len() && !toks[k].is_punct(';') {
                if toks[k].kind == TokenKind::Number {
                    value = parse_u8_literal(&toks[k].text);
                }
                k += 1;
            }
            opcodes.push((name_tok.text.clone(), value, name_tok.line));
        }
        if opcodes.is_empty() {
            continue;
        }
        // Decoder-arm map: `TAG_X => ... ReplicaMessage::Variant`.
        let mut variant_of: HashMap<String, String> = HashMap::new();
        for j in 0..toks.len() {
            if toks[j].kind != TokenKind::Ident || !toks[j].text.starts_with("TAG_") {
                continue;
            }
            let is_arm = matches!(toks.get(j + 1), Some(n) if n.is_punct('='))
                && matches!(toks.get(j + 2), Some(n) if n.is_punct('>'));
            if !is_arm {
                continue;
            }
            let limit = (j + 200).min(toks.len());
            let mut k = j + 3;
            while k < limit {
                let t = &toks[k];
                if t.kind == TokenKind::Ident && t.text.starts_with("TAG_") {
                    break; // ran into the next match arm
                }
                if t.is_ident("ReplicaMessage")
                    && matches!(toks.get(k + 1), Some(n) if n.is_punct(':'))
                    && matches!(toks.get(k + 2), Some(n) if n.is_punct(':'))
                {
                    if let Some(v) = toks.get(k + 3) {
                        if v.kind == TokenKind::Ident {
                            variant_of
                                .entry(toks[j].text.clone())
                                .or_insert_with(|| v.text.clone());
                            break;
                        }
                    }
                }
                k += 1;
            }
        }
        // Same-file test functions with their ident mentions, closed over
        // helper calls.
        let tests: Vec<&crate::model::FunctionInfo> =
            file.functions.iter().filter(|f| f.is_test).collect();
        let mut mentions: Vec<HashSet<String>> = tests
            .iter()
            .map(|f| {
                toks[f.body.0..f.body.1]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for a in 0..tests.len() {
                for b in 0..tests.len() {
                    if a == b || !mentions[a].contains(&tests[b].name) {
                        continue;
                    }
                    let extra: Vec<String> =
                        mentions[b].difference(&mentions[a]).cloned().collect();
                    if !extra.is_empty() {
                        mentions[a].extend(extra);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let is_fuzzy = |idx: usize| {
            tests[idx].name.contains("truncat")
                || tests[idx].name.contains("fuzz")
                || mentions[idx]
                    .iter()
                    .any(|m| m.contains("truncat") || m.contains("fuzz"))
        };
        for (name, value, line) in &opcodes {
            let Some(variant) = variant_of.get(name) else {
                // No decode arm constructs a variant for this tag; the
                // unknown-tag rejection path covers it.
                continue;
            };
            let round_trip = (0..tests.len()).any(|i| {
                mentions[i].contains(variant)
                    && mentions[i].contains("encode")
                    && mentions[i].contains("decode")
            });
            let truncation = (0..tests.len()).any(|i| mentions[i].contains(variant) && is_fuzzy(i));
            let mut missing = Vec::new();
            if !round_trip {
                missing.push("an encode/decode round-trip test");
            }
            if !truncation {
                missing.push("a truncation-fuzz test");
            }
            if missing.is_empty() || directives[fi].allowed(Rule::L9, *line) {
                continue;
            }
            let shown = value
                .map(|v| format!("{v:#04x}"))
                .unwrap_or_else(|| "?".into());
            out.push(Diagnostic {
                file: file.path.clone(),
                line: *line,
                rule: Rule::L9,
                message: format!(
                    "replication opcode `{}` ({}, `ReplicaMessage::{}`) lacks {}; every wire \
                     frame needs same-file round-trip and truncation coverage",
                    name,
                    shown,
                    variant,
                    missing.join(" and ")
                ),
            });
        }
    }
}
