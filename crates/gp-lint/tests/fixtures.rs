//! Fixture tests: each rule L1–L9 is proven live against a seeded-violation
//! fixture (exact file, line, and rule asserted) and proven quiet against a
//! clean counterpart. Fixtures live in `fixtures/` and are linted under
//! virtual hot-path paths, exactly as the CLI would see the real modules.

use gp_lint::{lint_sources, Rule, SourceFile};

fn file(path: &str, content: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        content: content.to_string(),
    }
}

const L1_VIOLATION: &str = include_str!("../fixtures/l1_violation.rs");
const L1_CLEAN: &str = include_str!("../fixtures/l1_clean.rs");
const L2_VIOLATION: &str = include_str!("../fixtures/l2_violation.rs");
const L2_CLEAN: &str = include_str!("../fixtures/l2_clean.rs");
const L3_UNSAFE: &str = include_str!("../fixtures/l3_unsafe.rs");
const L4_VIOLATION: &str = include_str!("../fixtures/l4_violation.rs");
const L4_CLEAN: &str = include_str!("../fixtures/l4_clean.rs");
const L5_VIOLATION: &str = include_str!("../fixtures/l5_violation.rs");
const L5_CLEAN: &str = include_str!("../fixtures/l5_clean.rs");
const L6_VIOLATION: &str = include_str!("../fixtures/l6_violation.rs");
const L6_CLEAN: &str = include_str!("../fixtures/l6_clean.rs");
const L7_VIOLATION: &str = include_str!("../fixtures/l7_violation.rs");
const L7_CLEAN: &str = include_str!("../fixtures/l7_clean.rs");
const L8_VIOLATION: &str = include_str!("../fixtures/l8_violation.rs");
const L8_CLEAN: &str = include_str!("../fixtures/l8_clean.rs");
const L9_VIOLATION: &str = include_str!("../fixtures/l9_violation.rs");
const L9_CLEAN: &str = include_str!("../fixtures/l9_clean.rs");

#[test]
fn l1_fires_on_ack_before_barrier() {
    let report = lint_sources(&[file("crates/gp-netauth/src/handlers.rs", L1_VIOLATION)]);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, Rule::L1);
    assert_eq!(d.file, "crates/gp-netauth/src/handlers.rs");
    assert_eq!(d.line, 4);
    assert!(d.message.contains("EnrollOk"), "{}", d.message);
    assert_eq!(
        d.render(),
        format!(
            "crates/gp-netauth/src/handlers.rs:4: error[L1]: {}",
            d.message
        )
    );
}

#[test]
fn l1_is_quiet_when_barrier_precedes_ack() {
    let report = lint_sources(&[file("crates/gp-netauth/src/handlers.rs", L1_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l1_is_scoped_to_gp_netauth() {
    // The same early-ack pattern outside gp-netauth is not L1's business.
    let report = lint_sources(&[file("crates/gp-bench/src/driver.rs", L1_VIOLATION)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l2_fires_on_wal_before_accounts() {
    let report = lint_sources(&[file("crates/gp-passwords/src/store.rs", L2_VIOLATION)]);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, Rule::L2);
    assert_eq!(d.line, 5, "flags the out-of-order `.write()` line");
    assert!(
        d.message
            .contains("`accounts` acquired while holding `wal`"),
        "{}",
        d.message
    );
}

#[test]
fn l2_is_quiet_in_canonical_order() {
    let report = lint_sources(&[file("crates/gp-passwords/src/store.rs", L2_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l3_fires_outside_sys_and_is_quiet_inside() {
    let outside = lint_sources(&[file("crates/gp-passwords/src/digest.rs", L3_UNSAFE)]);
    assert_eq!(outside.diagnostics.len(), 1, "{:#?}", outside.diagnostics);
    let d = &outside.diagnostics[0];
    assert_eq!(d.rule, Rule::L3);
    assert_eq!(d.line, 4);

    let inside = lint_sources(&[file("crates/gp-netauth/src/sys.rs", L3_UNSAFE)]);
    assert!(inside.diagnostics.is_empty(), "{:#?}", inside.diagnostics);
}

#[test]
fn l4_fires_per_site_with_exact_lines() {
    let report = lint_sources(&[file("crates/gp-netauth/src/reactor.rs", L4_VIOLATION)]);
    let got: Vec<(u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![(4, Rule::L4), (5, Rule::L4), (7, Rule::L4)],
        "{:#?}",
        report.diagnostics
    );
    assert!(report.diagnostics[0].message.contains("`unwrap`"));
    assert!(report.diagnostics[1].message.contains("`expect`"));
    assert!(report.diagnostics[2].message.contains("`panic!`"));
    // The allow-suppressed site at line 13 is absent but inventoried.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::L4);
    assert_eq!(report.allows[0].line, 12);
    assert_eq!(report.allows[0].reason, "fixture-proven escape hatch");
}

#[test]
fn l4_is_quiet_outside_hot_path_modules() {
    // Same content, but the path is not one of the six hot-path modules.
    let report = lint_sources(&[file("crates/gp-netauth/src/codec.rs", L4_VIOLATION)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l4_is_quiet_on_defensive_code() {
    let report = lint_sources(&[file("crates/gp-netauth/src/reactor.rs", L4_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l5_fires_on_blocking_call_two_hops_from_root() {
    let report = lint_sources(&[file("crates/gp-netauth/src/reactor.rs", L5_VIOLATION)]);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, Rule::L5);
    assert_eq!(
        d.line, 13,
        "flags the `File::open` inside `refresh_snapshot`"
    );
    assert!(
        d.message.contains("reachable from the reactor event loop"),
        "{}",
        d.message
    );
}

#[test]
fn l5_allow_on_call_site_cuts_the_edge() {
    let report = lint_sources(&[file("crates/gp-netauth/src/reactor.rs", L5_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::L5);
    assert_eq!(report.allows[0].line, 9);
}

#[test]
fn l6_fires_on_load_bearing_relaxed_only() {
    let report = lint_sources(&[file("crates/gp-netauth/src/metrics.rs", L6_VIOLATION)]);
    let got: Vec<(u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![(4, Rule::L6), (10, Rule::L6)],
        "{:#?}",
        report.diagnostics
    );
    assert!(
        report.diagnostics[0].message.contains("gates control flow"),
        "{}",
        report.diagnostics[0].message
    );
    assert!(
        report.diagnostics[1].message.contains("result consumed"),
        "{}",
        report.diagnostics[1].message
    );
    // The discarded stat-counter fetch_add on line 14 is deliberately legal.
}

#[test]
fn l6_is_quiet_on_ordered_atomics_and_reasoned_allows() {
    let report = lint_sources(&[file("crates/gp-netauth/src/metrics.rs", L6_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::L6);
}

#[test]
fn l7_fires_on_naked_waits_with_exact_lines() {
    let report = lint_sources(&[file("crates/gp-netauth/src/queue.rs", L7_VIOLATION)]);
    let got: Vec<(u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![(13, Rule::L7), (21, Rule::L7)],
        "{:#?}",
        report.diagnostics
    );
    assert!(report.diagnostics[0].message.contains("`.wait()`"));
    assert!(report.diagnostics[1].message.contains("`.wait_timeout()`"));
}

#[test]
fn l7_is_quiet_on_loops_wait_while_and_non_condvar_waits() {
    let report = lint_sources(&[file("crates/gp-netauth/src/queue.rs", L7_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::L7);
}

#[test]
fn l8_fires_on_direct_transitive_and_channel_blocking() {
    let report = lint_sources(&[file("crates/gp-passwords/src/store.rs", L8_VIOLATION)]);
    let got: Vec<(u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![(6, Rule::L8), (11, Rule::L8), (16, Rule::L8)],
        "{:#?}",
        report.diagnostics
    );
    assert!(report.diagnostics[0].message.contains("`wal` lock"));
    assert!(
        report.diagnostics[1]
            .message
            .contains("transitively blocks"),
        "{}",
        report.diagnostics[1].message
    );
    assert!(report.diagnostics[2].message.contains("`snap` lock"));
}

#[test]
fn l8_is_quiet_when_io_is_hoisted_or_allowed() {
    let report = lint_sources(&[file("crates/gp-passwords/src/store.rs", L8_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, Rule::L8);
}

#[test]
fn l9_fires_per_uncovered_opcode() {
    let report = lint_sources(&[file("crates/gp-netauth/src/replication.rs", L9_VIOLATION)]);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, Rule::L9);
    assert_eq!(d.line, 2, "flags the uncovered TAG_PONG const");
    assert!(d.message.contains("TAG_PONG"), "{}", d.message);
    assert!(d.message.contains("ReplicaMessage::Pong"), "{}", d.message);
    assert!(d.message.contains("round-trip"), "{}", d.message);
    assert!(d.message.contains("truncation"), "{}", d.message);
}

#[test]
fn l9_coverage_follows_helper_indirection() {
    let report = lint_sources(&[file("crates/gp-netauth/src/replication.rs", L9_CLEAN)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn l9_is_scoped_to_replication_files() {
    let report = lint_sources(&[file("crates/gp-netauth/src/framing.rs", L9_VIOLATION)]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn all_violations_fire_together_and_sort_stably() {
    // One lint run over every violation fixture at once: each rule still
    // fires exactly as it does in isolation, and the report is ordered by
    // (file, line, rule).
    let report = lint_sources(&[
        file("crates/gp-netauth/src/handlers.rs", L1_VIOLATION),
        file("crates/gp-passwords/src/store.rs", L2_VIOLATION),
        file("crates/gp-passwords/src/digest.rs", L3_UNSAFE),
        file("crates/gp-netauth/src/reactor.rs", L4_VIOLATION),
        file("crates/gp-netauth/src/cluster.rs", L5_VIOLATION),
    ]);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    let locations: Vec<(&str, u32, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule))
        .collect();
    assert_eq!(
        locations,
        vec![
            ("crates/gp-netauth/src/cluster.rs", 13, Rule::L5),
            ("crates/gp-netauth/src/handlers.rs", 4, Rule::L1),
            ("crates/gp-netauth/src/reactor.rs", 4, Rule::L4),
            ("crates/gp-netauth/src/reactor.rs", 5, Rule::L4),
            ("crates/gp-netauth/src/reactor.rs", 7, Rule::L4),
            ("crates/gp-passwords/src/digest.rs", 4, Rule::L3),
            ("crates/gp-passwords/src/store.rs", 5, Rule::L2),
        ],
        "{rendered:#?}"
    );
}

#[test]
fn clean_fixtures_are_clean_together() {
    let report = lint_sources(&[
        file("crates/gp-netauth/src/handlers.rs", L1_CLEAN),
        file("crates/gp-passwords/src/store.rs", L2_CLEAN),
        file("crates/gp-netauth/src/sys.rs", L3_UNSAFE),
        file("crates/gp-netauth/src/server.rs", L4_CLEAN),
        file("crates/gp-netauth/src/reactor.rs", L5_CLEAN),
    ]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}
