//! Replication ack high-water mark.
//!
//! Extracted from `replication.rs` so the waiter/recorder coordination can
//! be model tested: the primitives come from [`gp_sched::sync`], which is
//! `std::sync` in release builds and the gp-sched deterministic-scheduler
//! shims under `--cfg gp_sched` (see `tests/sched_models.rs`).

use crate::error::NetAuthError;
use gp_sched::sync::{AtomicBool, Condvar, Mutex, Ordering};
use std::fmt;
use std::time::{Duration, Instant};

/// Ack high-water mark for one outbound replication connection.
///
/// The ack-reader thread [`AckState::record`]s sequence numbers as frames
/// are acknowledged; committing threads [`AckState::wait_for`] their last
/// written sequence. [`AckState::mark_broken`] (connection teardown) wakes
/// every waiter with an error so nobody hangs on a dead socket.
#[derive(Default)]
pub struct AckState {
    highest: Mutex<u64>,
    advanced: Condvar,
    broken: AtomicBool,
}

impl fmt::Debug for AckState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AckState")
            .field("highest", &*self.highest.lock())
            .field("broken", &self.broken.load(Ordering::SeqCst))
            .finish()
    }
}

impl AckState {
    /// A fresh high-water mark at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the high-water mark to `seq` and wake waiters.
    pub fn record(&self, seq: u64) {
        let mut highest = self.highest.lock();
        if seq > *highest {
            *highest = seq;
        }
        drop(highest);
        self.advanced.notify_all();
    }

    /// Mark the connection broken and wake every waiter.
    pub fn mark_broken(&self) {
        self.broken.store(true, Ordering::SeqCst);
        self.advanced.notify_all();
    }

    /// Whether [`AckState::mark_broken`] has run.
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::SeqCst)
    }

    /// Wait until the high-water mark reaches `seq`, the connection
    /// breaks, or `timeout` elapses.
    pub fn wait_for(&self, seq: u64, timeout: Duration) -> Result<(), NetAuthError> {
        let deadline = Instant::now() + timeout;
        let mut highest = self.highest.lock();
        loop {
            if *highest >= seq {
                return Ok(());
            }
            if self.broken.load(Ordering::SeqCst) {
                return Err(NetAuthError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "replication connection broke before the ack",
                )));
            }
            // A wake can land at or past the deadline; saturating avoids
            // the `deadline - now` underflow panic and turns the final
            // iteration into an immediate timeout check.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetAuthError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for replication ack",
                )));
            }
            let (guard, _) = self.advanced.wait_timeout(highest, remaining);
            highest = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    use std::sync::Arc;

    /// Regression: wakes landing exactly at (or past) the deadline must
    /// fall out as a clean timeout. A notify storm that never satisfies
    /// the predicate lands wakes at arbitrary points around the deadline;
    /// computing `deadline - now` after such a wake would panic on
    /// underflow, `saturating_duration_since` must not.
    #[test]
    fn wake_at_the_deadline_times_out_cleanly() {
        let acks = Arc::new(AckState::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (a2, s2) = (Arc::clone(&acks), Arc::clone(&stop));
        let spammer = std::thread::spawn(move || {
            // seq 0 never raises the mark past 0, but every call notifies.
            while !s2.load(StdOrdering::SeqCst) {
                a2.record(0);
            }
        });
        let waited = acks.wait_for(1, Duration::from_millis(2));
        let err = waited.expect_err("seq 1 is never recorded");
        assert!(
            err.to_string().contains("timed out"),
            "unexpected error: {err}"
        );
        stop.store(true, StdOrdering::SeqCst);
        spammer.join().unwrap();
    }

    /// A recorded ack at the awaited seq satisfies the waiter.
    #[test]
    fn recorded_seq_satisfies_waiter() {
        let acks = Arc::new(AckState::new());
        let a2 = Arc::clone(&acks);
        let recorder = std::thread::spawn(move || a2.record(3));
        assert!(acks.wait_for(3, Duration::from_secs(5)).is_ok());
        recorder.join().unwrap();
        assert!(
            acks.wait_for(2, Duration::ZERO).is_ok(),
            "lower seqs are already covered"
        );
    }

    /// mark_broken errors waiters out instead of letting them hang.
    #[test]
    fn broken_connection_errors_waiters() {
        let acks = Arc::new(AckState::new());
        let a2 = Arc::clone(&acks);
        let breaker = std::thread::spawn(move || a2.mark_broken());
        let err = acks
            .wait_for(1, Duration::from_secs(5))
            .expect_err("broken, not acked");
        assert!(err.to_string().contains("broke"), "unexpected error: {err}");
        breaker.join().unwrap();
        assert!(acks.is_broken());
    }
}
