//! Cross-connection batch verifier: coalesces concurrent login attempts
//! into one multi-lane iterated-hash call.
//!
//! The PR 1 crypto work made *batched* hashing ~5× cheaper per message
//! than scalar hashing ([`gp_crypto::iterated_hash_many`]), but a serving
//! loop that verifies one attempt at a time can never use it.  The
//! [`BatchVerifier`] is the bridge: workers submit the hash jobs of the
//! pipelined requests they just drained, a leader collects up to
//! `max_batch` jobs across *all* connections (waiting at most
//! `coalesce_window` for stragglers), runs one
//! [`gp_crypto::iterated_hash_many_salted`] call per iteration-count
//! group, and wakes every submitter with its digests.
//!
//! Leadership rotates: whichever submitter finds no leader active takes the
//! role, executes queued jobs until its own submission is complete, then
//! hands off.  Waiters poll the shared state on a short condvar timeout, so
//! there is no missed-wakeup hazard to reason about — in the worst case a
//! result is observed one timeout (1 ms) late.

use gp_crypto::{iterated_hash_many_salted_into, Digest, SaltedHasher};
use std::collections::VecDeque;
// The Mutex/Condvar pair coordinating leader election and result
// delivery comes from the gp-sched facade so `--cfg gp_sched` model
// tests can explore every leader/follower interleaving; the stats
// counters stay on plain std atomics (they are not control flow, and
// instrumenting them would explode the model state space).
use gp_sched::sync::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One hash job: iterate `salt || pre_image` under the job's own salt.
#[derive(Debug)]
pub struct HashJob {
    /// Precomputed per-salt hashing state for the account under attempt.
    pub hasher: SaltedHasher,
    /// The encoded attempt (output of `prepare_verify`).
    pub pre_image: Vec<u8>,
    /// Iteration count recorded in the stored hash.
    pub iterations: u32,
}

/// A submission's shared result slots.
#[derive(Debug)]
struct Submission {
    /// `results[i]` is filled exactly once by a leader.
    state: Mutex<SubmissionState>,
}

#[derive(Debug)]
struct SubmissionState {
    results: Vec<Option<Digest>>,
    remaining: usize,
}

/// A queued job plus its result slot.
struct QueuedJob {
    job: HashJob,
    submission: Arc<Submission>,
    index: usize,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<QueuedJob>,
    leader_active: bool,
}

/// Aggregate counters for observability and the `authload` report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Multi-lane hash runs executed.
    pub runs: u64,
    /// Individual attempts hashed through those runs.
    pub attempts: u64,
    /// Largest single run.
    pub max_run: u64,
    /// Runs that filled every allowed lane (`max_batch` attempts) — the
    /// direct measure of how often the verifier reaches full occupancy.
    pub full_runs: u64,
}

impl BatchStats {
    /// Mean attempts coalesced per hash run (1.0 = no coalescing happened).
    pub fn mean_batch(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.attempts as f64 / self.runs as f64
        }
    }

    /// Fraction of runs that filled every allowed lane.
    pub fn full_run_fraction(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.full_runs as f64 / self.runs as f64
        }
    }
}

/// Coalesces hash jobs from many workers into multi-lane runs.
pub struct BatchVerifier {
    max_batch: usize,
    coalesce_window: Duration,
    inner: Mutex<Inner>,
    work: Condvar,
    runs: AtomicU64,
    attempts: AtomicU64,
    max_run: AtomicU64,
    full_runs: AtomicU64,
}

impl core::fmt::Debug for BatchVerifier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BatchVerifier")
            .field("max_batch", &self.max_batch)
            .field("coalesce_window", &self.coalesce_window)
            .finish_non_exhaustive()
    }
}

impl BatchVerifier {
    /// A verifier that coalesces up to `max_batch` attempts per hash run,
    /// with a leader waiting at most `coalesce_window` for more jobs to
    /// arrive before running a partial batch.  `max_batch` is clamped to
    /// ≥ 1; `max_batch == 1` (or a zero window with no queued work) makes
    /// every submission run immediately — the scalar baseline.
    pub fn new(max_batch: usize, coalesce_window: Duration) -> Self {
        Self {
            max_batch: max_batch.max(1),
            coalesce_window,
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            runs: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            max_run: AtomicU64::new(0),
            full_runs: AtomicU64::new(0),
        }
    }

    /// Largest batch a single run may coalesce.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Counters since construction.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            runs: self.runs.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            max_run: self.max_run.load(Ordering::Relaxed),
            full_runs: self.full_runs.load(Ordering::Relaxed),
        }
    }

    /// Hash every job, blocking until all digests are available.  Jobs from
    /// concurrent submissions may be coalesced into the same runs.
    ///
    /// Returns one digest per job, in submission order.
    pub fn submit(&self, jobs: Vec<HashJob>) -> Vec<Digest> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let submission = Arc::new(Submission {
            state: Mutex::new(SubmissionState {
                results: vec![None; n],
                remaining: n,
            }),
        });
        {
            let mut inner = self.inner.lock();
            for (index, job) in jobs.into_iter().enumerate() {
                inner.queue.push_back(QueuedJob {
                    job,
                    submission: Arc::clone(&submission),
                    index,
                });
            }
        }
        self.work.notify_all();

        loop {
            {
                let state = submission.state.lock();
                if state.remaining == 0 {
                    let mut results = Vec::with_capacity(n);
                    // `state` is final; unwrap is safe because remaining==0
                    // means every slot was filled.
                    for slot in state.results.iter() {
                        results.push(slot.expect("slot filled"));
                    }
                    return results;
                }
            }
            let inner = self.inner.lock();
            if !inner.leader_active && !inner.queue.is_empty() {
                self.lead(inner);
            } else {
                // Short timed wait: re-check the submission either on a
                // leader's notify or after 1 ms, whichever comes first.
                // (Fixed interval, no deadline arithmetic: the loop's exit
                // predicate is `remaining == 0`, re-checked above.)
                let _ = self.work.wait_timeout(inner, Duration::from_millis(1));
            }
        }
    }

    /// Hash an already-coalesced batch on the calling thread, bypassing
    /// the leader/follower queue entirely.
    ///
    /// [`BatchVerifier::submit`] serializes execution through one leader
    /// at a time — the right shape when submitters each hold a few jobs
    /// and the verifier is the coalescing point.  The reactor's compute
    /// pool coalesces *before* hashing (its turn queue merges jobs across
    /// connections), so its workers call this instead and hash distinct
    /// batches **in parallel on separate cores**.  Counters (`runs`,
    /// `attempts`, `max_run`, `full_runs`) are recorded identically;
    /// batches larger than `max_batch` split into multiple runs.
    ///
    /// Returns one digest per job, in input order.
    pub fn run_direct(&self, jobs: &[HashJob]) -> Vec<Digest> {
        let refs: Vec<&HashJob> = jobs.iter().collect();
        self.run_groups(&refs)
    }

    /// Take the leader role: optionally wait out the coalescing window,
    /// drain up to `max_batch` jobs, hash them, deliver results.
    fn lead(&self, mut inner: MutexGuard<'_, Inner>) {
        inner.leader_active = true;
        if !self.coalesce_window.is_zero() && self.max_batch > 1 {
            let deadline = Instant::now() + self.coalesce_window;
            while inner.queue.len() < self.max_batch {
                // Saturating: a notify can wake this loop at or past the
                // deadline, and `deadline - now` would panic on underflow.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) = self.work.wait_timeout(inner, remaining);
                inner = guard;
            }
        }
        let take = inner.queue.len().min(self.max_batch);
        let batch: Vec<QueuedJob> = inner.queue.drain(..take).collect();
        drop(inner);

        self.execute(&batch);

        let mut inner = self.inner.lock();
        inner.leader_active = false;
        drop(inner);
        self.work.notify_all();
    }

    /// Run the multi-lane hashes for `jobs`, recording stats.  Jobs
    /// "sharing a config" (same iteration count) go through one
    /// multi-salt multi-lane call; mixed iteration counts split into one
    /// call per group; groups larger than `max_batch` split further.
    ///
    /// Returns one digest per job, in input order.
    fn run_groups(&self, jobs: &[&HashJob]) -> Vec<Digest> {
        self.attempts
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);

        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| jobs[i].iterations);
        let mut digests: Vec<Digest> = vec![Digest::default(); jobs.len()];
        let mut out = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let iterations = jobs[order[start]].iterations;
            let len = order[start..]
                .iter()
                .take_while(|&&i| jobs[i].iterations == iterations)
                .count()
                .min(self.max_batch);
            let group = &order[start..start + len];
            let hashers: Vec<&SaltedHasher> = group.iter().map(|&i| &jobs[i].hasher).collect();
            let pre_images: Vec<&[u8]> = group
                .iter()
                .map(|&i| jobs[i].pre_image.as_slice())
                .collect();
            iterated_hash_many_salted_into(&hashers, &pre_images, iterations, &mut out);
            // One "run" per actual hash call: a mixed-iteration batch that
            // splits into several groups must not report phantom
            // coalescing.
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.max_run.fetch_max(len as u64, Ordering::Relaxed);
            if len >= self.max_batch && self.max_batch > 1 {
                self.full_runs.fetch_add(1, Ordering::Relaxed);
            }
            for (&i, digest) in group.iter().zip(out.iter()) {
                digests[i] = *digest;
            }
            start += len;
        }
        digests
    }

    /// Run the hashes for one drained batch and fill result slots.
    fn execute(&self, batch: &[QueuedJob]) {
        let jobs: Vec<&HashJob> = batch.iter().map(|q| &q.job).collect();
        let digests = self.run_groups(&jobs);
        for (queued, digest) in batch.iter().zip(digests) {
            let mut state = queued.submission.state.lock();
            state.results[queued.index] = Some(digest);
            state.remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_crypto::iterated_hash;
    use std::sync::Arc;

    fn job(salt: &[u8], pre_image: &[u8], iterations: u32) -> HashJob {
        HashJob {
            hasher: SaltedHasher::new(salt),
            pre_image: pre_image.to_vec(),
            iterations,
        }
    }

    #[test]
    fn empty_submission_returns_immediately() {
        let v = BatchVerifier::new(16, Duration::from_micros(200));
        assert!(v.submit(Vec::new()).is_empty());
        assert_eq!(v.stats().runs, 0);
    }

    #[test]
    fn single_submission_matches_scalar_hashing() {
        let v = BatchVerifier::new(16, Duration::from_micros(100));
        let digests = v.submit(vec![
            job(b"salt-a", b"attempt-1", 10),
            job(b"salt-b", b"attempt-2", 10),
            job(b"salt-c", b"attempt-3", 25),
        ]);
        assert_eq!(digests[0], iterated_hash(b"salt-a", b"attempt-1", 10));
        assert_eq!(digests[1], iterated_hash(b"salt-b", b"attempt-2", 10));
        assert_eq!(digests[2], iterated_hash(b"salt-c", b"attempt-3", 25));
        let stats = v.stats();
        assert_eq!(stats.attempts, 3);
        // Mixed iteration counts split into one hash call per group, and
        // the counters report the calls, not the drained batch.
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.max_run, 2);
    }

    #[test]
    fn scalar_mode_max_batch_one_still_correct() {
        let v = BatchVerifier::new(1, Duration::ZERO);
        let digests = v.submit(vec![job(b"s", b"a", 5), job(b"s", b"b", 5)]);
        assert_eq!(digests[0], iterated_hash(b"s", b"a", 5));
        assert_eq!(digests[1], iterated_hash(b"s", b"b", 5));
        assert_eq!(v.stats().max_run, 1, "no coalescing in scalar mode");
    }

    #[test]
    fn concurrent_submissions_coalesce_and_all_complete() {
        let v = Arc::new(BatchVerifier::new(16, Duration::from_millis(2)));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                let salt = format!("salt-{t}");
                let pre = format!("attempt-{t}");
                let digests = v.submit(vec![
                    job(salt.as_bytes(), pre.as_bytes(), 50),
                    job(salt.as_bytes(), b"second", 50),
                ]);
                assert_eq!(
                    digests[0],
                    iterated_hash(salt.as_bytes(), pre.as_bytes(), 50)
                );
                assert_eq!(digests[1], iterated_hash(salt.as_bytes(), b"second", 50));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = v.stats();
        assert_eq!(stats.attempts, 16);
        assert!(
            stats.runs <= 16,
            "some coalescing or at least no run inflation: {stats:?}"
        );
    }

    #[test]
    fn run_direct_matches_scalar_hashing_and_counts_stats() {
        let v = BatchVerifier::new(4, Duration::ZERO);
        let jobs: Vec<HashJob> = (0..6)
            .map(|i| {
                job(
                    format!("salt-{i}").as_bytes(),
                    b"pre",
                    if i < 3 { 5 } else { 9 },
                )
            })
            .collect();
        let digests = v.run_direct(&jobs);
        for (i, d) in digests.iter().enumerate() {
            let iters = if i < 3 { 5 } else { 9 };
            assert_eq!(
                *d,
                iterated_hash(format!("salt-{i}").as_bytes(), b"pre", iters),
                "digest {i} in input order"
            );
        }
        let stats = v.stats();
        assert_eq!(stats.attempts, 6);
        assert_eq!(stats.runs, 2, "one run per iteration group");
        assert_eq!(stats.max_run, 3);
        assert!(v.run_direct(&[]).is_empty());
    }

    #[test]
    fn run_direct_from_many_threads_in_parallel_is_correct() {
        let v = Arc::new(BatchVerifier::new(16, Duration::ZERO));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                let salt = format!("salt-{t}");
                let jobs: Vec<HashJob> = (0..4)
                    .map(|i| job(salt.as_bytes(), format!("a{i}").as_bytes(), 40))
                    .collect();
                let digests = v.run_direct(&jobs);
                for (i, d) in digests.iter().enumerate() {
                    assert_eq!(
                        *d,
                        iterated_hash(salt.as_bytes(), format!("a{i}").as_bytes(), 40)
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = v.stats();
        assert_eq!(stats.attempts, 32);
        assert_eq!(stats.runs, 8, "each thread's batch is one run");
        assert_eq!(stats.max_run, 4);
    }

    #[test]
    fn full_runs_counts_filled_lanes() {
        let v = BatchVerifier::new(4, Duration::ZERO);
        let jobs: Vec<HashJob> = (0..8)
            .map(|i| job(format!("s{i}").as_bytes(), b"p", 3))
            .collect();
        v.run_direct(&jobs);
        let stats = v.stats();
        assert_eq!(stats.full_runs, 2, "8 jobs at max_batch 4 = 2 full runs");
        assert_eq!(stats.full_run_fraction(), 1.0);
    }

    #[test]
    fn oversized_submission_splits_into_multiple_runs() {
        let v = BatchVerifier::new(4, Duration::ZERO);
        let jobs: Vec<HashJob> = (0..10)
            .map(|i| job(format!("salt-{i}").as_bytes(), b"pre", 7))
            .collect();
        let digests = v.submit(jobs);
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(*d, iterated_hash(format!("salt-{i}").as_bytes(), b"pre", 7));
        }
        let stats = v.stats();
        assert_eq!(stats.attempts, 10);
        assert!(stats.runs >= 3, "10 jobs with max_batch 4 need ≥3 runs");
        assert!(stats.max_run <= 4);
    }
}
