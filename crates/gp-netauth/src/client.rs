//! Blocking TCP client for the authentication protocol.

use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use crate::protocol::{ClientMessage, LoginDecision, ServerMessage};
use gp_geometry::Point;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry behavior for transient transport failures (connection refused,
/// reset, or closed mid-request — the signatures of a server restarting
/// or a cluster failing over).  **Off by default**: a plain
/// [`AuthClient::connect`] surfaces every error immediately; opt in with
/// [`AuthClient::with_retry`] or [`AuthClient::connect_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, the initial one included (values below 1 behave
    /// as 1: no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on the (pre-jitter) backoff delay.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// A policy sized for cluster failover: six attempts backing off from
    /// 25 ms and capped at 800 ms — over two seconds of patience, which
    /// covers a backup's promotion window.
    pub fn failover_default() -> Self {
        Self {
            max_attempts: 6,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(800),
        }
    }

    /// Backoff before retry number `retry` (1-based): capped exponential
    /// plus up to +50% jitter, so a thundering herd of clients retrying
    /// the same dead primary decorrelates.
    fn delay_before(&self, retry: u32) -> Duration {
        let doublings = (retry - 1).min(16);
        let capped = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        // No rand in the dependency budget: hash the clock's nanoseconds.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default()
            .subsec_nanos();
        let jitter = gp_passwords::wal::fnv1a64(&nanos.to_be_bytes()) % 1000;
        capped + capped.mul_f64(jitter as f64 / 2000.0)
    }
}

/// A connected client session.
///
/// I/O is buffered on both directions, so a pipelined request burst
/// ([`AuthClient::request_pipelined`]) costs one write syscall for the
/// whole burst.
#[derive(Debug)]
pub struct AuthClient {
    addr: SocketAddr,
    reader: FrameReader<BufReader<TcpStream>>,
    writer: FrameWriter<BufWriter<TcpStream>>,
    retry: Option<RetryPolicy>,
}

/// The buffered frame reader/writer pair over one connection.
type ClientTransport = (
    FrameReader<BufReader<TcpStream>>,
    FrameWriter<BufWriter<TcpStream>>,
);

impl AuthClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetAuthError> {
        let (reader, writer) = Self::open_stream(addr)?;
        Ok(Self {
            addr,
            reader,
            writer,
            retry: None,
        })
    }

    /// Connect, retrying transient failures (e.g. `ECONNREFUSED` from a
    /// node still restarting) per `policy`; the policy stays attached to
    /// the session for request retries.
    pub fn connect_with_retry(addr: SocketAddr, policy: RetryPolicy) -> Result<Self, NetAuthError> {
        let mut last;
        match Self::connect(addr) {
            Ok(client) => return Ok(client.with_retry(policy)),
            Err(e) if Self::is_transient(&e) => last = e,
            Err(e) => return Err(e),
        }
        for retry in 1..policy.max_attempts {
            std::thread::sleep(policy.delay_before(retry));
            match Self::connect(addr) {
                Ok(client) => return Ok(client.with_retry(policy)),
                Err(e) if Self::is_transient(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Opt this session into transparent reconnect-and-resend of requests
    /// that fail with a transient transport error.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    fn open_stream(addr: SocketAddr) -> Result<ClientTransport, NetAuthError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let reader_stream = stream.try_clone()?;
        Ok((
            FrameReader::new(BufReader::new(reader_stream)),
            FrameWriter::new(BufWriter::new(stream)),
        ))
    }

    /// Errors worth a reconnect: the connection died or was never
    /// established.  Deliberately excludes read timeouts — the request
    /// may still be executing, and resending could double-apply it.
    fn is_transient(err: &NetAuthError) -> bool {
        match err {
            NetAuthError::UnexpectedEof => true,
            NetAuthError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::NotConnected
            ),
            _ => false,
        }
    }

    fn request_once(&mut self, message: &ClientMessage) -> Result<ServerMessage, NetAuthError> {
        self.writer.write_frame(&message.encode())?;
        let frame = self.reader.read_frame()?;
        ServerMessage::decode(frame)
    }

    /// Send one request and read one response.  With a [`RetryPolicy`]
    /// attached, a transient transport failure reconnects (fresh socket to
    /// the same address) and resends after a capped, jittered backoff.
    pub fn request(&mut self, message: &ClientMessage) -> Result<ServerMessage, NetAuthError> {
        let mut last = match self.request_once(message) {
            Err(e) if self.retry.is_some() && Self::is_transient(&e) => e,
            other => return other,
        };
        let policy = self.retry.expect("retry checked above");
        for retry in 1..policy.max_attempts {
            std::thread::sleep(policy.delay_before(retry));
            match Self::open_stream(self.addr) {
                Ok((reader, writer)) => {
                    self.reader = reader;
                    self.writer = writer;
                }
                Err(e) if Self::is_transient(&e) => {
                    last = e;
                    continue;
                }
                Err(e) => return Err(e),
            }
            match self.request_once(message) {
                Ok(response) => return Ok(response),
                Err(e) if Self::is_transient(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Send every request in one pipelined burst, then read the matching
    /// responses in order.  This is the client half of the server's
    /// pipelined framing: no request waits for the previous response's
    /// round trip, and the server batches the burst's login hashes into
    /// multi-lane runs.
    pub fn request_pipelined(
        &mut self,
        messages: &[ClientMessage],
    ) -> Result<Vec<ServerMessage>, NetAuthError> {
        for message in messages {
            self.writer.write_frame_buffered(&message.encode())?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(messages.len());
        for _ in messages {
            responses.push(ServerMessage::decode(self.reader.read_frame()?)?);
        }
        Ok(responses)
    }

    /// Enroll an account.
    pub fn enroll(&mut self, username: &str, clicks: &[Point]) -> Result<(), NetAuthError> {
        match self.request(&ClientMessage::Enroll {
            username: username.to_string(),
            clicks: clicks.to_vec(),
        })? {
            ServerMessage::EnrollOk => Ok(()),
            ServerMessage::Error { reason } => Err(NetAuthError::Malformed { reason }),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to enroll: {other:?}"),
            }),
        }
    }

    /// Attempt a login; returns the server's decision and the recorded
    /// failure count.
    pub fn login(
        &mut self,
        username: &str,
        clicks: &[Point],
    ) -> Result<(LoginDecision, u32), NetAuthError> {
        match self.request(&ClientMessage::Login {
            username: username.to_string(),
            clicks: clicks.to_vec(),
        })? {
            ServerMessage::LoginResult { decision, failures } => Ok((decision, failures)),
            ServerMessage::Error { reason } => Err(NetAuthError::Malformed { reason }),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to login: {other:?}"),
            }),
        }
    }

    /// Fetch the server's scheme header and click count.
    pub fn get_config(&mut self) -> Result<(String, u32), NetAuthError> {
        match self.request(&ClientMessage::GetConfig)? {
            ServerMessage::Config { scheme, clicks } => Ok((scheme, clicks)),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to get_config: {other:?}"),
            }),
        }
    }

    /// Politely close the session.
    pub fn quit(mut self) -> Result<(), NetAuthError> {
        match self.request(&ClientMessage::Quit)? {
            ServerMessage::Goodbye => Ok(()),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to quit: {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{AuthServer, ServerConfig};

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(45.0, 52.0),
            Point::new(133.0, 208.0),
            Point::new(300.0, 72.0),
            Point::new(405.0, 295.0),
            Point::new(225.0, 142.0),
        ]
    }

    #[test]
    fn end_to_end_enroll_login_lockout_over_tcp() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");

        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        let (scheme, n) = client.get_config().unwrap();
        assert_eq!(scheme, "centered:9");
        assert_eq!(n, 5);

        client.enroll("alice", &clicks()).unwrap();

        // Accurate login succeeds.
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(6.0, -6.0)).collect();
        let (decision, failures) = client.login("alice", &wobbly).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        assert_eq!(failures, 0);

        // Three bad attempts lock the account.
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        for i in 1..=3u32 {
            let (decision, failures) = client.login("alice", &wrong).unwrap();
            assert_eq!(decision, LoginDecision::Rejected);
            assert_eq!(failures, i);
        }
        let (decision, _) = client.login("alice", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::LockedOut);

        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn multiple_clients_share_the_account_store() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");

        let mut enroller = AuthClient::connect(handle.addr()).unwrap();
        enroller.enroll("bob", &clicks()).unwrap();
        enroller.quit().unwrap();

        let mut login_client = AuthClient::connect(handle.addr()).unwrap();
        let (decision, _) = login_client.login("bob", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        // Unknown accounts surface as protocol errors.
        assert!(login_client.login("nobody", &clicks()).is_err());
        login_client.quit().unwrap();

        handle.shutdown();
    }

    #[test]
    fn pipelined_burst_round_trips_in_order() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");
        let mut client = AuthClient::connect(handle.addr()).unwrap();
        client.enroll("dana", &clicks()).unwrap();

        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        let burst = vec![
            ClientMessage::Login {
                username: "dana".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "dana".into(),
                clicks: wrong,
            },
            ClientMessage::Login {
                username: "dana".into(),
                clicks: clicks(),
            },
            ClientMessage::GetConfig,
        ];
        let responses = client.request_pipelined(&burst).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(
            responses[0],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert_eq!(
            responses[1],
            ServerMessage::LoginResult {
                decision: LoginDecision::Rejected,
                failures: 1
            }
        );
        assert_eq!(
            responses[2],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert!(matches!(responses[3], ServerMessage::Config { .. }));

        client.quit().unwrap();
        let stats = handle.stats();
        assert!(stats.workers.iter().map(|w| w.requests).sum::<u64>() >= 6);
        handle.shutdown();
    }

    #[test]
    fn server_survives_abruptly_dropped_connections() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");
        {
            // Connect and drop without sending anything.
            let _client = AuthClient::connect(handle.addr()).unwrap();
        }
        // The server still serves subsequent clients.
        let mut client = AuthClient::connect(handle.addr()).unwrap();
        client.enroll("carol", &clicks()).unwrap();
        let (decision, _) = client.login("carol", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        client.quit().unwrap();
        handle.shutdown();
    }

    use crate::framing::{FrameReader, FrameWriter};
    use std::io::{BufReader, BufWriter};
    use std::net::TcpListener;

    /// A hand-rolled single-threaded server that *drops* its first
    /// accepted connection unserved (the client sees a reset/EOF — the
    /// failover signature), then serves subsequent connections normally
    /// through [`AuthServer::handle_message`].
    fn flaky_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let server = AuthServer::new(ServerConfig::fast_for_tests());
            let (first, _) = listener.accept().unwrap();
            drop(first); // simulated mid-failover connection loss
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(BufReader::new(stream.try_clone().unwrap()));
            let mut writer = FrameWriter::new(BufWriter::new(stream));
            while let Ok(frame) = reader.read_frame() {
                let Ok(message) = ClientMessage::decode(frame) else {
                    break;
                };
                let quitting = matches!(message, ClientMessage::Quit);
                let response = server.handle_message(message);
                if writer.write_frame(&response.encode()).is_err() || quitting {
                    break;
                }
            }
        });
        (addr, join)
    }

    #[test]
    fn retry_reconnects_and_resends_after_a_dropped_connection() {
        let (addr, join) = flaky_server();
        let mut client = AuthClient::connect(addr)
            .unwrap()
            .with_retry(RetryPolicy::failover_default());
        // The first request lands on the doomed connection; the policy
        // reconnects and resends transparently.
        client.enroll("erin", &clicks()).unwrap();
        let (decision, _) = client.login("erin", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        client.quit().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn without_a_policy_the_dropped_connection_is_a_hard_error() {
        let (addr, join) = flaky_server();
        let mut client = AuthClient::connect(addr).unwrap();
        let err = client
            .enroll("erin", &clicks())
            .expect_err("no retry opt-in");
        assert!(
            AuthClient::is_transient(&err),
            "the failure mode is the transient one retry would have hidden: {err}"
        );
        // Unblock the server thread's second accept and serve it out.
        let mut second = AuthClient::connect(addr).unwrap();
        second.enroll("erin", &clicks()).unwrap();
        second.quit().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn connect_with_retry_gives_up_after_max_attempts() {
        // Bind-then-drop: the port is (almost certainly) refusing.
        let dead = TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(10),
        };
        let started = std::time::Instant::now();
        let err = AuthClient::connect_with_retry(dead, policy).expect_err("nothing listening");
        assert!(AuthClient::is_transient(&err), "{err}");
        // Two retries: at least base + 2*base of (pre-jitter) backoff.
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn backoff_is_capped_and_jitter_bounded() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
        };
        for retry in 1..policy.max_attempts {
            let delay = policy.delay_before(retry);
            let cap = Duration::from_millis(80);
            assert!(delay <= cap + cap.mul_f64(0.5), "retry {retry}: {delay:?}");
            let floor = Duration::from_millis(10 << (retry - 1).min(3));
            assert!(delay >= floor.min(cap), "retry {retry}: {delay:?}");
        }
    }
}
