//! Blocking TCP client for the authentication protocol.

use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use crate::protocol::{ClientMessage, LoginDecision, ServerMessage};
use gp_geometry::Point;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A connected client session.
///
/// I/O is buffered on both directions, so a pipelined request burst
/// ([`AuthClient::request_pipelined`]) costs one write syscall for the
/// whole burst.
#[derive(Debug)]
pub struct AuthClient {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: FrameWriter<BufWriter<TcpStream>>,
}

impl AuthClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Self, NetAuthError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let reader_stream = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(BufReader::new(reader_stream)),
            writer: FrameWriter::new(BufWriter::new(stream)),
        })
    }

    /// Send one request and read one response.
    pub fn request(&mut self, message: &ClientMessage) -> Result<ServerMessage, NetAuthError> {
        self.writer.write_frame(&message.encode())?;
        let frame = self.reader.read_frame()?;
        ServerMessage::decode(frame)
    }

    /// Send every request in one pipelined burst, then read the matching
    /// responses in order.  This is the client half of the server's
    /// pipelined framing: no request waits for the previous response's
    /// round trip, and the server batches the burst's login hashes into
    /// multi-lane runs.
    pub fn request_pipelined(
        &mut self,
        messages: &[ClientMessage],
    ) -> Result<Vec<ServerMessage>, NetAuthError> {
        for message in messages {
            self.writer.write_frame_buffered(&message.encode())?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(messages.len());
        for _ in messages {
            responses.push(ServerMessage::decode(self.reader.read_frame()?)?);
        }
        Ok(responses)
    }

    /// Enroll an account.
    pub fn enroll(&mut self, username: &str, clicks: &[Point]) -> Result<(), NetAuthError> {
        match self.request(&ClientMessage::Enroll {
            username: username.to_string(),
            clicks: clicks.to_vec(),
        })? {
            ServerMessage::EnrollOk => Ok(()),
            ServerMessage::Error { reason } => Err(NetAuthError::Malformed { reason }),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to enroll: {other:?}"),
            }),
        }
    }

    /// Attempt a login; returns the server's decision and the recorded
    /// failure count.
    pub fn login(
        &mut self,
        username: &str,
        clicks: &[Point],
    ) -> Result<(LoginDecision, u32), NetAuthError> {
        match self.request(&ClientMessage::Login {
            username: username.to_string(),
            clicks: clicks.to_vec(),
        })? {
            ServerMessage::LoginResult { decision, failures } => Ok((decision, failures)),
            ServerMessage::Error { reason } => Err(NetAuthError::Malformed { reason }),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to login: {other:?}"),
            }),
        }
    }

    /// Fetch the server's scheme header and click count.
    pub fn get_config(&mut self) -> Result<(String, u32), NetAuthError> {
        match self.request(&ClientMessage::GetConfig)? {
            ServerMessage::Config { scheme, clicks } => Ok((scheme, clicks)),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to get_config: {other:?}"),
            }),
        }
    }

    /// Politely close the session.
    pub fn quit(mut self) -> Result<(), NetAuthError> {
        match self.request(&ClientMessage::Quit)? {
            ServerMessage::Goodbye => Ok(()),
            other => Err(NetAuthError::Malformed {
                reason: format!("unexpected response to quit: {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{AuthServer, ServerConfig};

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(45.0, 52.0),
            Point::new(133.0, 208.0),
            Point::new(300.0, 72.0),
            Point::new(405.0, 295.0),
            Point::new(225.0, 142.0),
        ]
    }

    #[test]
    fn end_to_end_enroll_login_lockout_over_tcp() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");

        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        let (scheme, n) = client.get_config().unwrap();
        assert_eq!(scheme, "centered:9");
        assert_eq!(n, 5);

        client.enroll("alice", &clicks()).unwrap();

        // Accurate login succeeds.
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(6.0, -6.0)).collect();
        let (decision, failures) = client.login("alice", &wobbly).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        assert_eq!(failures, 0);

        // Three bad attempts lock the account.
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        for i in 1..=3u32 {
            let (decision, failures) = client.login("alice", &wrong).unwrap();
            assert_eq!(decision, LoginDecision::Rejected);
            assert_eq!(failures, i);
        }
        let (decision, _) = client.login("alice", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::LockedOut);

        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn multiple_clients_share_the_account_store() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");

        let mut enroller = AuthClient::connect(handle.addr()).unwrap();
        enroller.enroll("bob", &clicks()).unwrap();
        enroller.quit().unwrap();

        let mut login_client = AuthClient::connect(handle.addr()).unwrap();
        let (decision, _) = login_client.login("bob", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        // Unknown accounts surface as protocol errors.
        assert!(login_client.login("nobody", &clicks()).is_err());
        login_client.quit().unwrap();

        handle.shutdown();
    }

    #[test]
    fn pipelined_burst_round_trips_in_order() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");
        let mut client = AuthClient::connect(handle.addr()).unwrap();
        client.enroll("dana", &clicks()).unwrap();

        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        let burst = vec![
            ClientMessage::Login {
                username: "dana".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "dana".into(),
                clicks: wrong,
            },
            ClientMessage::Login {
                username: "dana".into(),
                clicks: clicks(),
            },
            ClientMessage::GetConfig,
        ];
        let responses = client.request_pipelined(&burst).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(
            responses[0],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert_eq!(
            responses[1],
            ServerMessage::LoginResult {
                decision: LoginDecision::Rejected,
                failures: 1
            }
        );
        assert_eq!(
            responses[2],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert!(matches!(responses[3], ServerMessage::Config { .. }));

        client.quit().unwrap();
        let stats = handle.stats();
        assert!(stats.workers.iter().map(|w| w.requests).sum::<u64>() >= 6);
        handle.shutdown();
    }

    #[test]
    fn server_survives_abruptly_dropped_connections() {
        let handle = AuthServer::new(ServerConfig::fast_for_tests())
            .spawn()
            .expect("spawn server");
        {
            // Connect and drop without sending anything.
            let _client = AuthClient::connect(handle.addr()).unwrap();
        }
        // The server still serves subsequent clients.
        let mut client = AuthClient::connect(handle.addr()).unwrap();
        client.enroll("carol", &clicks()).unwrap();
        let (decision, _) = client.login("carol", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        client.quit().unwrap();
        handle.shutdown();
    }
}
