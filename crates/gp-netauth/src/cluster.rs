//! A loopback cluster of replicated auth nodes, plus the client-side
//! routing layer — the deployment shape the failover harness drives.
//!
//! [`Cluster::spawn`] starts N nodes, each with its own durable store
//! (under `data_root/node-i/`), its own auth listener, a replication
//! listener ([`crate::replication`]), and a [`Replicator`] whose ring
//! spans the full membership.  Every node both serves as primary for its
//! ring ranges and stores replicas for its neighbours', so any single
//! kill leaves every account's data on a surviving node.
//!
//! Fault-injection hooks are crash-only, matching the recovery story:
//!
//! * [`Cluster::kill`] — [`ServerHandle::abort`] the auth listener and
//!   stop the replication listener, mid-load, with no flushing;
//! * [`Cluster::sever_replication`] — stop *only* the replication
//!   listener (an asymmetric partition: clients still reach the node,
//!   peers cannot);
//! * [`Cluster::restart`] — crash-recover the node from its own
//!   snapshots + WAL tails, re-admit it to every survivor's ring, *catch
//!   it up* ([`crate::replication::catch_up_from_peers`]) and only then
//!   start its auth listener (the operator runbook in the README is
//!   exactly this call, by hand).
//!
//! Restart ordering is load-bearing for rejoin completeness: survivors'
//! rings re-admit the node **before** catch-up starts, so every record
//! enrolled concurrently either streams live to the joiner or is already
//! in the snapshot a peer scans — and the auth listener (the only address
//! clients route to) starts **after** catch-up, so the node takes no
//! traffic for ranges it does not yet hold.  Each node also runs a
//! background anti-entropy thread ([`crate::replication::spawn_anti_entropy`])
//! that digest-compares its primary ranges against their backups and
//! repairs divergence.
//!
//! [`ClusterClient`] mirrors the placement logic with its own
//! [`HashRing`] (deterministic placement needs no coordination): each
//! request goes to the account's current primary; a transport failure
//! marks the node dead and re-resolves — which, by the ring's failover
//! property, lands on the node already holding the account's replica.
//!
//! Events are appended to `data_root/cluster.log` so a failed harness
//! run leaves a timeline next to the node stores.

use crate::client::AuthClient;
use crate::error::NetAuthError;
use crate::protocol::LoginDecision;
use crate::replication::{
    catch_up_from_peers, spawn_anti_entropy, spawn_replication_listener, AntiEntropyHandle,
    AntiEntropyRound, CatchupOptions, CatchupReport, ReplicationHandle, ReplicationSink,
    Replicator, ReplicatorConfig,
};
use crate::server::{AuthServer, DurabilityConfig, ServerConfig, ServerHandle};
use gp_geometry::Point;
use gp_passwords::{HashRing, ShardedPasswordStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The running pieces of one node (absent once killed).
#[derive(Debug)]
struct RunningNode {
    auth: ServerHandle,
    /// `None` after [`Cluster::sever_replication`].
    repl: Option<ReplicationHandle>,
    replicator: Arc<Replicator>,
    /// `None` when [`ReplicatorConfig::anti_entropy_interval`] is zero.
    anti_entropy: Option<AntiEntropyHandle>,
}

/// One cluster slot: identity and storage outlive kills.
#[derive(Debug)]
struct NodeSlot {
    node_id: String,
    data_dir: PathBuf,
    running: Option<RunningNode>,
}

/// N replicated auth nodes on loopback.
#[derive(Debug)]
pub struct Cluster {
    slots: Vec<NodeSlot>,
    server_template: ServerConfig,
    repl_config: ReplicatorConfig,
    log: Mutex<std::fs::File>,
    started: Instant,
}

impl Cluster {
    /// Spawn `nodes` replicated nodes.  `config` is the per-node serving
    /// template; its `durability` field is overridden with a per-node
    /// directory under `data_root`.
    pub fn spawn(
        nodes: usize,
        config: ServerConfig,
        repl_config: ReplicatorConfig,
        data_root: &Path,
    ) -> Result<Self, NetAuthError> {
        assert!(nodes >= 1, "a cluster needs at least one node");
        std::fs::create_dir_all(data_root).map_err(NetAuthError::Io)?;
        let log = std::fs::File::create(data_root.join("cluster.log")).map_err(NetAuthError::Io)?;
        let mut cluster = Self {
            slots: Vec::with_capacity(nodes),
            server_template: config,
            repl_config,
            log: Mutex::new(log),
            started: Instant::now(),
        };

        // Phase 1: open every node's durable store and replication
        // listener first, so phase 2 can hand each node the full peer
        // address map.
        let mut opened: Vec<(AuthServer, ReplicationHandle)> = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let node_id = format!("node-{i}");
            let data_dir = data_root.join(&node_id);
            let server = cluster.open_node(&node_id, &data_dir)?;
            let repl = spawn_replication_listener(&node_id, server.store())?;
            cluster.slots.push(NodeSlot {
                node_id,
                data_dir,
                running: None,
            });
            opened.push((server, repl));
        }
        let repl_addrs: Vec<SocketAddr> = opened.iter().map(|(_, r)| r.addr()).collect();

        // Phase 2: attach a replicator (ring = full membership) to every
        // node and start serving.
        for (i, (server, repl)) in opened.into_iter().enumerate() {
            let peers: BTreeMap<String, SocketAddr> = cluster
                .slots
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, slot)| (slot.node_id.clone(), repl_addrs[j]))
                .collect();
            let replicator = Arc::new(Replicator::new(
                &cluster.slots[i].node_id,
                peers,
                cluster.repl_config,
            ));
            let store = server.store();
            let sink: Arc<dyn ReplicationSink> = Arc::clone(&replicator) as _;
            let auth = server.with_replication(sink).spawn()?;
            cluster.log_event(&format!(
                "spawn {} auth={} repl={}",
                cluster.slots[i].node_id,
                auth.addr(),
                repl.addr()
            ));
            let anti_entropy = cluster.spawn_node_anti_entropy(&replicator, &store);
            cluster.slots[i].running = Some(RunningNode {
                auth,
                repl: Some(repl),
                replicator,
                anti_entropy,
            });
        }
        Ok(cluster)
    }

    /// Start a node's background anti-entropy thread, unless disabled by
    /// a zero [`ReplicatorConfig::anti_entropy_interval`].
    fn spawn_node_anti_entropy(
        &self,
        replicator: &Arc<Replicator>,
        store: &Arc<ShardedPasswordStore>,
    ) -> Option<AntiEntropyHandle> {
        let interval = self.repl_config.anti_entropy_interval;
        if interval.is_zero() {
            return None;
        }
        Some(spawn_anti_entropy(
            Arc::clone(replicator),
            Arc::clone(store),
            interval,
        ))
    }

    fn open_node(&self, node_id: &str, data_dir: &Path) -> Result<AuthServer, NetAuthError> {
        std::fs::create_dir_all(data_dir).map_err(NetAuthError::Io)?;
        let config = ServerConfig {
            durability: Some(DurabilityConfig::at(data_dir)),
            ..self.server_template.clone()
        };
        let _ = node_id;
        AuthServer::open(config)
    }

    /// Append a timestamped line to `cluster.log`.
    pub fn log_event(&self, message: &str) {
        let mut log = self.log.lock();
        let _ = writeln!(
            log,
            "[{:>9.3}s] {message}",
            self.started.elapsed().as_secs_f64()
        );
        let _ = log.flush();
    }

    /// Number of configured slots (live or dead).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cluster has no slots (never true after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Node ID of slot `i`.
    pub fn node_id(&self, i: usize) -> &str {
        &self.slots[i].node_id
    }

    /// Live members as `(node_id, auth address)` — what a
    /// [`ClusterClient`] needs to route.
    pub fn members(&self) -> Vec<(String, SocketAddr)> {
        self.slots
            .iter()
            .filter_map(|slot| {
                slot.running
                    .as_ref()
                    .map(|r| (slot.node_id.clone(), r.auth.addr()))
            })
            .collect()
    }

    /// The replicator of a live node (fault-injection hook:
    /// [`Replicator::drop_connections`] and friends).
    pub fn replicator(&self, i: usize) -> Option<Arc<Replicator>> {
        self.slots[i]
            .running
            .as_ref()
            .map(|r| Arc::clone(&r.replicator))
    }

    /// Crash node `i` mid-flight: abort the auth listener (no final
    /// flush/compaction — the durability directory is left exactly as the
    /// last acked mutation left it) and stop its replication listener.
    /// No-op on an already-dead node.
    pub fn kill(&mut self, i: usize) {
        if let Some(mut running) = self.slots[i].running.take() {
            self.log_event(&format!("kill {}", self.slots[i].node_id));
            if let Some(mut anti_entropy) = running.anti_entropy.take() {
                anti_entropy.shutdown();
            }
            running.auth.abort();
            if let Some(mut repl) = running.repl {
                repl.shutdown();
            }
        }
    }

    /// Partition node `i`'s *inbound* replication only: peers streaming
    /// records to it start failing (and evict it from their rings) while
    /// clients can still reach its auth listener.
    pub fn sever_replication(&mut self, i: usize) {
        if let Some(running) = self.slots[i].running.as_mut() {
            if let Some(mut repl) = running.repl.take() {
                self.log_event(&format!("sever-replication {}", self.slots[i].node_id));
                repl.shutdown();
            }
        }
    }

    /// Recover a dead node from its own durable directory and re-admit it
    /// everywhere: crash-recover the store (snapshots + WAL tails), start
    /// a fresh replication listener, re-admit the node to every
    /// survivor's ring, catch it up from its peers, and only then start
    /// the auth listener.  This is the operator runbook, as a method.
    pub fn restart(&mut self, i: usize) -> Result<CatchupReport, NetAuthError> {
        self.restart_with_catchup(i, CatchupOptions::default())
    }

    /// [`Cluster::restart`] with explicit [`CatchupOptions`] — the fault
    /// harness sets [`CatchupOptions::abort_after_records`] to interrupt
    /// the state transfer mid-stream and observe the gated, partially
    /// caught-up node.
    pub fn restart_with_catchup(
        &mut self,
        i: usize,
        options: CatchupOptions,
    ) -> Result<CatchupReport, NetAuthError> {
        assert!(
            self.slots[i].running.is_none(),
            "restart targets a dead node"
        );
        let node_id = self.slots[i].node_id.clone();
        let data_dir = self.slots[i].data_dir.clone();
        let server = self.open_node(&node_id, &data_dir)?;
        let store = server.store();
        let repl = spawn_replication_listener(&node_id, Arc::clone(&store))?;

        // The restarted node replicates to the peers as they are *now*
        // (their replication addresses never changed while they lived).
        let peers: BTreeMap<String, SocketAddr> = self
            .slots
            .iter()
            .filter(|slot| slot.node_id != node_id)
            .filter_map(|slot| {
                let running = slot.running.as_ref()?;
                let addr = running.repl.as_ref()?.addr();
                Some((slot.node_id.clone(), addr))
            })
            .collect();
        let replicator = Arc::new(Replicator::new(&node_id, peers.clone(), self.repl_config));

        // Re-admit the node to every survivor's ring *before* catch-up:
        // from this instant new writes for its ranges stream to it live,
        // so per peer everything is either in the live stream or in the
        // snapshot that peer scans next (overlap is harmless — applying
        // is idempotent).  Clients cannot route here yet: the auth
        // listener — the traffic gate — is still down.
        let new_repl_addr = repl.addr();
        for slot in &self.slots {
            if let Some(running) = slot.running.as_ref() {
                running.replicator.update_peer(&node_id, new_repl_addr);
            }
        }

        self.log_event(&format!("catchup-begin {node_id}"));
        let members: Vec<String> = self
            .slots
            .iter()
            .filter(|slot| slot.node_id == node_id || slot.running.is_some())
            .map(|slot| slot.node_id.clone())
            .collect();
        let report = catch_up_from_peers(&node_id, &members, &peers, &store, &options);
        if report.completed() {
            self.log_event(&format!(
                "admitted-after-catchup {node_id} records={}",
                report.records_applied()
            ));
        } else {
            // Availability over completeness: the node serves anyway (its
            // own recovered WAL plus whatever streamed), anti-entropy and
            // a manual [`Cluster::catch_up`] close the gap.
            self.log_event(&format!(
                "catchup-incomplete {node_id} records={}",
                report.records_applied()
            ));
        }

        // Traffic gate: only now does the node take client traffic.
        let sink: Arc<dyn ReplicationSink> = Arc::clone(&replicator) as _;
        let auth = server.with_replication(sink).spawn()?;
        self.log_event(&format!(
            "restart {node_id} auth={} repl={}",
            auth.addr(),
            repl.addr()
        ));
        let anti_entropy = self.spawn_node_anti_entropy(&replicator, &store);
        self.slots[i].running = Some(RunningNode {
            auth,
            repl: Some(repl),
            replicator,
            anti_entropy,
        });
        Ok(report)
    }

    /// Re-run catch-up on a *live* node (e.g. after a restart whose
    /// transfer was interrupted): stream every record the node backs from
    /// its live peers and apply idempotently.
    pub fn catch_up(&self, i: usize, options: CatchupOptions) -> CatchupReport {
        let node_id = self.slots[i].node_id.clone();
        let store = {
            let running = self.slots[i]
                .running
                .as_ref()
                // gp-lint: allow(L4, fault-harness precondition; callers restart the node first)
                .expect("catch_up targets a live node");
            running.auth.server().store()
        };
        let peers: BTreeMap<String, SocketAddr> = self
            .slots
            .iter()
            .filter(|slot| slot.node_id != node_id)
            .filter_map(|slot| {
                let running = slot.running.as_ref()?;
                let addr = running.repl.as_ref()?.addr();
                Some((slot.node_id.clone(), addr))
            })
            .collect();
        let members: Vec<String> = self
            .slots
            .iter()
            .filter(|slot| slot.node_id == node_id || slot.running.is_some())
            .map(|slot| slot.node_id.clone())
            .collect();
        self.log_event(&format!("catchup-begin {node_id}"));
        let report = catch_up_from_peers(&node_id, &members, &peers, &store, &options);
        self.log_event(&format!(
            "{} {node_id} records={}",
            if report.completed() {
                "admitted-after-catchup"
            } else {
                "catchup-incomplete"
            },
            report.records_applied()
        ));
        report
    }

    /// Run one synchronous anti-entropy round on node `i` (in addition to
    /// whatever the background thread does).  `None` on a dead node.
    pub fn anti_entropy_round(&self, i: usize) -> Option<AntiEntropyRound> {
        let running = self.slots[i].running.as_ref()?;
        let store = running.auth.server().store();
        Some(running.replicator.anti_entropy_round(&store))
    }

    /// A live node's account store (the harness inspects *local* replica
    /// completeness with it).  `None` on a dead node.
    pub fn store(&self, i: usize) -> Option<Arc<ShardedPasswordStore>> {
        self.slots[i]
            .running
            .as_ref()
            .map(|r| r.auth.server().store())
    }

    /// Gracefully stop every live node.
    pub fn shutdown(mut self) {
        for slot in &mut self.slots {
            if let Some(mut running) = slot.running.take() {
                if let Some(mut anti_entropy) = running.anti_entropy.take() {
                    anti_entropy.shutdown();
                }
                running.auth.shutdown();
                if let Some(mut repl) = running.repl {
                    repl.shutdown();
                }
            }
        }
    }
}

/// Client-side routing over a replicated cluster.
///
/// Owns an independent [`HashRing`] over the membership — placement is a
/// pure function of the member set, so the client's owner computation
/// agrees with every node's backup choice with no coordination.  One
/// lazily-opened [`AuthClient`] per node; a transport failure closes the
/// connection, marks the node dead (ring leave) and re-resolves, which by
/// the ring's failover property promotes exactly the node holding the
/// account's replica.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    nodes: BTreeMap<String, NodeEntry>,
}

#[derive(Debug)]
struct NodeEntry {
    addr: SocketAddr,
    conn: Option<AuthClient>,
}

fn no_live_nodes() -> NetAuthError {
    NetAuthError::Io(std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "no live cluster nodes",
    ))
}

impl ClusterClient {
    /// A client routing over `members` (`(node_id, auth address)` pairs,
    /// e.g. from [`Cluster::members`]).
    pub fn new(members: &[(String, SocketAddr)]) -> Self {
        Self {
            ring: HashRing::with_nodes(members.iter().map(|(id, _)| id)),
            nodes: members
                .iter()
                .map(|(id, addr)| {
                    (
                        id.clone(),
                        NodeEntry {
                            addr: *addr,
                            conn: None,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Nodes this client still considers live.
    pub fn live_nodes(&self) -> Vec<String> {
        self.ring.nodes().map(String::from).collect()
    }

    /// The node this client would currently route `username` to.
    pub fn route(&self, username: &str) -> Option<&str> {
        self.ring.owner(username)
    }

    /// Declare `node` dead: close its connection and re-resolve its key
    /// ranges onto the survivors.
    pub fn mark_dead(&mut self, node: &str) {
        if let Some(entry) = self.nodes.get_mut(node) {
            entry.conn = None;
        }
        self.ring.leave(node);
    }

    fn request_on<T>(
        &mut self,
        node: &str,
        run: impl FnOnce(&mut AuthClient) -> Result<T, NetAuthError>,
    ) -> Result<T, NetAuthError> {
        let Some(entry) = self.nodes.get_mut(node) else {
            // Routing handed back a node this client was never told about;
            // surface it as unreachable so the caller fails over.
            return Err(NetAuthError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("no client entry for ring member {node}"),
            )));
        };
        if entry.conn.is_none() {
            entry.conn = Some(AuthClient::connect(entry.addr)?);
        }
        let Some(conn) = entry.conn.as_mut() else {
            return Err(NetAuthError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection missing after connect",
            )));
        };
        let result = run(conn);
        if result.is_err() {
            // Whatever happened, the stream state is suspect; reconnect
            // next time rather than risking a desynced pipeline.
            entry.conn = None;
        }
        result
    }

    /// Whether an error is a transport failure (node unreachable or died
    /// mid-request) rather than a server-side rejection.
    fn is_transport_error(err: &NetAuthError) -> bool {
        matches!(
            err,
            NetAuthError::Io(_) | NetAuthError::UnexpectedEof | NetAuthError::IntegrityFailure
        )
    }

    /// Enroll `username` on its current primary, failing over to the next
    /// successor when the primary's transport fails.  A duplicate-account
    /// rejection after a failover counts as success: it means the first
    /// attempt was applied (and replicated) before the connection died.
    pub fn enroll(&mut self, username: &str, clicks: &[Point]) -> Result<(), NetAuthError> {
        loop {
            let Some(target) = self.ring.owner(username).map(String::from) else {
                return Err(no_live_nodes());
            };
            match self.request_on(&target, |c| c.enroll(username, clicks)) {
                Ok(()) => return Ok(()),
                Err(NetAuthError::Malformed { reason }) if reason.contains("already exists") => {
                    return Ok(());
                }
                Err(e) if Self::is_transport_error(&e) => {
                    self.mark_dead(&target);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Log `username` in, walking its successor list: transport failures
    /// mark nodes dead and re-resolve; an `unknown account` rejection
    /// falls through to the next replica *without* declaring the node
    /// dead (it is alive — it just doesn't hold this account, e.g. while
    /// a freshly restarted node catches up).
    pub fn login(
        &mut self,
        username: &str,
        clicks: &[Point],
    ) -> Result<(LoginDecision, u32), NetAuthError> {
        'resolve: loop {
            let candidates: Vec<String> = {
                let n = self.ring.node_count();
                self.ring
                    .successors(username, n)
                    .into_iter()
                    .map(String::from)
                    .collect()
            };
            if candidates.is_empty() {
                return Err(no_live_nodes());
            }
            let mut last_reject = None;
            for target in candidates {
                match self.request_on(&target, |c| c.login(username, clicks)) {
                    Ok(result) => return Ok(result),
                    Err(NetAuthError::Malformed { reason })
                        if reason.contains("unknown account") =>
                    {
                        last_reject = Some(NetAuthError::Malformed { reason });
                    }
                    Err(e) if Self::is_transport_error(&e) => {
                        self.mark_dead(&target);
                        continue 'resolve;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Err(last_reject.unwrap_or_else(no_live_nodes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_passwords::ShardedPasswordStore;

    fn clicks(seed: u32) -> Vec<Point> {
        (0..5)
            .map(|i| {
                let x = 30.0 + f64::from(seed % 50) + 70.0 * f64::from(i);
                let y = 20.0 + f64::from(seed / 50 % 40) + 55.0 * f64::from(i);
                Point::new(x, y)
            })
            .collect()
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gp-cluster-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Spawn, enroll across the ring, log in through the routing client,
    /// shut down gracefully, and verify every node directory holds a
    /// recoverable store with both primary and replica copies: the total
    /// across nodes is 2× the accounts (one primary + one backup each).
    #[test]
    fn cluster_replicates_every_enrollment_to_a_backup() {
        let root = temp_root("basic");
        let cluster = Cluster::spawn(
            3,
            ServerConfig::fast_for_tests(),
            ReplicatorConfig::default(),
            &root,
        )
        .unwrap();
        let mut client = ClusterClient::new(&cluster.members());
        let users = 24u32;
        for i in 0..users {
            client.enroll(&format!("user{i}"), &clicks(i)).unwrap();
        }
        for i in 0..users {
            let (decision, _) = client.login(&format!("user{i}"), &clicks(i)).unwrap();
            assert_eq!(decision, LoginDecision::Accepted, "user{i}");
        }
        let dirs: Vec<PathBuf> = (0..cluster.len())
            .map(|i| root.join(cluster.node_id(i)))
            .collect();
        cluster.shutdown();

        let shards = ServerConfig::fast_for_tests().shards;
        let mut total = 0;
        for dir in dirs {
            let store = ShardedPasswordStore::open_durable(
                &dir,
                shards,
                gp_passwords::DurabilityOptions::default(),
            )
            .unwrap();
            total += store.len();
        }
        assert_eq!(
            total as u32,
            2 * users,
            "each account must exist on exactly its primary and its backup"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The client's ring agrees with the server side: enrolling via a
    /// client routed at the *wrong* node still succeeds (servers accept
    /// any enrollment), but routing resolves deterministically.
    #[test]
    fn client_routing_is_deterministic_and_survives_reconstruction() {
        let members = vec![
            ("node-0".to_string(), "127.0.0.1:1".parse().unwrap()),
            ("node-1".to_string(), "127.0.0.1:2".parse().unwrap()),
            ("node-2".to_string(), "127.0.0.1:3".parse().unwrap()),
        ];
        let a = ClusterClient::new(&members);
        let mut reversed = members.clone();
        reversed.reverse();
        let b = ClusterClient::new(&reversed);
        for i in 0..64 {
            let user = format!("user{i}");
            assert_eq!(a.route(&user), b.route(&user));
        }
    }
}
