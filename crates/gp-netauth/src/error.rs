//! Error type for the networked authentication substrate.

use gp_passwords::PasswordError;

/// Errors produced by the protocol, framing and server/client layers.
#[derive(Debug)]
pub enum NetAuthError {
    /// An I/O error on the underlying transport.
    Io(std::io::Error),
    /// A frame exceeded the maximum allowed length.
    FrameTooLarge {
        /// Length declared in the frame header.
        len: usize,
    },
    /// A frame failed its integrity check (corrupted in transit).
    IntegrityFailure,
    /// A message could not be decoded.
    Malformed {
        /// Human-readable description of the decoding failure.
        reason: String,
    },
    /// The peer closed the connection mid-frame.
    UnexpectedEof,
    /// The server rejected the request at the password layer.
    Password(PasswordError),
    /// The protocol version in a frame is unsupported.
    UnsupportedVersion {
        /// The version byte that was received.
        got: u8,
    },
}

impl core::fmt::Display for NetAuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetAuthError::Io(e) => write!(f, "i/o error: {e}"),
            NetAuthError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds limit"),
            NetAuthError::IntegrityFailure => write!(f, "frame integrity check failed"),
            NetAuthError::Malformed { reason } => write!(f, "malformed message: {reason}"),
            NetAuthError::UnexpectedEof => write!(f, "connection closed mid-frame"),
            NetAuthError::Password(e) => write!(f, "password error: {e}"),
            NetAuthError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
        }
    }
}

impl std::error::Error for NetAuthError {}

impl From<std::io::Error> for NetAuthError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetAuthError::UnexpectedEof
        } else {
            NetAuthError::Io(e)
        }
    }
}

impl From<PasswordError> for NetAuthError {
    fn from(e: PasswordError) -> Self {
        NetAuthError::Password(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetAuthError::IntegrityFailure
            .to_string()
            .contains("integrity"));
        assert!(NetAuthError::FrameTooLarge { len: 9999 }
            .to_string()
            .contains("9999"));
        assert!(NetAuthError::UnsupportedVersion { got: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn eof_io_errors_map_to_unexpected_eof() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            NetAuthError::from(io),
            NetAuthError::UnexpectedEof
        ));
        let other = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        assert!(matches!(NetAuthError::from(other), NetAuthError::Io(_)));
    }
}
