//! Length-prefixed, integrity-checked frames over any `Read`/`Write`.
//!
//! Frame layout:
//!
//! ```text
//! | version: u8 | length: u32 BE | payload: length bytes | check: u32 BE |
//! ```
//!
//! The check word is the first four bytes of the SHA-256 digest of
//! `version || payload`.  It is an *integrity* check against accidental
//! corruption (and a convenient hook for the fault-injection tests), not an
//! authentication tag — the threat model for confidentiality/authenticity
//! of the channel is out of scope here, as it is in the paper.

use crate::error::NetAuthError;
use bytes::Bytes;
use gp_crypto::Sha256;
use std::io::{Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum payload length accepted (defensive bound, well above any real
/// message in this protocol).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

fn checksum(version: u8, payload: &[u8]) -> u32 {
    let mut h = Sha256::new();
    h.update(&[version]);
    h.update(payload);
    let digest = h.finalize();
    u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]])
}

/// Writes frames to an underlying `Write`.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Write one frame containing `payload` and flush the writer.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), NetAuthError> {
        self.write_frame_buffered(payload)?;
        self.flush()
    }

    /// Write one frame without flushing — the pipelined serving path queues
    /// a whole batch of responses through a buffered writer and flushes
    /// once, so a 16-deep pipeline costs one write syscall, not 16.
    pub fn write_frame_buffered(&mut self, payload: &[u8]) -> Result<(), NetAuthError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(NetAuthError::FrameTooLarge { len: payload.len() });
        }
        self.inner.write_all(&[PROTOCOL_VERSION])?;
        self.inner
            .write_all(&(payload.len() as u32).to_be_bytes())?;
        self.inner.write_all(payload)?;
        self.inner
            .write_all(&checksum(PROTOCOL_VERSION, payload).to_be_bytes())?;
        Ok(())
    }

    /// Flush buffered frames to the transport.
    pub fn flush(&mut self) -> Result<(), NetAuthError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Access the underlying writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// Reads frames from an underlying `Read`.
///
/// Reading is *resumable*: if the transport reports a transient error
/// (`WouldBlock`/`TimedOut` from a read-timeout) mid-frame, the bytes
/// already consumed are kept and the next [`FrameReader::read_frame`] call
/// continues exactly where it stopped.  A serving loop that polls a
/// shutdown flag on read timeouts therefore never desyncs a well-behaved
/// connection whose frame happens to straddle the timeout.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    /// Bytes of the in-progress frame (header + body so far).
    partial: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            partial: Vec::new(),
        }
    }

    /// Read one frame, verifying version, length bound and integrity.
    ///
    /// I/O errors are returned as-is with the partial frame retained, so a
    /// caller may retry after `WouldBlock`/`TimedOut`.  Protocol errors
    /// (`UnsupportedVersion`, `FrameTooLarge`, `IntegrityFailure`) discard
    /// the offending frame's bytes; for `IntegrityFailure` the whole frame
    /// was consumed first, so the stream stays in sync and the connection
    /// can keep serving.
    pub fn read_frame(&mut self) -> Result<Bytes, NetAuthError> {
        loop {
            if self.partial.len() >= 5 {
                let version = self.partial[0];
                if version != PROTOCOL_VERSION {
                    self.partial.clear();
                    return Err(NetAuthError::UnsupportedVersion { got: version });
                }
                let len = u32::from_be_bytes([
                    self.partial[1],
                    self.partial[2],
                    self.partial[3],
                    self.partial[4],
                ]) as usize;
                if len > MAX_FRAME_LEN {
                    self.partial.clear();
                    return Err(NetAuthError::FrameTooLarge { len });
                }
                let total = 5 + len + 4;
                if self.partial.len() >= total {
                    debug_assert_eq!(self.partial.len(), total, "reads never over-fill");
                    let payload = &self.partial[5..5 + len];
                    let ok = u32::from_be_bytes([
                        self.partial[5 + len],
                        self.partial[5 + len + 1],
                        self.partial[5 + len + 2],
                        self.partial[5 + len + 3],
                    ]) == checksum(version, payload);
                    let frame = if ok {
                        Some(Bytes::from(payload.to_vec()))
                    } else {
                        None
                    };
                    self.partial.clear();
                    return frame.ok_or(NetAuthError::IntegrityFailure);
                }
            }
            // Ask for exactly the bytes still missing (header first, then
            // the rest once the length is known) — never over-reading into
            // the next frame.
            let goal = if self.partial.len() < 5 {
                5
            } else {
                let len = u32::from_be_bytes([
                    self.partial[1],
                    self.partial[2],
                    self.partial[3],
                    self.partial[4],
                ]) as usize;
                5 + len + 4
            };
            let mut buf = [0u8; 4096];
            let want = (goal - self.partial.len()).min(buf.len());
            let n = match self.inner.read(&mut buf[..want]) {
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            if n == 0 {
                return Err(NetAuthError::UnexpectedEof);
            }
            self.partial.extend_from_slice(&buf[..n]);
        }
    }

    /// Access the underlying reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> FrameReader<std::io::BufReader<R>> {
    /// Whether a complete frame (or a frame whose header already proves it
    /// invalid) is sitting in the buffer, so the next
    /// [`FrameReader::read_frame`] is guaranteed not to block.
    ///
    /// This is what makes request pipelining safe on a blocking transport:
    /// after the first (blocking) frame of a batch, the server drains only
    /// frames that are already buffered and never stalls a whole pipeline
    /// waiting for a straggler.
    pub fn frame_buffered(&self) -> bool {
        let buf = self.inner.buffer();
        if buf.len() < 5 {
            return false;
        }
        if buf[0] != PROTOCOL_VERSION {
            // read_frame fails right after the header — non-blocking.
            return true;
        }
        let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if len > MAX_FRAME_LEN {
            // read_frame fails on the header alone — non-blocking.
            return true;
        }
        buf.len() >= 5 + len + 4
    }
}

/// Outbound byte queue for a nonblocking connection.
///
/// The reactor cannot use a blocking `BufWriter` — a peer that stops
/// reading would wedge the whole event loop in `flush()`.  Instead each
/// connection owns a `WriteBuffer`: responses are encoded into it
/// ([`WriteBuffer::queue_frame`] produces bytes identical to
/// [`FrameWriter`]'s), and [`WriteBuffer::flush_to`] writes as much as the
/// transport will take right now, tolerating partial writes and
/// `WouldBlock` and resuming exactly where it stopped.  The pending byte
/// count is the connection's write-backpressure signal.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    /// Queued bytes (encoded frames).
    buf: Vec<u8>,
    /// Prefix of `buf` already accepted by the transport.
    written: usize,
}

/// Compact the consumed prefix away once it exceeds this many bytes (a
/// memmove amortized over at least this much progress).
const WRITE_COMPACT_THRESHOLD: usize = 4096;

impl WriteBuffer {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes queued but not yet accepted by the transport.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.written
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Encode one frame containing `payload` onto the queue — exactly
    /// [`FrameWriter::write_frame_buffered`] into the owned buffer (a
    /// `Vec` sink cannot fail, so the only error is an oversized payload,
    /// rejected before anything is queued).
    pub fn queue_frame(&mut self, payload: &[u8]) -> Result<(), NetAuthError> {
        FrameWriter::new(&mut self.buf).write_frame_buffered(payload)
    }

    /// Append pre-encoded frame bytes (responses settled off-thread arrive
    /// already encoded).
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write queued bytes until done or the transport pushes back.
    ///
    /// Returns `Ok(true)` when the queue drained, `Ok(false)` on
    /// `WouldBlock`/`TimedOut` (progress is kept; call again when the
    /// transport is writable).  Partial writes and `Interrupted` are
    /// handled internally; `Ok(0)` from the writer is reported as
    /// `WriteZero`.
    pub fn flush_to<W: Write>(&mut self, writer: &mut W) -> std::io::Result<bool> {
        while self.written < self.buf.len() {
            match writer.write(&self.buf[self.written..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "transport accepted zero bytes",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.written >= WRITE_COMPACT_THRESHOLD {
                        self.buf.drain(..self.written);
                        self.written = 0;
                    }
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.written = 0;
        Ok(true)
    }
}

/// A fault-injecting byte transport for tests: corrupts or drops writes
/// before handing bytes to the wrapped buffer.
///
/// Granularity is the *write call*; [`FrameWriter`] issues exactly four
/// writes per frame (version, length, payload, check), so targeting a
/// payload write means write index `4k + 3`.  [`FaultyBuffer::corrupt_frame_payload`]
/// and [`FaultyBuffer::drop_frame`] encode that arithmetic so tests can
/// speak in frame numbers.
#[derive(Debug, Default)]
pub struct FaultyBuffer {
    /// Bytes visible to the reader side.
    pub bytes: Vec<u8>,
    /// Corrupt (flip one bit of) every n-th write, 0 = never.
    pub corrupt_every: usize,
    /// Corrupt (flip one bit of) these specific write calls (1-based).
    pub corrupt_writes: Vec<usize>,
    /// Silently discard these specific write calls (1-based).
    pub drop_writes: Vec<usize>,
    writes: usize,
}

/// Write calls per frame issued by [`FrameWriter`]: version, length,
/// payload, check.
const WRITES_PER_FRAME: usize = 4;

impl FaultyBuffer {
    /// A buffer that corrupts every `n`-th write call (0 disables).
    pub fn corrupting(n: usize) -> Self {
        Self {
            corrupt_every: n,
            ..Self::default()
        }
    }

    /// Corrupt the payload of the `frame`-th frame written (0-based).
    pub fn corrupt_frame_payload(mut self, frame: usize) -> Self {
        self.corrupt_writes.push(frame * WRITES_PER_FRAME + 3);
        self
    }

    /// Drop the `frame`-th frame written (0-based) in its entirety — the
    /// peer never sees any of its bytes, as if the request were lost.
    pub fn drop_frame(mut self, frame: usize) -> Self {
        for w in 1..=WRITES_PER_FRAME {
            self.drop_writes.push(frame * WRITES_PER_FRAME + w);
        }
        self
    }
}

impl Write for FaultyBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writes += 1;
        if self.drop_writes.contains(&self.writes) {
            return Ok(buf.len());
        }
        let mut data = buf.to_vec();
        let scheduled = self.corrupt_writes.contains(&self.writes);
        if (scheduled
            || (self.corrupt_every != 0 && self.writes.is_multiple_of(self.corrupt_every)))
            && !data.is_empty()
        {
            let idx = data.len() / 2;
            data[idx] ^= 0x40;
        }
        self.bytes.extend_from_slice(&data);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut buf);
            writer.write_frame(b"hello").unwrap();
            writer.write_frame(b"").unwrap();
            writer.write_frame(&[0u8; 1000]).unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert_eq!(&reader.read_frame().unwrap()[..], b"hello");
        assert_eq!(reader.read_frame().unwrap().len(), 0);
        assert_eq!(reader.read_frame().unwrap().len(), 1000);
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof)
        ));
    }

    #[test]
    fn oversized_frames_rejected_on_write_and_read() {
        let mut writer = FrameWriter::new(Vec::new());
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            writer.write_frame(&big),
            Err(NetAuthError::FrameTooLarge { .. })
        ));
        // Hand-craft a header that claims an enormous length.
        let mut bytes = vec![PROTOCOL_VERSION];
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut reader = FrameReader::new(Cursor::new(bytes));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"payload").unwrap();
        buf[0] = 9;
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnsupportedVersion { got: 9 })
        ));
    }

    #[test]
    fn corrupted_payload_fails_integrity_check() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf)
            .write_frame(b"click data")
            .unwrap();
        // Flip a bit inside the payload region (after the 5-byte header).
        buf[7] ^= 0x01;
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::IntegrityFailure)
        ));
    }

    #[test]
    fn truncated_frame_reports_eof() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf)
            .write_frame(b"click data")
            .unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof)
        ));
    }

    #[test]
    fn faulty_buffer_corrupts_selected_writes() {
        // Each write_frame issues 4 writes (version, length, payload, check);
        // corrupting every 3rd write hits the payload of the first frame.
        let mut faulty = FaultyBuffer::corrupting(3);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            writer.write_frame(b"frame one payload").unwrap();
            writer.write_frame(b"frame two payload").unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(faulty.bytes));
        let first = reader.read_frame();
        assert!(
            matches!(first, Err(NetAuthError::IntegrityFailure)),
            "{first:?}"
        );
    }

    #[test]
    fn clean_faulty_buffer_passes_frames_through() {
        let mut clean = FaultyBuffer::corrupting(0);
        FrameWriter::new(&mut clean).write_frame(b"data").unwrap();
        let mut reader = FrameReader::new(Cursor::new(clean.bytes));
        assert_eq!(&reader.read_frame().unwrap()[..], b"data");
    }

    /// A reader that interleaves `WouldBlock` timeouts between every few
    /// delivered bytes — the worst-case trickle a read-timeout transport
    /// can produce.
    struct TrickleReader {
        bytes: Vec<u8>,
        pos: usize,
        ticks: usize,
    }

    impl std::io::Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.ticks += 1;
            if self.ticks.is_multiple_of(2) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "simulated read timeout",
                ));
            }
            let n = buf.len().min(3).min(self.bytes.len() - self.pos);
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_frame_resumes_across_mid_frame_timeouts_without_desync() {
        let mut bytes = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut bytes);
            writer.write_frame(b"first frame payload").unwrap();
            writer.write_frame(b"second").unwrap();
        }
        let mut reader = FrameReader::new(TrickleReader {
            bytes,
            pos: 0,
            ticks: 0,
        });
        let mut frames = Vec::new();
        let mut timeouts = 0;
        while frames.len() < 2 {
            match reader.read_frame() {
                Ok(frame) => frames.push(frame),
                Err(NetAuthError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    timeouts += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(&frames[0][..], b"first frame payload");
        assert_eq!(&frames[1][..], b"second");
        assert!(timeouts > 5, "the trickle must actually have timed out");
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof) | Err(NetAuthError::Io(_))
        ));
    }

    #[test]
    fn targeted_payload_corruption_fails_only_that_frame() {
        // Three pipelined frames, the middle payload corrupted: frames 1
        // and 3 still decode, frame 2 fails integrity, and the stream stays
        // in sync (the length prefix was untouched).
        let mut faulty = FaultyBuffer::default().corrupt_frame_payload(1);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            writer.write_frame(b"frame one").unwrap();
            writer.write_frame(b"frame two").unwrap();
            writer.write_frame(b"frame three").unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(faulty.bytes));
        assert_eq!(&reader.read_frame().unwrap()[..], b"frame one");
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::IntegrityFailure)
        ));
        assert_eq!(&reader.read_frame().unwrap()[..], b"frame three");
    }

    #[test]
    fn dropped_frame_vanishes_without_desyncing_neighbours() {
        let mut faulty = FaultyBuffer::default().drop_frame(1);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            writer.write_frame(b"first").unwrap();
            writer.write_frame(b"dropped").unwrap();
            writer.write_frame(b"third").unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(faulty.bytes));
        assert_eq!(&reader.read_frame().unwrap()[..], b"first");
        assert_eq!(&reader.read_frame().unwrap()[..], b"third");
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof)
        ));
    }

    #[test]
    fn buffered_writes_emit_identical_bytes_to_flushed_writes() {
        let mut flushed = Vec::new();
        {
            let mut w = FrameWriter::new(&mut flushed);
            w.write_frame(b"a").unwrap();
            w.write_frame(b"bb").unwrap();
        }
        let mut buffered = Vec::new();
        {
            let mut w = FrameWriter::new(std::io::BufWriter::new(&mut buffered));
            w.write_frame_buffered(b"a").unwrap();
            w.write_frame_buffered(b"bb").unwrap();
            w.flush().unwrap();
        }
        assert_eq!(flushed, buffered);
    }

    #[test]
    fn frame_buffered_reports_only_complete_frames() {
        let mut bytes = Vec::new();
        {
            let mut w = FrameWriter::new(&mut bytes);
            w.write_frame(b"hello").unwrap();
            w.write_frame(b"world!").unwrap();
        }
        // A BufReader with a large buffer holds both frames after one fill.
        let mut reader = FrameReader::new(std::io::BufReader::new(Cursor::new(bytes.clone())));
        assert!(
            !reader.frame_buffered(),
            "nothing buffered before first read"
        );
        assert_eq!(&reader.read_frame().unwrap()[..], b"hello");
        assert!(reader.frame_buffered(), "second frame fully buffered");
        assert_eq!(&reader.read_frame().unwrap()[..], b"world!");
        assert!(!reader.frame_buffered(), "stream exhausted");

        // A truncated trailing frame must not be reported available.
        let cut = bytes.len() - 3;
        let mut reader =
            FrameReader::new(std::io::BufReader::new(Cursor::new(bytes[..cut].to_vec())));
        assert_eq!(&reader.read_frame().unwrap()[..], b"hello");
        assert!(!reader.frame_buffered(), "truncated frame is not complete");
    }

    /// The worst-case nonblocking transport: delivers exactly one byte per
    /// read and reports `WouldBlock` before every delivery.
    struct OneByteTrickleReader {
        bytes: Vec<u8>,
        pos: usize,
        parity: bool,
    }

    impl std::io::Read for OneByteTrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.parity = !self.parity;
            if self.parity {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "trickle",
                ));
            }
            if self.pos == self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_side_would_block_at_every_byte_boundary_never_desyncs() {
        // A pipeline of frames of every interesting size, delivered one
        // byte at a time with WouldBlock between every byte: the reader
        // must produce exactly the pipeline, in order, no matter where
        // the boundaries fall.
        let payloads: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"hello world".to_vec(),
            vec![0xAB; 300],
            b"tail".to_vec(),
        ];
        let mut bytes = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut bytes);
            for p in &payloads {
                writer.write_frame(p).unwrap();
            }
        }
        let total = bytes.len();
        let mut reader = FrameReader::new(OneByteTrickleReader {
            bytes,
            pos: 0,
            parity: false,
        });
        let mut frames = Vec::new();
        let mut timeouts = 0usize;
        while frames.len() < payloads.len() {
            match reader.read_frame() {
                Ok(frame) => frames.push(frame.to_vec()),
                Err(NetAuthError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    timeouts += 1;
                }
                Err(e) => panic!("desync at frame {}: {e}", frames.len()),
            }
        }
        assert_eq!(frames, payloads);
        assert!(
            timeouts >= total,
            "every byte boundary must have blocked at least once \
             ({timeouts} timeouts for {total} bytes)"
        );
    }

    /// Write side of the same worst case: accepts one byte per call and
    /// pushes back with `WouldBlock` before every acceptance.
    struct OneByteBackpressureWriter {
        bytes: Vec<u8>,
        parity: bool,
        blocks: usize,
    }

    impl Write for OneByteBackpressureWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.parity = !self.parity;
            if self.parity {
                self.blocks += 1;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "backpressure",
                ));
            }
            let n = buf.len().min(1);
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buffer_would_block_at_every_byte_boundary_never_desyncs() {
        let payloads: Vec<Vec<u8>> = vec![
            b"first response".to_vec(),
            b"".to_vec(),
            vec![0x5A; 257],
            b"last".to_vec(),
        ];
        // Reference wire bytes from the blocking writer.
        let mut expected = Vec::new();
        {
            let mut w = FrameWriter::new(&mut expected);
            for p in &payloads {
                w.write_frame(p).unwrap();
            }
        }
        let mut out = WriteBuffer::new();
        for p in &payloads {
            out.queue_frame(p).unwrap();
        }
        assert_eq!(out.pending(), expected.len());
        let mut sink = OneByteBackpressureWriter {
            bytes: Vec::new(),
            parity: false,
            blocks: 0,
        };
        let mut flushes = 0usize;
        while !out.flush_to(&mut sink).unwrap() {
            flushes += 1;
            assert!(flushes < 10 * expected.len(), "flush loop must terminate");
        }
        assert!(out.is_empty());
        assert_eq!(sink.bytes, expected, "byte-identical to the blocking path");
        assert!(sink.blocks >= expected.len(), "every byte pushed back once");
        // Frames decoded from the trickled output round-trip.
        let mut reader = FrameReader::new(Cursor::new(sink.bytes));
        for p in &payloads {
            assert_eq!(&reader.read_frame().unwrap()[..], &p[..]);
        }
    }

    #[test]
    fn write_buffer_queue_bytes_and_oversize_guard() {
        let mut out = WriteBuffer::new();
        assert!(out.is_empty());
        assert!(matches!(
            out.queue_frame(&vec![0u8; MAX_FRAME_LEN + 1]),
            Err(NetAuthError::FrameTooLarge { .. })
        ));
        assert!(out.is_empty(), "rejected frame queues nothing");
        let mut pre_encoded = Vec::new();
        FrameWriter::new(&mut pre_encoded)
            .write_frame(b"x")
            .unwrap();
        out.queue_bytes(&pre_encoded);
        let mut sink = Vec::new();
        assert!(out.flush_to(&mut sink).unwrap());
        assert_eq!(sink, pre_encoded);
    }

    #[test]
    fn frame_buffered_flags_invalid_headers_as_ready() {
        // Bad version byte: read_frame will fail immediately, so the frame
        // counts as "ready" (the caller must observe the error, not stall).
        let mut first = Vec::new();
        FrameWriter::new(&mut first).write_frame(b"ok").unwrap();
        let mut bytes = first.clone();
        // Full 5-byte header of a second "frame" with a bogus version.
        bytes.extend_from_slice(&[9, 0, 0, 0, 1]);
        let mut reader = FrameReader::new(std::io::BufReader::new(Cursor::new(bytes)));
        assert_eq!(&reader.read_frame().unwrap()[..], b"ok");
        assert!(reader.frame_buffered(), "invalid version is ready to error");
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnsupportedVersion { got: 9 })
        ));
    }
}
