//! Length-prefixed, integrity-checked frames over any `Read`/`Write`.
//!
//! Frame layout:
//!
//! ```text
//! | version: u8 | length: u32 BE | payload: length bytes | check: u32 BE |
//! ```
//!
//! The check word is the first four bytes of the SHA-256 digest of
//! `version || payload`.  It is an *integrity* check against accidental
//! corruption (and a convenient hook for the fault-injection tests), not an
//! authentication tag — the threat model for confidentiality/authenticity
//! of the channel is out of scope here, as it is in the paper.

use crate::error::NetAuthError;
use bytes::Bytes;
use gp_crypto::Sha256;
use std::io::{Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum payload length accepted (defensive bound, well above any real
/// message in this protocol).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

fn checksum(version: u8, payload: &[u8]) -> u32 {
    let mut h = Sha256::new();
    h.update(&[version]);
    h.update(payload);
    let digest = h.finalize();
    u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]])
}

/// Writes frames to an underlying `Write`.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Write one frame containing `payload`.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), NetAuthError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(NetAuthError::FrameTooLarge { len: payload.len() });
        }
        self.inner.write_all(&[PROTOCOL_VERSION])?;
        self.inner.write_all(&(payload.len() as u32).to_be_bytes())?;
        self.inner.write_all(payload)?;
        self.inner
            .write_all(&checksum(PROTOCOL_VERSION, payload).to_be_bytes())?;
        self.inner.flush()?;
        Ok(())
    }

    /// Access the underlying writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// Reads frames from an underlying `Read`.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Read one frame, verifying version, length bound and integrity.
    pub fn read_frame(&mut self) -> Result<Bytes, NetAuthError> {
        let mut header = [0u8; 5];
        self.inner.read_exact(&mut header)?;
        let version = header[0];
        if version != PROTOCOL_VERSION {
            return Err(NetAuthError::UnsupportedVersion { got: version });
        }
        let len = u32::from_be_bytes([header[1], header[2], header[3], header[4]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(NetAuthError::FrameTooLarge { len });
        }
        let mut payload = vec![0u8; len];
        self.inner.read_exact(&mut payload)?;
        let mut check = [0u8; 4];
        self.inner.read_exact(&mut check)?;
        if u32::from_be_bytes(check) != checksum(version, &payload) {
            return Err(NetAuthError::IntegrityFailure);
        }
        Ok(Bytes::from(payload))
    }

    /// Access the underlying reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

/// A fault-injecting byte transport for tests: corrupts or drops whole
/// frames written through it before handing bytes to the wrapped buffer.
#[derive(Debug, Default)]
pub struct FaultyBuffer {
    /// Bytes visible to the reader side.
    pub bytes: Vec<u8>,
    /// Corrupt (flip one bit of) every n-th write, 0 = never.
    pub corrupt_every: usize,
    writes: usize,
}

impl FaultyBuffer {
    /// A buffer that corrupts every `n`-th write call (0 disables).
    pub fn corrupting(n: usize) -> Self {
        Self {
            corrupt_every: n,
            ..Self::default()
        }
    }
}

impl Write for FaultyBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writes += 1;
        let mut data = buf.to_vec();
        if self.corrupt_every != 0 && self.writes % self.corrupt_every == 0 && !data.is_empty() {
            let idx = data.len() / 2;
            data[idx] ^= 0x40;
        }
        self.bytes.extend_from_slice(&data);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut buf);
            writer.write_frame(b"hello").unwrap();
            writer.write_frame(b"").unwrap();
            writer.write_frame(&[0u8; 1000]).unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert_eq!(&reader.read_frame().unwrap()[..], b"hello");
        assert_eq!(reader.read_frame().unwrap().len(), 0);
        assert_eq!(reader.read_frame().unwrap().len(), 1000);
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof)
        ));
    }

    #[test]
    fn oversized_frames_rejected_on_write_and_read() {
        let mut writer = FrameWriter::new(Vec::new());
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            writer.write_frame(&big),
            Err(NetAuthError::FrameTooLarge { .. })
        ));
        // Hand-craft a header that claims an enormous length.
        let mut bytes = vec![PROTOCOL_VERSION];
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut reader = FrameReader::new(Cursor::new(bytes));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"payload").unwrap();
        buf[0] = 9;
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnsupportedVersion { got: 9 })
        ));
    }

    #[test]
    fn corrupted_payload_fails_integrity_check() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"click data").unwrap();
        // Flip a bit inside the payload region (after the 5-byte header).
        buf[7] ^= 0x01;
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::IntegrityFailure)
        ));
    }

    #[test]
    fn truncated_frame_reports_eof() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(b"click data").unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = FrameReader::new(Cursor::new(buf));
        assert!(matches!(
            reader.read_frame(),
            Err(NetAuthError::UnexpectedEof)
        ));
    }

    #[test]
    fn faulty_buffer_corrupts_selected_writes() {
        // Each write_frame issues 4 writes (version, length, payload, check);
        // corrupting every 3rd write hits the payload of the first frame.
        let mut faulty = FaultyBuffer::corrupting(3);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            writer.write_frame(b"frame one payload").unwrap();
            writer.write_frame(b"frame two payload").unwrap();
        }
        let mut reader = FrameReader::new(Cursor::new(faulty.bytes));
        let first = reader.read_frame();
        assert!(matches!(first, Err(NetAuthError::IntegrityFailure)), "{first:?}");
    }

    #[test]
    fn clean_faulty_buffer_passes_frames_through() {
        let mut clean = FaultyBuffer::corrupting(0);
        FrameWriter::new(&mut clean).write_frame(b"data").unwrap();
        let mut reader = FrameReader::new(Cursor::new(clean.bytes));
        assert_eq!(&reader.read_frame().unwrap()[..], b"data");
    }
}
