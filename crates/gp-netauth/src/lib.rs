//! Networked authentication substrate.
//!
//! The paper's deployment model is a client that captures click coordinates
//! and a server that holds only `(clear grid identifiers, hash)` per
//! account and decides logins — including throttling online guessing
//! attacks (§5.1).  This crate provides that substrate as a sharded,
//! pipelined TCP service:
//!
//! * [`protocol`] — the wire messages (enroll, login, result) with a
//!   versioned binary encoding built on [`bytes`].
//! * [`framing`] — length-prefixed frames with an integrity tag over any
//!   `Read`/`Write` transport, with pipelining support (non-blocking
//!   detection of already-buffered frames, buffered multi-frame writes)
//!   and a fault-injecting wrapper used in tests (dropping and corrupting
//!   frames, in the spirit of smoltcp's fault injection options).
//! * [`lockout`] — per-account consecutive-failure tracking implementing
//!   the online-attack countermeasure, sharded by account hash and bounded
//!   in memory against username-spraying attacks.
//! * [`batch`] — the cross-connection [`batch::BatchVerifier`], which
//!   coalesces concurrent login attempts into single multi-lane
//!   [`gp_crypto::iterated_hash_many_salted`] runs.
//! * [`server`] — the serving layer over a
//!   [`GraphicalPasswordSystem`](gp_passwords::GraphicalPasswordSystem)
//!   and a [`ShardedPasswordStore`](gp_passwords::ShardedPasswordStore):
//!   protocol logic plus two interchangeable multiplexing strategies
//!   ([`server::ServingMode`]), with graceful shutdown and per-worker
//!   metrics.  With [`server::DurabilityConfig`] set, the store is
//!   crash-safe: every enrollment is written (and, per the configured
//!   [`gp_passwords::FsyncPolicy`], fsynced) to a per-shard write-ahead
//!   log *before* the `Enroll` frame is acknowledged, a background
//!   thread compacts logs into atomic snapshots, and a restart recovers
//!   snapshots + WAL tails — no acked account is ever lost.
//! * [`reactor`] (Linux) — the event-driven serving path: one `epoll`
//!   thread owns every connection's nonblocking state machine and a
//!   dedicated hash-compute pool drains prepared verify jobs, so
//!   connection count is decoupled from thread count.
//! * [`sys`] (Linux) — the minimal `epoll`/`eventfd` FFI the reactor
//!   stands on (std already links libc; no crates involved).
//! * [`client`] — a blocking client (with a pipelined burst API) used by
//!   the examples, integration tests and the `authload` generator; an
//!   opt-in [`client::RetryPolicy`] absorbs transient connection deaths
//!   during failovers under capped exponential backoff with jitter.
//! * [`replication`] — WAL-streaming replication between nodes: each
//!   enrollment's WAL record is streamed to the account's backup node
//!   (chosen on a consistent-hash ring) and, in sync mode, acknowledged
//!   to the client only after the backup's durable apply.  Failure
//!   handling is crash-only: a peer whose stream dies twice is evicted
//!   from the ring and replicas re-route to the next successor.  Two
//!   back-fill paths keep replicas complete: **catch-up**
//!   ([`replication::catch_up_from_peers`]) streams a (re)joining node a
//!   snapshot of every record it backs, and **anti-entropy**
//!   ([`replication::spawn_anti_entropy`]) periodically digest-compares
//!   each primary→backup range and repairs divergence record-by-record.
//! * [`cluster`] — a loopback [`cluster::Cluster`] of replicated nodes
//!   with crash-only fault hooks (kill / sever / restart) and the
//!   ring-routing [`cluster::ClusterClient`], whose transport-failure
//!   handling promotes exactly the node holding an account's replica.
//!   A restarted node is ring-admitted but traffic-gated until catch-up
//!   completes.  The kill-under-load harness (`tests/cluster_failover.rs`)
//!   proves no acked enrollment is ever lost — including across a kill +
//!   rejoin.
//!
//! # Request flow (reactor mode, Linux)
//!
//! ```text
//! epoll: accept ─ read-ready ─ write-ready ─ completions   (1 thread)
//!    │ drain ≤ pipeline_max frames per ready connection
//!    ▼
//! prepare: shard lookup ─ discretize ─ provenance          (reactor thread)
//!    │ turns with hash jobs                 │ turns with none
//!    ▼                                      ▼ settle inline
//! turn queue ──► hash-compute pool (M threads)
//!                    │ coalesce turns, ≤ batch_max jobs
//!                    ▼
//!            BatchVerifier (multi-lane iterated_hash_many_salted)
//!                    │ digests ─ settle ─ encode
//!                    ▼
//!            completion queue ─ eventfd ──► reactor writes responses
//! ```
//!
//! In pool mode (non-Linux, or [`server::ServingMode::WorkerPool`]) the
//! same prepare/batch/settle phases run on a bounded worker pool that
//! parks one thread per connection.
//!
//! The protocol remains deliberately simple (length-prefixed frames, no
//! TLS): it exists to demonstrate and test the password subsystem under
//! its intended deployment shape, not to be an internet-facing service.

// `sys` is the one module allowed to contain `unsafe` (the epoll FFI); it
// opts in locally, everything else stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod acks;
pub mod batch;
pub mod client;
pub mod cluster;
pub mod error;
pub mod framing;
pub mod lockout;
pub mod pending;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod replication;
pub mod server;
#[cfg(target_os = "linux")]
pub mod sys;

pub use batch::{BatchStats, BatchVerifier, HashJob};
pub use client::{AuthClient, RetryPolicy};
pub use cluster::{Cluster, ClusterClient};
pub use error::NetAuthError;
pub use framing::{FrameReader, FrameWriter, WriteBuffer, MAX_FRAME_LEN};
pub use gp_passwords::FsyncPolicy;
pub use lockout::LockoutTracker;
pub use protocol::{ClientMessage, LoginDecision, ServerMessage};
pub use replication::{
    catch_up_from_peers, spawn_anti_entropy, AntiEntropyHandle, AntiEntropyRound, CatchupOptions,
    CatchupReport, PeerCatchup, ReplicaMessage, ReplicationHandle, ReplicationMode,
    ReplicationSink, ReplicationStats, Replicator, ReplicatorConfig,
};
pub use server::{
    AuthServer, DurabilityConfig, ServerConfig, ServerHandle, ServerStats, ServingMode,
    WorkerMetrics, WorkerStatsSnapshot,
};
