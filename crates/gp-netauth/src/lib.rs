//! Networked authentication substrate.
//!
//! The paper's deployment model is a client that captures click coordinates
//! and a server that holds only `(clear grid identifiers, hash)` per
//! account and decides logins — including throttling online guessing
//! attacks (§5.1).  This crate provides that substrate as a sharded,
//! pipelined TCP service:
//!
//! * [`protocol`] — the wire messages (enroll, login, result) with a
//!   versioned binary encoding built on [`bytes`].
//! * [`framing`] — length-prefixed frames with an integrity tag over any
//!   `Read`/`Write` transport, with pipelining support (non-blocking
//!   detection of already-buffered frames, buffered multi-frame writes)
//!   and a fault-injecting wrapper used in tests (dropping and corrupting
//!   frames, in the spirit of smoltcp's fault injection options).
//! * [`lockout`] — per-account consecutive-failure tracking implementing
//!   the online-attack countermeasure, sharded by account hash and bounded
//!   in memory against username-spraying attacks.
//! * [`batch`] — the cross-connection [`batch::BatchVerifier`], which
//!   coalesces concurrent login attempts into single multi-lane
//!   [`gp_crypto::iterated_hash_many_salted`] runs.
//! * [`server`] — the serving layer: a bounded worker pool over a
//!   [`GraphicalPasswordSystem`](gp_passwords::GraphicalPasswordSystem)
//!   and a [`ShardedPasswordStore`](gp_passwords::ShardedPasswordStore),
//!   draining request pipelines per connection and answering in order,
//!   with graceful shutdown and per-worker metrics.
//! * [`client`] — a blocking client (with a pipelined burst API) used by
//!   the examples, integration tests and the `authload` generator.
//!
//! # Request flow
//!
//! ```text
//! accept loop ──► bounded connection queue ──► worker pool (N threads)
//!                                                  │ drain ≤ pipeline_max frames
//!                                                  ▼
//!                                  prepare: shard lookup ─ discretize ─ provenance
//!                                                  │ hash jobs
//!                                                  ▼
//!                                  BatchVerifier (≤ batch_max attempts/run,
//!                                     multi-lane iterated_hash_many_salted)
//!                                                  │ digests
//!                                                  ▼
//!                                  finish: lockout settle ─ in-order responses
//! ```
//!
//! The protocol remains deliberately simple (length-prefixed frames, no
//! TLS): it exists to demonstrate and test the password subsystem under
//! its intended deployment shape, not to be an internet-facing service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod error;
pub mod framing;
pub mod lockout;
pub mod protocol;
pub mod server;

pub use batch::{BatchStats, BatchVerifier, HashJob};
pub use client::AuthClient;
pub use error::NetAuthError;
pub use framing::{FrameReader, FrameWriter, MAX_FRAME_LEN};
pub use lockout::LockoutTracker;
pub use protocol::{ClientMessage, LoginDecision, ServerMessage};
pub use server::{
    AuthServer, ServerConfig, ServerHandle, ServerStats, WorkerMetrics, WorkerStatsSnapshot,
};
