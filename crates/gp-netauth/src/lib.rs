//! Networked authentication substrate.
//!
//! The paper's deployment model is a client that captures click coordinates
//! and a server that holds only `(clear grid identifiers, hash)` per
//! account and decides logins — including throttling online guessing
//! attacks (§5.1).  This crate provides that substrate as a small,
//! synchronous TCP service so the rest of the workspace can be exercised
//! end-to-end:
//!
//! * [`protocol`] — the wire messages (enroll, login, result) with a
//!   versioned binary encoding built on [`bytes`].
//! * [`framing`] — length-prefixed frames with an integrity tag over any
//!   `Read`/`Write` transport, plus a fault-injecting wrapper used in tests
//!   (dropping and corrupting frames, in the spirit of smoltcp's fault
//!   injection options).
//! * [`lockout`] — per-account consecutive-failure tracking implementing
//!   the online-attack countermeasure.
//! * [`server`] — a threaded TCP server wrapping a
//!   [`GraphicalPasswordSystem`](gp_passwords::GraphicalPasswordSystem)
//!   and a [`PasswordStore`](gp_passwords::PasswordStore).
//! * [`client`] — a blocking client used by the examples and integration
//!   tests.
//!
//! The protocol is deliberately simple (single request / single response
//! per frame, no TLS): it exists to demonstrate and test the password
//! subsystem under its intended deployment shape, not to be an
//! internet-facing service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod framing;
pub mod lockout;
pub mod protocol;
pub mod server;

pub use client::AuthClient;
pub use error::NetAuthError;
pub use framing::{FrameReader, FrameWriter, MAX_FRAME_LEN};
pub use lockout::LockoutTracker;
pub use protocol::{ClientMessage, LoginDecision, ServerMessage};
pub use server::{AuthServer, ServerConfig, ServerHandle};
