//! Per-account consecutive-failure tracking (the online-attack throttle).
//!
//! §5.1: "The system may limit the number of incorrect login attempts for
//! individual accounts, slowing or stopping the attack."  The tracker
//! counts consecutive failures per account; once the limit is reached the
//! account is locked until an administrator (or test) resets it.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Thread-safe per-account failure counter with a lockout threshold.
#[derive(Debug)]
pub struct LockoutTracker {
    max_failures: u32,
    failures: Mutex<HashMap<String, u32>>,
}

impl LockoutTracker {
    /// Create a tracker that locks accounts after `max_failures` consecutive
    /// failed attempts.  `max_failures == 0` disables lockout.
    pub fn new(max_failures: u32) -> Self {
        Self {
            max_failures,
            failures: Mutex::new(HashMap::new()),
        }
    }

    /// The configured threshold (0 = disabled).
    pub fn max_failures(&self) -> u32 {
        self.max_failures
    }

    /// Whether the account is currently locked.
    pub fn is_locked(&self, username: &str) -> bool {
        if self.max_failures == 0 {
            return false;
        }
        self.failures
            .lock()
            .get(username)
            .map(|&f| f >= self.max_failures)
            .unwrap_or(false)
    }

    /// Current consecutive-failure count for an account.
    pub fn failures(&self, username: &str) -> u32 {
        *self.failures.lock().get(username).unwrap_or(&0)
    }

    /// Record a failed attempt; returns the new failure count.
    pub fn record_failure(&self, username: &str) -> u32 {
        let mut failures = self.failures.lock();
        let count = failures.entry(username.to_string()).or_insert(0);
        *count = count.saturating_add(1);
        *count
    }

    /// Record a successful login, clearing the failure count.
    pub fn record_success(&self, username: &str) {
        self.failures.lock().remove(username);
    }

    /// Administrative unlock.
    pub fn reset(&self, username: &str) {
        self.failures.lock().remove(username);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_after_threshold() {
        let tracker = LockoutTracker::new(3);
        assert!(!tracker.is_locked("alice"));
        tracker.record_failure("alice");
        tracker.record_failure("alice");
        assert!(!tracker.is_locked("alice"));
        tracker.record_failure("alice");
        assert!(tracker.is_locked("alice"));
        assert_eq!(tracker.failures("alice"), 3);
        // Other accounts are unaffected.
        assert!(!tracker.is_locked("bob"));
    }

    #[test]
    fn success_clears_failures() {
        let tracker = LockoutTracker::new(3);
        tracker.record_failure("alice");
        tracker.record_failure("alice");
        tracker.record_success("alice");
        assert_eq!(tracker.failures("alice"), 0);
        assert!(!tracker.is_locked("alice"));
    }

    #[test]
    fn reset_unlocks() {
        let tracker = LockoutTracker::new(1);
        tracker.record_failure("alice");
        assert!(tracker.is_locked("alice"));
        tracker.reset("alice");
        assert!(!tracker.is_locked("alice"));
    }

    #[test]
    fn zero_threshold_disables_lockout() {
        let tracker = LockoutTracker::new(0);
        for _ in 0..100 {
            tracker.record_failure("alice");
        }
        assert!(!tracker.is_locked("alice"));
        assert_eq!(tracker.failures("alice"), 100);
    }

    #[test]
    fn concurrent_failures_are_counted() {
        use std::sync::Arc;
        let tracker = Arc::new(LockoutTracker::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&tracker);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    t.record_failure("shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tracker.failures("shared"), 400);
    }
}
