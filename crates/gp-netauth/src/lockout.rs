//! Per-account consecutive-failure tracking (the online-attack throttle).
//!
//! §5.1: "The system may limit the number of incorrect login attempts for
//! individual accounts, slowing or stopping the attack."  The tracker
//! counts consecutive failures per account; once the limit is reached the
//! account is locked until an administrator (or test) resets it.
//!
//! Two serving-scale properties are layered on top of the paper's policy:
//!
//! * **Sharding** — failure state is partitioned into independently locked
//!   shards keyed by the same account hash the password store uses
//!   ([`gp_passwords::shard_index`]), so the tracker is never a global
//!   contention point for the worker pool.
//! * **Bounded memory** — a username-spraying online attacker (one failure
//!   each against millions of *distinct* names) must not grow the tracker
//!   without bound.  Each shard keeps two generations of entries; when the
//!   live generation reaches its budget the older generation is swept, and
//!   *locked* entries are pinned: up to half the budget is carried into
//!   the fresh generation, so spraying one-failure noise cannot unlock an
//!   account — displacing a lock requires locking half a budget's worth
//!   of other accounts first, while the cap keeps rotations amortized
//!   O(1) per failure.  Successful logins evict immediately, so
//!   well-behaved accounts cost nothing at rest.

use gp_passwords::shard_index;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default cap on tracked accounts (across all shards, per generation).
const DEFAULT_CAPACITY: usize = 65_536;

/// Default shard count for the failure map.
const DEFAULT_SHARDS: usize = 8;

/// Two-generation failure map for one shard: `current` receives writes,
/// `previous` is read-only and dropped wholesale on rotation.
#[derive(Debug, Default)]
struct LockoutShard {
    current: HashMap<String, u32>,
    previous: HashMap<String, u32>,
    /// Entries swept (forgotten from `previous`) over the shard's lifetime.
    swept: u64,
}

impl LockoutShard {
    fn failures(&self, username: &str) -> u32 {
        self.current
            .get(username)
            .or_else(|| self.previous.get(username))
            .copied()
            .unwrap_or(0)
    }

    /// Move an entry's count into `current` (migrating from `previous` if
    /// needed), add one failure, and rotate generations when the live one
    /// exceeds `budget`.
    ///
    /// Rotation pins *locked* entries (count ≥ `max_failures`): up to half
    /// the budget is carried back into the fresh generation, so a sprayer
    /// cannot unlock an account with one-failure noise — displacing a lock
    /// requires locking half a budget of other accounts first, which
    /// multiplies the attack cost by the threshold and lights up every
    /// counter.  The half-budget cap keeps rotation amortized O(1) per
    /// failure: the fresh generation always has at least `budget / 2` free
    /// slots, so the O(budget) rotation cost is paid at most once per
    /// `budget / 2` insertions even when the shard is saturated with
    /// locked entries.
    fn record_failure(&mut self, username: &str, budget: usize, max_failures: u32) -> u32 {
        let count = self
            .current
            .remove(username)
            .or_else(|| self.previous.remove(username))
            .unwrap_or(0)
            .saturating_add(1);
        self.current.insert(username.to_string(), count);
        if self.current.len() > budget {
            let retired = std::mem::take(&mut self.current);
            self.swept += self.previous.len() as u64;
            self.previous = retired;
            if max_failures > 0 {
                let locked: Vec<String> = self
                    .previous
                    .iter()
                    .filter(|&(_, &c)| c >= max_failures)
                    .map(|(name, _)| name.clone())
                    .take((budget / 2).max(1))
                    .collect();
                for name in locked {
                    if let Some(c) = self.previous.remove(&name) {
                        self.current.insert(name, c);
                    }
                }
            }
        }
        count
    }

    fn remove(&mut self, username: &str) {
        self.current.remove(username);
        self.previous.remove(username);
    }

    fn tracked(&self) -> usize {
        self.current.len() + self.previous.len()
    }
}

/// Thread-safe per-account failure counter with a lockout threshold,
/// sharded for concurrency and bounded in memory (generation sweep).
#[derive(Debug)]
pub struct LockoutTracker {
    max_failures: u32,
    /// Per-shard, per-generation entry budget.
    shard_budget: usize,
    shards: Vec<Mutex<LockoutShard>>,
}

impl LockoutTracker {
    /// Create a tracker that locks accounts after `max_failures` consecutive
    /// failed attempts.  `max_failures == 0` disables lockout.  Uses the
    /// default capacity (65 536 tracked accounts) and shard count (8).
    pub fn new(max_failures: u32) -> Self {
        Self::with_limits(max_failures, DEFAULT_CAPACITY, DEFAULT_SHARDS)
    }

    /// Create a tracker with an explicit tracked-account capacity and shard
    /// count.  `capacity` is a per-generation total across shards; at most
    /// `2 × capacity` entries are ever resident.  Both are clamped to ≥ 1.
    pub fn with_limits(max_failures: u32, capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_budget = (capacity.max(1)).div_ceil(shards);
        Self {
            max_failures,
            shard_budget,
            shards: (0..shards)
                .map(|_| Mutex::new(LockoutShard::default()))
                .collect(),
        }
    }

    /// The configured threshold (0 = disabled).
    pub fn max_failures(&self) -> u32 {
        self.max_failures
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum accounts tracked at once (both generations, all shards).
    pub fn capacity(&self) -> usize {
        2 * self.shard_budget * self.shards.len()
    }

    fn shard_for(&self, username: &str) -> &Mutex<LockoutShard> {
        &self.shards[shard_index(username, self.shards.len())]
    }

    /// Whether the account is currently locked.
    pub fn is_locked(&self, username: &str) -> bool {
        if self.max_failures == 0 {
            return false;
        }
        self.shard_for(username).lock().failures(username) >= self.max_failures
    }

    /// Current consecutive-failure count for an account.
    pub fn failures(&self, username: &str) -> u32 {
        self.shard_for(username).lock().failures(username)
    }

    /// Record a failed attempt; returns the new failure count.
    pub fn record_failure(&self, username: &str) -> u32 {
        self.shard_for(username).lock().record_failure(
            username,
            self.shard_budget,
            self.max_failures,
        )
    }

    /// Record a successful login, clearing the failure count (and freeing
    /// the tracked entry — successful accounts cost no memory at rest).
    pub fn record_success(&self, username: &str) {
        self.shard_for(username).lock().remove(username);
    }

    /// Atomically settle one attempt under a single shard-lock
    /// acquisition: returns `(was_already_locked, failures_after)`.
    ///
    /// If the account is already locked, nothing is recorded (the lock
    /// decision stands and the count stays at the threshold); otherwise a
    /// success clears the entry and a failure increments it.  The serving
    /// layer uses this instead of a separate `is_locked` +
    /// `record_failure` pair so that concurrent wrong attempts from
    /// different connections can never push the reported count past the
    /// threshold.
    pub fn settle_attempt(&self, username: &str, success: bool) -> (bool, u32) {
        let mut shard = self.shard_for(username).lock();
        let current = shard.failures(username);
        if self.max_failures > 0 && current >= self.max_failures {
            return (true, current);
        }
        if success {
            shard.remove(username);
            (false, 0)
        } else {
            (
                false,
                shard.record_failure(username, self.shard_budget, self.max_failures),
            )
        }
    }

    /// Administrative unlock.
    pub fn reset(&self, username: &str) {
        self.shard_for(username).lock().remove(username);
    }

    /// Accounts currently tracked (both generations, all shards).
    pub fn tracked_accounts(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tracked()).sum()
    }

    /// Entries forgotten by generation sweeps over the tracker's lifetime
    /// (observability: non-zero under spraying attacks).
    pub fn swept_accounts(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().swept).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_after_threshold() {
        let tracker = LockoutTracker::new(3);
        assert!(!tracker.is_locked("alice"));
        tracker.record_failure("alice");
        tracker.record_failure("alice");
        assert!(!tracker.is_locked("alice"));
        tracker.record_failure("alice");
        assert!(tracker.is_locked("alice"));
        assert_eq!(tracker.failures("alice"), 3);
        // Other accounts are unaffected.
        assert!(!tracker.is_locked("bob"));
    }

    #[test]
    fn success_clears_failures() {
        let tracker = LockoutTracker::new(3);
        tracker.record_failure("alice");
        tracker.record_failure("alice");
        tracker.record_success("alice");
        assert_eq!(tracker.failures("alice"), 0);
        assert!(!tracker.is_locked("alice"));
        assert_eq!(tracker.tracked_accounts(), 0, "success evicts the entry");
    }

    #[test]
    fn reset_unlocks() {
        let tracker = LockoutTracker::new(1);
        tracker.record_failure("alice");
        assert!(tracker.is_locked("alice"));
        tracker.reset("alice");
        assert!(!tracker.is_locked("alice"));
    }

    #[test]
    fn zero_threshold_disables_lockout() {
        let tracker = LockoutTracker::new(0);
        for _ in 0..100 {
            tracker.record_failure("alice");
        }
        assert!(!tracker.is_locked("alice"));
        assert_eq!(tracker.failures("alice"), 100);
    }

    #[test]
    fn concurrent_failures_are_counted() {
        use std::sync::Arc;
        let tracker = Arc::new(LockoutTracker::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&tracker);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    t.record_failure("shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tracker.failures("shared"), 400);
    }

    #[test]
    fn username_spraying_cannot_grow_memory_unboundedly() {
        // One failure each against 50× more distinct names than the
        // capacity: resident entries must stay within the documented bound.
        let tracker = LockoutTracker::with_limits(3, 64, 4);
        for i in 0..(64 * 50) {
            tracker.record_failure(&format!("sprayed-{i}"));
        }
        assert!(
            tracker.tracked_accounts() <= tracker.capacity(),
            "tracked {} must stay within capacity {}",
            tracker.tracked_accounts(),
            tracker.capacity()
        );
        assert!(tracker.swept_accounts() > 0, "sweeps must have happened");
    }

    #[test]
    fn concurrent_settles_never_exceed_the_threshold() {
        use std::sync::Arc;
        let tracker = Arc::new(LockoutTracker::new(3));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&tracker);
            handles.push(std::thread::spawn(move || {
                let mut max_seen = 0;
                for _ in 0..50 {
                    let (_, failures) = t.settle_attempt("shared", false);
                    max_seen = max_seen.max(failures);
                }
                max_seen
            }));
        }
        for h in handles {
            assert!(
                h.join().unwrap() <= 3,
                "no thread may ever observe a count past the threshold"
            );
        }
        assert_eq!(tracker.failures("shared"), 3);
        assert!(tracker.is_locked("shared"));
        // A correct password settled against a locked account changes
        // nothing.
        assert_eq!(tracker.settle_attempt("shared", true), (true, 3));
        assert!(tracker.is_locked("shared"));
    }

    #[test]
    fn spraying_cannot_unlock_a_locked_account() {
        // Lock the victim, then flood the (single) shard with 50× the
        // budget in one-failure noise: the lock must survive every sweep.
        let tracker = LockoutTracker::with_limits(3, 16, 1);
        for _ in 0..3 {
            tracker.record_failure("victim");
        }
        assert!(tracker.is_locked("victim"));
        for i in 0..(16 * 50) {
            tracker.record_failure(&format!("sprayed-{i}"));
        }
        assert!(
            tracker.is_locked("victim"),
            "one-failure spraying must not displace a locked account"
        );
        assert!(tracker.tracked_accounts() <= tracker.capacity());
    }

    #[test]
    fn failure_counts_survive_one_generation_rotation() {
        // A near-locked account must not lose its count the moment a sweep
        // rotates generations: `previous` entries still count and migrate
        // back on the next failure.
        let tracker = LockoutTracker::with_limits(3, 8, 1);
        tracker.record_failure("victim");
        tracker.record_failure("victim");
        // Force one rotation (budget is 8 for the single shard).
        for i in 0..9 {
            tracker.record_failure(&format!("noise-{i}"));
        }
        assert_eq!(tracker.failures("victim"), 2, "count survives rotation");
        tracker.record_failure("victim");
        assert!(tracker.is_locked("victim"));
    }

    #[test]
    fn locked_accounts_spread_across_shards() {
        let tracker = LockoutTracker::with_limits(1, 1024, 4);
        for i in 0..64 {
            tracker.record_failure(&format!("user{i}"));
        }
        for i in 0..64 {
            assert!(tracker.is_locked(&format!("user{i}")));
        }
        assert_eq!(tracker.tracked_accounts(), 64);
        assert_eq!(tracker.shard_count(), 4);
    }
}
