//! Per-account enrollment write barrier.
//!
//! Extracted into its own module so the coordination kernel can be model
//! tested: the sync primitives come from [`gp_sched::sync`], which is
//! `std::sync` in release builds and the gp-sched deterministic-scheduler
//! shims under `--cfg gp_sched` (see `tests/sched_models.rs`).

use gp_sched::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Accounts with an enrollment accepted into a turn but not yet
/// group-committed.
///
/// Under group commit an enrollment becomes visible in memory *before*
/// its WAL record is fsynced, so a login racing it could be acknowledged
/// against a record a crash would lose.  `AuthServer::prepare_turn`
/// consults this table so only a login for the *same* account parks until
/// its enroll's barrier; every other account's traffic keeps flowing
/// (the per-connection write barrier this replaces split the whole
/// pipeline at every enrollment).
///
/// Entries are reference-counted: concurrent enrollments of one name
/// (only one can win the duplicate check) each hold the account pending
/// until their own settle/commit releases it.
#[derive(Default)]
pub struct PendingAccounts {
    accounts: Mutex<HashMap<String, usize>>,
    cleared: Condvar,
}

impl fmt::Debug for PendingAccounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingAccounts")
            .field("pending", &self.accounts.lock().len())
            .finish()
    }
}

impl PendingAccounts {
    /// An empty barrier table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark an enrollment in flight for `username` (at prepare time).
    pub fn begin(&self, username: &str) {
        let mut accounts = self.accounts.lock();
        *accounts.entry(username.to_string()).or_insert(0) += 1;
    }

    /// Release one in-flight enrollment for `username` (after its group
    /// commit, or at settle time if the insert was refused) and wake
    /// every parked waiter.
    pub fn end(&self, username: &str) {
        let mut accounts = self.accounts.lock();
        if let Some(count) = accounts.get_mut(username) {
            *count -= 1;
            if *count == 0 {
                accounts.remove(username);
            }
        }
        drop(accounts);
        self.cleared.notify_all();
    }

    /// Whether `username` has an enrollment awaiting its group commit.
    pub fn is_pending(&self, username: &str) -> bool {
        self.accounts.lock().contains_key(username)
    }

    /// Block until `username` has no in-flight enrollment, or `timeout`
    /// passes (the blocking pool's park; the reactor re-drives parked
    /// connections from its event loop instead).
    pub fn wait_clear(&self, username: &str, timeout: Duration) {
        let accounts = self.accounts.lock();
        if !accounts.contains_key(username) {
            return;
        }
        let _ = self
            .cleared
            .wait_timeout_while(accounts, timeout, |accounts| {
                accounts.contains_key(username)
            });
    }
}
