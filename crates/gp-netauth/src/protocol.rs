//! Wire messages and their binary encoding.
//!
//! Encoding conventions (all integers big-endian):
//!
//! * strings: `u16` length followed by UTF-8 bytes;
//! * click lists: `u16` count followed by `(f64, f64)` coordinate pairs
//!   encoded as IEEE-754 bit patterns;
//! * every message starts with a one-byte tag.
//!
//! The encoding is hand-rolled on top of [`bytes`] (no serde formats in the
//! dependency budget) and exercised by round-trip and corruption tests.

use crate::error::NetAuthError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gp_geometry::Point;

/// Maximum number of clicks accepted in a single message (defensive bound).
pub const MAX_CLICKS: usize = 64;

/// Maximum username length in bytes.
pub const MAX_USERNAME_LEN: usize = 256;

/// Requests sent from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Create an account with the given original click-points.
    Enroll {
        /// Account name.
        username: String,
        /// Original click-points, in order.
        clicks: Vec<Point>,
    },
    /// Attempt a login.
    Login {
        /// Account name.
        username: String,
        /// Attempted click-points, in order.
        clicks: Vec<Point>,
    },
    /// Ask the server for its discretization configuration (so a client can
    /// render the right grid/tolerance hints).
    GetConfig,
    /// Close the session.
    Quit,
}

/// The server's decision on a login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoginDecision {
    /// The attempt matched the stored password.
    Accepted,
    /// The attempt did not match.
    Rejected,
    /// The account is locked due to too many consecutive failures.
    LockedOut,
}

/// Responses sent from server to client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// Enrollment succeeded.
    EnrollOk,
    /// Login decision.
    LoginResult {
        /// The decision.
        decision: LoginDecision,
        /// Consecutive failures recorded for the account after this attempt.
        failures: u32,
    },
    /// The server's discretization configuration header (see
    /// [`gp_passwords::DiscretizationConfig::to_header`]) and click count.
    Config {
        /// Scheme header string.
        scheme: String,
        /// Required number of clicks per password.
        clicks: u32,
    },
    /// The request failed; a human-readable reason is attached.
    Error {
        /// Reason for the failure.
        reason: String,
    },
    /// Acknowledgement of [`ClientMessage::Quit`].
    Goodbye,
}

const TAG_ENROLL: u8 = 0x01;
const TAG_LOGIN: u8 = 0x02;
const TAG_GET_CONFIG: u8 = 0x03;
const TAG_QUIT: u8 = 0x04;

const TAG_ENROLL_OK: u8 = 0x81;
const TAG_LOGIN_RESULT: u8 = 0x82;
const TAG_CONFIG: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_GOODBYE: u8 = 0x85;

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn get_string(buf: &mut Bytes) -> Result<String, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if len > MAX_USERNAME_LEN.max(1024) {
        return Err(malformed("string too long"));
    }
    if buf.remaining() < len {
        return Err(malformed("truncated string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8 in string"))
}

fn put_clicks(buf: &mut BytesMut, clicks: &[Point]) {
    buf.put_u16(clicks.len() as u16);
    for c in clicks {
        buf.put_u64(c.x.to_bits());
        buf.put_u64(c.y.to_bits());
    }
}

fn get_clicks(buf: &mut Bytes) -> Result<Vec<Point>, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated click count"));
    }
    let count = buf.get_u16() as usize;
    if count > MAX_CLICKS {
        return Err(malformed("too many clicks"));
    }
    if buf.remaining() < count * 16 {
        return Err(malformed("truncated click list"));
    }
    let mut clicks = Vec::with_capacity(count);
    for _ in 0..count {
        let x = f64::from_bits(buf.get_u64());
        let y = f64::from_bits(buf.get_u64());
        if !x.is_finite() || !y.is_finite() {
            return Err(malformed("non-finite click coordinate"));
        }
        clicks.push(Point::new(x, y));
    }
    Ok(clicks)
}

fn malformed(reason: &str) -> NetAuthError {
    NetAuthError::Malformed {
        reason: reason.to_string(),
    }
}

impl ClientMessage {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ClientMessage::Enroll { username, clicks } => {
                buf.put_u8(TAG_ENROLL);
                put_string(&mut buf, username);
                put_clicks(&mut buf, clicks);
            }
            ClientMessage::Login { username, clicks } => {
                buf.put_u8(TAG_LOGIN);
                put_string(&mut buf, username);
                put_clicks(&mut buf, clicks);
            }
            ClientMessage::GetConfig => buf.put_u8(TAG_GET_CONFIG),
            ClientMessage::Quit => buf.put_u8(TAG_QUIT),
        }
        buf.freeze()
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, NetAuthError> {
        if buf.is_empty() {
            return Err(malformed("empty message"));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_ENROLL => {
                let username = get_string(&mut buf)?;
                let clicks = get_clicks(&mut buf)?;
                ClientMessage::Enroll { username, clicks }
            }
            TAG_LOGIN => {
                let username = get_string(&mut buf)?;
                let clicks = get_clicks(&mut buf)?;
                ClientMessage::Login { username, clicks }
            }
            TAG_GET_CONFIG => ClientMessage::GetConfig,
            TAG_QUIT => ClientMessage::Quit,
            other => return Err(malformed(&format!("unknown client tag {other:#04x}"))),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes after message"));
        }
        Ok(msg)
    }
}

impl LoginDecision {
    fn to_byte(self) -> u8 {
        match self {
            LoginDecision::Accepted => 0,
            LoginDecision::Rejected => 1,
            LoginDecision::LockedOut => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, NetAuthError> {
        match b {
            0 => Ok(LoginDecision::Accepted),
            1 => Ok(LoginDecision::Rejected),
            2 => Ok(LoginDecision::LockedOut),
            other => Err(malformed(&format!("unknown login decision {other}"))),
        }
    }
}

impl ServerMessage {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ServerMessage::EnrollOk => buf.put_u8(TAG_ENROLL_OK),
            ServerMessage::LoginResult { decision, failures } => {
                buf.put_u8(TAG_LOGIN_RESULT);
                buf.put_u8(decision.to_byte());
                buf.put_u32(*failures);
            }
            ServerMessage::Config { scheme, clicks } => {
                buf.put_u8(TAG_CONFIG);
                put_string(&mut buf, scheme);
                buf.put_u32(*clicks);
            }
            ServerMessage::Error { reason } => {
                buf.put_u8(TAG_ERROR);
                put_string(&mut buf, reason);
            }
            ServerMessage::Goodbye => buf.put_u8(TAG_GOODBYE),
        }
        buf.freeze()
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, NetAuthError> {
        if buf.is_empty() {
            return Err(malformed("empty message"));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_ENROLL_OK => ServerMessage::EnrollOk,
            TAG_LOGIN_RESULT => {
                if buf.remaining() < 5 {
                    return Err(malformed("truncated login result"));
                }
                let decision = LoginDecision::from_byte(buf.get_u8())?;
                let failures = buf.get_u32();
                ServerMessage::LoginResult { decision, failures }
            }
            TAG_CONFIG => {
                let scheme = get_string(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(malformed("truncated config"));
                }
                let clicks = buf.get_u32();
                ServerMessage::Config { scheme, clicks }
            }
            TAG_ERROR => ServerMessage::Error {
                reason: get_string(&mut buf)?,
            },
            TAG_GOODBYE => ServerMessage::Goodbye,
            other => return Err(malformed(&format!("unknown server tag {other:#04x}"))),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes after message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(1.5, 2.0),
            Point::new(450.0, 330.0),
            Point::new(0.0, 0.0),
        ]
    }

    #[test]
    fn client_messages_round_trip() {
        let messages = vec![
            ClientMessage::Enroll {
                username: "alice".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "ユーザー".into(),
                clicks: vec![],
            },
            ClientMessage::GetConfig,
            ClientMessage::Quit,
        ];
        for m in messages {
            let decoded = ClientMessage::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let messages = vec![
            ServerMessage::EnrollOk,
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0,
            },
            ServerMessage::LoginResult {
                decision: LoginDecision::LockedOut,
                failures: 3,
            },
            ServerMessage::Config {
                scheme: "centered:9".into(),
                clicks: 5,
            },
            ServerMessage::Error {
                reason: "unknown account".into(),
            },
            ServerMessage::Goodbye,
        ];
        for m in messages {
            let decoded = ServerMessage::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ClientMessage::Quit.encode().to_vec();
        bytes.push(0xff);
        assert!(ClientMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(ClientMessage::decode(Bytes::from_static(&[0x7f])).is_err());
        assert!(ServerMessage::decode(Bytes::from_static(&[0x7f])).is_err());
        assert!(ClientMessage::decode(Bytes::new()).is_err());
    }

    #[test]
    fn truncated_messages_rejected() {
        let full = ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        }
        .encode();
        // Every proper prefix must fail to decode rather than panic.
        for len in 0..full.len() {
            let prefix = full.slice(0..len);
            assert!(
                ClientMessage::decode(prefix).is_err(),
                "prefix of {len} bytes"
            );
        }
    }

    #[test]
    fn non_finite_coordinates_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_LOGIN);
        put_string(&mut buf, "alice");
        buf.put_u16(1);
        buf.put_u64(f64::NAN.to_bits());
        buf.put_u64(1.0f64.to_bits());
        assert!(ClientMessage::decode(buf.freeze()).is_err());
    }

    #[test]
    fn excessive_click_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_LOGIN);
        put_string(&mut buf, "alice");
        buf.put_u16(u16::MAX);
        assert!(ClientMessage::decode(buf.freeze()).is_err());
    }
}
