//! Event-driven serving: an `epoll` reactor plus a dedicated hash-compute
//! pool.
//!
//! The worker-pool server parks one thread on every connection it serves,
//! so idle or slow clients occupy workers and concurrent-connection
//! capacity is capped near the pool size.  The paper's verification
//! primitive (`h^1000`) makes serving cost *CPU-bound hashing*, not I/O —
//! so the reactor splits the two concerns:
//!
//! * **One event-loop thread** owns every connection as a nonblocking
//!   state machine (read → parse → hash-pending → write-backpressure),
//!   multiplexed by level-triggered [`crate::sys::Epoll`].  Per-connection
//!   cost while idle is one registered fd and a few hundred bytes of
//!   buffers — thousands of connections are cheap.
//! * **A small hash-compute pool** (`ServerConfig::workers` threads)
//!   drains a queue of prepared turns, merges jobs *across connections*
//!   up to `batch_max`, and hashes them through the shared
//!   [`crate::batch::BatchVerifier`] — so lane occupancy rises with
//!   offered load, not with thread count.  Completions flow back through
//!   an [`crate::sys::EventFd`] the reactor has registered.
//!
//! Per-connection state machine:
//!
//! ```text
//!            EPOLLIN                 jobs.is_empty()
//!   Idle ──────────────► Reading ────────────────────► settle inline ─┐
//!    ▲                      │ hash jobs                               │
//!    │                      ▼                                         │
//!    │                HashPending (EPOLLIN off — one turn in flight)  │
//!    │                      │ completion via eventfd                  │
//!    │                      ▼                                         ▼
//!    └───────────────── responses queued ──► WriteBackpressure (EPOLLOUT
//!        buffer drained                       while bytes pending)
//! ```
//!
//! Correctness notes:
//!
//! * **Ordering** — at most one turn per connection is in flight with the
//!   compute pool, and responses within a turn are settled in pipeline
//!   order, so replies can never reorder.
//! * **No busy-waiting** — `EPOLLIN` interest is dropped while a turn is
//!   in flight or the write buffer is over its cap, so level-triggered
//!   epoll never spins on data we are not ready to read.
//! * **Stale completions** — every slot carries a generation; a completion
//!   for a connection that died mid-hash is dropped by generation
//!   mismatch (the lockout side effects were already applied, exactly as
//!   if the reply were lost in flight).
//! * **Durability ordering** — settling runs on the compute thread:
//!   each turn's enrollments stage deferred WAL appends
//!   (`AuthServer::settle_turn`), and one group-commit barrier
//!   (`AuthServer::commit_enrolls`) then fsyncs every touched shard
//!   *once per coalesced batch* — strictly before any completion is
//!   posted back to the reactor, i.e. before any `EnrollOk` bytes can
//!   reach the wire.  An acked enrollment is therefore on stable
//!   storage no matter when the process dies, while `n` concurrent
//!   enrolls cost one fsync instead of `n`.
//! * **Per-account barrier** — a login racing an in-flight enroll for
//!   the *same* account parks (its slot joins `Reactor::parked`) until
//!   the enroll's group commit lands; logins for other accounts flow
//!   freely.  Parked slots are re-driven after completions are applied,
//!   so the wait is one barrier, not a poll interval.

use crate::batch::HashJob;
use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter, WriteBuffer};
use crate::server::{
    AuthServer, Planned, WorkerMetrics, MAX_CONSECUTIVE_PROTOCOL_ERRORS, SHUTDOWN_POLL,
};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use bytes::Bytes;
use gp_passwords::VerifyScratch;
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Epoll token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Epoll token of the completion/wakeup eventfd.
const WAKER_TOKEN: u64 = 1;
/// Connection slot `s` registers with token `s + TOKEN_BASE`.
const TOKEN_BASE: u64 = 2;

/// Pending response bytes above which a connection stops reading new
/// requests (resumed once the peer drains its responses).
const WRITE_BACKPRESSURE_CAP: usize = 256 * 1024;

/// Minimum spacing between idle/stall sweeps.  The sweep walks every
/// slot, so running it on every event batch would charge O(connections)
/// to the loop under load — exactly the cost the reactor exists to avoid.
/// 100 ms keeps timeout granularity well under the smallest configured
/// timeouts while making the scan cost negligible.
const SWEEP_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

/// One prepared connection turn handed to the hash-compute pool.
struct Turn {
    slot: usize,
    generation: u64,
    planned: Vec<Planned>,
    jobs: Vec<HashJob>,
    /// Close the connection once this turn's responses are flushed
    /// (`Quit`, EOF-with-pending-requests, or a protocol-fatal frame).
    close_after: bool,
}

/// A settled turn on its way back to the reactor.
struct Completion {
    slot: usize,
    generation: u64,
    /// Encoded response frames, ready for the connection's write buffer.
    bytes: Vec<u8>,
    close_after: bool,
}

/// Blocking multi-producer multi-consumer queue of prepared turns.
///
/// `pop_coalesced` is where cross-connection batching happens: a compute
/// worker takes one turn (blocking) and then opportunistically drains more
/// until it holds at least `max_jobs` hash jobs, so a deep queue turns
/// into full 16-lane hash runs instead of sixteen 1-lane ones.
struct TurnQueue {
    state: Mutex<TurnQueueState>,
    available: Condvar,
}

struct TurnQueueState {
    turns: VecDeque<Turn>,
    closed: bool,
}

/// Outcome of a [`TurnQueue::pop_coalesced`] call.
enum Popped {
    Turns(Vec<Turn>),
    TimedOut,
    Closed,
}

impl TurnQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(TurnQueueState {
                turns: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, turn: Turn) {
        // Poisoning only means another thread panicked while queueing; the
        // queue itself is a plain VecDeque, so keep serving rather than
        // cascading the panic through the reactor.
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.turns.push_back(turn);
        drop(state);
        self.available.notify_one();
    }

    fn close(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    fn pop_coalesced(&self, max_jobs: usize, timeout: std::time::Duration) -> Popped {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.turns.is_empty() {
            if state.closed {
                return Popped::Closed;
            }
            let (guard, _) = self
                .available
                // gp-lint: allow(L7, bounded coalescing nap: an early wake only yields a smaller batch; the reader loop re-polls)
                .wait_timeout(state, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
            if state.turns.is_empty() {
                return if state.closed {
                    Popped::Closed
                } else {
                    Popped::TimedOut
                };
            }
        }
        let mut turns = Vec::new();
        let mut jobs = 0usize;
        while jobs < max_jobs.max(1) {
            let Some(turn) = state.turns.pop_front() else {
                break;
            };
            jobs += turn.jobs.len();
            turns.push(turn);
        }
        Popped::Turns(turns)
    }
}

/// One live connection owned by the reactor.
struct Connection {
    /// Resumable frame decoder over a buffered nonblocking stream.  The
    /// buffering amortizes a pipelined turn's reads into one syscall; the
    /// price is that frames can sit in user space where epoll cannot see
    /// them, so every path that pauses reading re-drives via
    /// `frame_buffered()` when it resumes.
    reader: FrameReader<std::io::BufReader<TcpStream>>,
    /// Raw fd for epoll calls (stable for the connection's lifetime).
    fd: RawFd,
    /// Pending (partially written) response bytes.
    out: WriteBuffer,
    /// Per-connection verify scratch (same reuse the pool workers get).
    scratch: VerifyScratch,
    /// Slot generation this connection was created under.
    generation: u64,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Whether a turn is with the compute pool (reads are paused).
    turn_in_flight: bool,
    /// Flush remaining bytes, then close.
    closing: bool,
    /// Frames read off the socket but not yet prepared — `prepare_turn`
    /// stops at the per-account write barrier (a login racing its own
    /// account's uncommitted enroll), leaving the rest here for the next
    /// turn.  `None` marks an integrity failure.
    pending: std::collections::VecDeque<Option<Bytes>>,
    /// The socket hit EOF (or a protocol-fatal error): stop reading and
    /// close once `pending` is processed and the output drains.
    read_eof: bool,
    /// Streak of undecodable/corrupt frames (resets on a good frame).
    consecutive_errors: u32,
    /// Last time the peer produced a frame (for the idle sweep).
    last_activity: Instant,
    /// When the pending output last stopped making progress (`None` while
    /// the buffer is draining or empty).  A peer that stops reading is
    /// closed after [`WRITE_TIMEOUT`] — the reactor's equivalent of the
    /// pool's blocking-write timeout.
    write_stalled_since: Option<Instant>,
}

impl Connection {
    fn desired_interest(&self) -> u32 {
        let mut events = 0;
        if !self.turn_in_flight && !self.closing && self.out.pending() < WRITE_BACKPRESSURE_CAP {
            // EPOLLRDHUP rides with read interest only: while the
            // connection is busy a level-triggered half-close would
            // otherwise storm the loop (the event persists and the busy
            // path ignores it).  Full hangups still arrive — EPOLLHUP and
            // EPOLLERR cannot be masked — and a half-close is discovered
            // as EOF the moment reads resume.
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if !self.out.is_empty() {
            events |= EPOLLOUT;
        }
        events
    }
}

/// What `drive_read` decided after draining a connection's ready frames.
enum ReadOutcome {
    /// Nothing actionable (no complete frames yet).
    Idle,
    /// The connection is done (EOF/error with no frames left to answer);
    /// close once any pending output drains.
    Close,
    /// Queued frames are ready for a prepare turn.
    Prepare,
}

/// The reactor: owns the epoll instance, the listener and every
/// connection; runs on its own thread.
struct Reactor {
    server: Arc<AuthServer>,
    epoll: Epoll,
    waker: Arc<EventFd>,
    listener: TcpListener,
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    /// Slots freed while the current epoll event batch is being processed.
    /// They move to `free` only once the batch is done: a slot must not be
    /// re-filled by an accept while a stale readiness event for its
    /// previous occupant may still be later in the same batch (the stale
    /// event would otherwise be applied to the new connection).
    deferred_free: Vec<usize>,
    /// Per-slot generation, bumped on close to fence stale completions.
    generations: Vec<u64>,
    live: usize,
    turns: Arc<TurnQueue>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    /// Slots whose next turn opened on a login for an account with an
    /// in-flight enroll from *another* connection: the frame waits in the
    /// connection's queue and the slot is re-driven after completions are
    /// applied (the group commit that clears the account also posts the
    /// completion that wakes the loop).
    parked: Vec<(usize, String)>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<WorkerMetrics>,
    /// When the last idle/stall sweep ran (sweeps are rate-limited to
    /// [`SWEEP_INTERVAL`]).
    last_sweep: Instant,
}

/// The running pieces `AuthServer::spawn` assembles into a `ServerHandle`:
/// the reactor thread, the compute-worker threads, and the per-thread
/// metrics (reactor first, then one per compute worker).
pub(crate) struct ReactorParts {
    pub(crate) reactor_join: JoinHandle<()>,
    pub(crate) compute_joins: Vec<JoinHandle<()>>,
    pub(crate) metrics: Vec<Arc<WorkerMetrics>>,
}

/// Spawn the reactor thread and its hash-compute pool for `server` on
/// `listener`.
pub(crate) fn spawn_reactor(
    server: Arc<AuthServer>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> Result<ReactorParts, NetAuthError> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let waker = Arc::new(EventFd::new()?);
    epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
    epoll.add(waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;

    let turns = Arc::new(TurnQueue::new());
    let completions = Arc::new(Mutex::new(VecDeque::new()));
    let reactor_metrics = Arc::new(WorkerMetrics::default());
    let mut metrics = vec![Arc::clone(&reactor_metrics)];

    let compute_count = server.config().workers.max(1);
    let mut compute_joins = Vec::with_capacity(compute_count);
    for index in 0..compute_count {
        let worker_metrics = Arc::new(WorkerMetrics::default());
        metrics.push(Arc::clone(&worker_metrics));
        let server = Arc::clone(&server);
        let turns = Arc::clone(&turns);
        let completions = Arc::clone(&completions);
        let waker = Arc::clone(&waker);
        let shutdown = Arc::clone(&shutdown);
        compute_joins.push(
            std::thread::Builder::new()
                .name(format!("gp-auth-hash-{index}"))
                .spawn(move || {
                    compute_loop(
                        &server,
                        &turns,
                        &completions,
                        &waker,
                        &shutdown,
                        &worker_metrics,
                    )
                })
                .map_err(NetAuthError::Io)?,
        );
    }

    let mut reactor = Reactor {
        server,
        epoll,
        waker,
        listener,
        conns: Vec::new(),
        free: Vec::new(),
        deferred_free: Vec::new(),
        generations: Vec::new(),
        live: 0,
        turns,
        completions,
        parked: Vec::new(),
        shutdown,
        metrics: reactor_metrics,
        last_sweep: Instant::now(),
    };
    let reactor_join = std::thread::Builder::new()
        .name("gp-auth-reactor".into())
        .spawn(move || reactor.run())
        .map_err(NetAuthError::Io)?;
    Ok(ReactorParts {
        reactor_join,
        compute_joins,
        metrics,
    })
}

/// Hash-compute worker: coalesce queued turns, hash through the shared
/// [`crate::batch::BatchVerifier`], settle in order, post completions.
fn compute_loop(
    server: &AuthServer,
    turns: &TurnQueue,
    completions: &Mutex<VecDeque<Completion>>,
    waker: &EventFd,
    shutdown: &AtomicBool,
    metrics: &WorkerMetrics,
) {
    let verifier = server.verifier();
    let max_jobs = server.config().batch_max.max(1);
    loop {
        let batch = match turns.pop_coalesced(max_jobs, SHUTDOWN_POLL) {
            Popped::Turns(batch) => batch,
            Popped::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Popped::Closed => return,
        };

        // Merge every turn's jobs into one cross-connection batch and hash
        // it directly on this thread: the turn queue already coalesced, so
        // distinct compute workers hash distinct batches in parallel
        // instead of serializing through the verifier's leader queue.
        let mut job_counts = Vec::with_capacity(batch.len());
        let mut all_jobs = Vec::new();
        let mut merged = batch;
        for turn in &mut merged {
            job_counts.push(turn.jobs.len());
            all_jobs.append(&mut turn.jobs);
        }
        let digests = verifier.run_direct(&all_jobs);

        let mut offset = 0;
        let mut settled_turns = Vec::with_capacity(merged.len());
        let mut turn_meta = Vec::with_capacity(merged.len());
        for (turn, count) in merged.into_iter().zip(job_counts) {
            let slice = &digests[offset..offset + count];
            offset += count;
            turn_meta.push((turn.slot, turn.generation, turn.close_after));
            settled_turns.push(server.settle_turn(turn.planned, slice));
        }
        // The group-commit barrier for the whole coalesced batch: one
        // fsync per touched shard (and one grouped replication round)
        // covers every enrollment settled above, and only then are the
        // `EnrollOk`s allowed to travel back toward the wire.
        server.commit_enrolls(&mut settled_turns);

        let mut settled = Vec::with_capacity(settled_turns.len());
        for (turn, (slot, generation, close_after)) in settled_turns.into_iter().zip(turn_meta) {
            metrics
                .requests
                .fetch_add(turn.responses.len() as u64, Ordering::Relaxed);
            let mut bytes = Vec::new();
            let mut encode_failed = false;
            {
                let mut writer = FrameWriter::new(&mut bytes);
                for response in &turn.responses {
                    // A Vec sink cannot fail, so the only possible error
                    // is an over-`MAX_FRAME_LEN` response.  Silently
                    // dropping one response would desync every later
                    // reply on the connection; deliver the in-order
                    // prefix and close instead (the pool path fails the
                    // connection the same way).
                    if writer.write_frame_buffered(&response.encode()).is_err() {
                        encode_failed = true;
                        break;
                    }
                }
            }
            settled.push(Completion {
                slot,
                generation,
                bytes,
                close_after: close_after || encode_failed,
            });
        }
        {
            let mut queue = completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.extend(settled);
        }
        waker.signal();
    }
}

impl Reactor {
    // gp-lint: reactor-root
    fn run(&mut self) {
        let mut events = vec![EpollEvent::zeroed(); 256];
        while !self.shutdown.load(Ordering::SeqCst) {
            let n = match self
                .epoll
                .wait(&mut events, SHUTDOWN_POLL.as_millis() as i32)
            {
                Ok(n) => n,
                Err(_) => break,
            };
            for event in &events[..n] {
                let (token, mask) = (event.token(), event.events());
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => {
                        self.waker.drain();
                        self.process_completions();
                    }
                    token => self.connection_event((token - TOKEN_BASE) as usize, mask),
                }
            }
            // Completions can also land between waits; the eventfd covers
            // them, but a cheap drain here keeps latency at one loop turn.
            self.process_completions();
            self.redrive_parked();
            self.sweep_idle();
            // The batch is fully processed: slots closed during it are now
            // safe to recycle (no stale event can target them anymore).
            self.free.append(&mut self.deferred_free);
        }
        // Reactor exit: stop the compute pool (after the queue drains) and
        // drop every connection (peers see EOF).
        self.turns.close();
    }

    /// Accept every pending connection (the listener is level-triggered:
    /// stop at `WouldBlock`).
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if self.live >= self.server.config().max_connections.max(1) {
                // Over the cap: refuse by immediate close.
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let interest = EPOLLIN | EPOLLRDHUP;
            if self
                .epoll
                .add(fd, interest, slot as u64 + TOKEN_BASE)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(Connection {
                reader: FrameReader::new(std::io::BufReader::new(stream)),
                fd,
                out: WriteBuffer::new(),
                scratch: VerifyScratch::new(),
                generation: self.generations[slot],
                interest,
                turn_in_flight: false,
                closing: false,
                pending: std::collections::VecDeque::new(),
                read_eof: false,
                consecutive_errors: 0,
                last_activity: Instant::now(),
                write_stalled_since: None,
            });
            self.live += 1;
            self.metrics.connections.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn connection_event(&mut self, slot: usize, mask: u32) {
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            // Stale event for a slot already closed earlier in this batch.
            return;
        }
        if mask & EPOLLERR != 0 {
            self.close_connection(slot);
            return;
        }
        if mask & EPOLLOUT != 0 {
            self.drive_write(slot);
            if self.conns[slot].is_none() {
                return;
            }
        }
        if mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
                return;
            };
            let busy = conn.turn_in_flight || conn.closing;
            if !busy {
                self.drive_read(slot);
            } else if mask & EPOLLHUP != 0 {
                // Peer fully gone while we were busy: nothing to deliver.
                self.close_connection(slot);
            }
        } else if self.frame_ready(slot) {
            // A write drain just resumed reading, and complete frames are
            // already sitting in the user-space read buffer where epoll
            // cannot see them.
            self.drive_read(slot);
        }
    }

    /// Drain and process ready frames until the connection has nothing
    /// more to give right now.  The inner pass caps a turn at
    /// `pipeline_max` frames; complete frames may remain in the read
    /// buffer after an inline-settled turn, invisible to epoll, so loop
    /// while the reader still holds one and the connection can take more.
    fn drive_read(&mut self, slot: usize) {
        while self.drive_read_once(slot) {}
    }

    /// One read turn.  Returns whether another queued or buffered frame is
    /// ready to process immediately.
    fn drive_read_once(&mut self, slot: usize) -> bool {
        let pipeline_max = self.server.config().pipeline_max.max(1);
        let outcome = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return false;
            };
            // Top up the frame queue from the socket (unless a previous
            // turn stopped at a barrier and left frames queued, or the
            // socket already ended).
            let had_pending = !conn.pending.is_empty();
            if !had_pending && !conn.read_eof {
                while conn.pending.len() < pipeline_max {
                    match conn.reader.read_frame() {
                        Ok(frame) => conn.pending.push_back(Some(frame)),
                        Err(NetAuthError::IntegrityFailure) => conn.pending.push_back(None),
                        Err(NetAuthError::UnexpectedEof) => {
                            conn.read_eof = true;
                            break;
                        }
                        Err(NetAuthError::Io(e))
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            break;
                        }
                        // Protocol-fatal (bad version, oversized frame) or
                        // a hard I/O error: answer what we have, then
                        // close.
                        Err(_) => {
                            conn.read_eof = true;
                            break;
                        }
                    }
                }
                // Refresh the idle clock only when the peer produced at
                // least one *complete* frame: a byte-trickling peer
                // (slowloris) must keep aging toward the idle sweep,
                // exactly as it does against the pool's time-to-first-
                // frame timeout.
                if !conn.pending.is_empty() {
                    conn.last_activity = Instant::now();
                }
            }
            if conn.pending.is_empty() {
                if conn.read_eof {
                    ReadOutcome::Close
                } else {
                    ReadOutcome::Idle
                }
            } else {
                ReadOutcome::Prepare
            }
        };

        match outcome {
            ReadOutcome::Idle => {
                self.sync_interest(slot);
                false
            }
            ReadOutcome::Close => {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return false;
                };
                if conn.out.is_empty() {
                    self.close_connection(slot);
                } else {
                    // Deliver what the peer is owed first (it may have
                    // half-closed after sending its requests); the drain
                    // or the write-stall sweep finishes the close.
                    conn.closing = true;
                    self.sync_interest(slot);
                }
                false
            }
            ReadOutcome::Prepare => {
                let server = Arc::clone(&self.server);
                let (prepared, close_after) = {
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        return false;
                    };
                    let prepared = server.prepare_turn(
                        &mut conn.pending,
                        &mut conn.scratch,
                        &self.metrics,
                        &mut conn.consecutive_errors,
                    );
                    // Close once this turn's responses flush if it ends
                    // the conversation — but an EOF only counts once no
                    // queued frames remain to answer.
                    let close = prepared.quitting
                        || conn.consecutive_errors >= MAX_CONSECUTIVE_PROTOCOL_ERRORS
                        || (conn.read_eof && conn.pending.is_empty());
                    (prepared, close)
                };
                if prepared.planned.is_empty() && prepared.jobs.is_empty() {
                    if let Some(username) = prepared.parked {
                        // The turn opened on a login racing another
                        // connection's uncommitted enroll for the same
                        // account.  The frame is back at the queue front;
                        // park the slot until the enroll's group commit
                        // clears the account (`redrive_parked`).
                        if !self.parked.iter().any(|(s, _)| *s == slot) {
                            self.parked.push((slot, username));
                        }
                        self.sync_interest(slot);
                        return false;
                    }
                }
                if prepared.jobs.is_empty() {
                    // No hashing anywhere in the turn: settle on the
                    // reactor thread (lockout bookkeeping and encoding
                    // only — microseconds; everything `h^k`-priced became
                    // a job above).  The settle path statically reaches the
                    // WAL group commit, but a turn with zero hash jobs by
                    // construction carries no enrollment, so the commit
                    // branch cannot execute here.
                    // gp-lint: allow(L5, no-hash turns carry no enrolls; commit path unreachable)
                    let responses = server.settle_responses(prepared.planned, &[]);
                    self.metrics
                        .requests
                        .fetch_add(responses.len() as u64, Ordering::Relaxed);
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        return false;
                    };
                    let mut encode_failed = false;
                    for response in &responses {
                        // Same policy as the compute path: an oversized
                        // response closes the connection after the
                        // in-order prefix rather than desyncing it.
                        if conn.out.queue_frame(&response.encode()).is_err() {
                            encode_failed = true;
                            break;
                        }
                    }
                    conn.closing = close_after || encode_failed;
                    self.drive_write(slot);
                    self.frame_ready(slot)
                } else {
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        return false;
                    };
                    conn.turn_in_flight = true;
                    let turn = Turn {
                        slot,
                        generation: conn.generation,
                        planned: prepared.planned,
                        jobs: prepared.jobs,
                        close_after,
                    };
                    self.sync_interest(slot);
                    self.turns.push(turn);
                    false
                }
            }
        }
    }

    /// Whether `slot` is still open, allowed to read, and already holds a
    /// frame the event loop cannot learn about from epoll — queued behind
    /// a barrier or complete in the user-space read buffer.
    fn frame_ready(&self, slot: usize) -> bool {
        let Some(Some(conn)) = self.conns.get(slot) else {
            return false;
        };
        !conn.turn_in_flight
            && !conn.closing
            && conn.out.pending() < WRITE_BACKPRESSURE_CAP
            && (!conn.pending.is_empty() || conn.reader.frame_buffered() || conn.read_eof)
    }

    /// Flush pending bytes; close if the connection finished its goodbye,
    /// otherwise reconcile epoll interest (EPOLLOUT while backed up).
    fn drive_write(&mut self, slot: usize) {
        let result = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let before = conn.out.pending();
            let result = conn.out.flush_to(conn.reader.get_mut().get_mut());
            // Track write progress: any accepted byte restarts the stall
            // window, so only a peer taking *nothing* for WRITE_TIMEOUT
            // is declared dead by the sweep.
            conn.write_stalled_since = match result {
                Ok(false) if conn.out.pending() == before => {
                    Some(conn.write_stalled_since.unwrap_or_else(Instant::now))
                }
                Ok(false) => Some(Instant::now()),
                _ => None,
            };
            result
        };
        match result {
            Ok(true) => {
                let closing = self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|conn| conn.closing);
                if closing {
                    self.close_connection(slot);
                } else {
                    self.sync_interest(slot);
                }
            }
            Ok(false) => self.sync_interest(slot),
            Err(_) => self.close_connection(slot),
        }
    }

    /// Apply settled turns from the compute pool to their connections.
    fn process_completions(&mut self) {
        let drained: Vec<Completion> = {
            let mut queue = self
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.drain(..).collect()
        };
        for completion in drained {
            let Some(Some(conn)) = self.conns.get_mut(completion.slot) else {
                continue;
            };
            if conn.generation != completion.generation {
                // The connection this turn belonged to is gone; the slot
                // was recycled.  Drop the bytes.
                continue;
            }
            conn.turn_in_flight = false;
            conn.out.queue_bytes(&completion.bytes);
            if completion.close_after {
                conn.closing = true;
            }
            self.drive_write(completion.slot);
            // The turn's completion re-opens reading; frames that arrived
            // during the turn may be buffered in user space (epoll only
            // sees the kernel buffer).
            if self.frame_ready(completion.slot) {
                self.drive_read(completion.slot);
            }
        }
    }

    /// Re-drive slots parked at the per-account write barrier whose
    /// account has since group-committed.  Runs after completions are
    /// applied each loop turn: the commit that clears an account also
    /// posts the enroll's completion, so the barrier costs one loop wake,
    /// not a poll interval.  Slots whose account is still pending re-park.
    fn redrive_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.parked);
        for (slot, username) in entries {
            if self.conns.get(slot).is_none_or(|c| c.is_none()) {
                continue; // closed while parked
            }
            if self.server.pending().is_pending(&username) {
                self.parked.push((slot, username));
                continue;
            }
            if self.frame_ready(slot) {
                self.drive_read(slot);
            }
        }
    }

    /// Reconcile the registered interest mask with the connection state.
    fn sync_interest(&mut self, slot: usize) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired != conn.interest
            && self
                .epoll
                .modify(conn.fd, desired, slot as u64 + TOKEN_BASE)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Drop connections that have been silent past the idle timeout (the
    /// slowloris defense the pool implements with read timeouts) and
    /// connections whose peer has accepted no response bytes for
    /// `ServerConfig::write_timeout` (the pool enforces the same limit as
    /// a blocking-write timeout — without this, a peer that stops reading
    /// would pin its buffers and a `max_connections` slot forever).
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < SWEEP_INTERVAL {
            return;
        }
        self.last_sweep = now;
        let idle_timeout = self.server.config().idle_timeout;
        let write_timeout = self.server.config().write_timeout;
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let write_dead = !write_timeout.is_zero()
                    && conn
                        .write_stalled_since
                        .is_some_and(|since| now.duration_since(since) >= write_timeout);
                let idle = !conn.turn_in_flight
                    && conn.out.is_empty()
                    && !conn.closing
                    && !idle_timeout.is_zero()
                    && now.duration_since(conn.last_activity) >= idle_timeout;
                (write_dead || idle).then_some(slot)
            })
            .collect();
        for slot in stale {
            self.close_connection(slot);
        }
    }

    fn close_connection(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.fd);
            self.generations[slot] = self.generations[slot].wrapping_add(1);
            self.deferred_free.push(slot);
            self.parked.retain(|(s, _)| *s != slot);
            self.live -= 1;
            // Dropping `conn` closes the stream: the peer sees EOF.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AuthClient;
    use crate::protocol::{ClientMessage, LoginDecision, ServerMessage};
    use crate::server::{ServerConfig, ServingMode};
    use gp_geometry::Point;
    use std::io::{Read as _, Write as _};
    use std::time::Duration;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(40.0, 50.0),
            Point::new(130.0, 210.0),
            Point::new(305.0, 70.0),
            Point::new(410.0, 300.0),
            Point::new(220.0, 145.0),
        ]
    }

    fn reactor_config() -> ServerConfig {
        ServerConfig {
            serving: ServingMode::Reactor,
            ..ServerConfig::fast_for_tests()
        }
    }

    fn spawn(config: ServerConfig) -> crate::server::ServerHandle {
        AuthServer::new(config)
            .spawn()
            .expect("spawn reactor server")
    }

    #[test]
    fn end_to_end_enroll_login_lockout_through_the_reactor() {
        let handle = spawn(reactor_config());
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        let (scheme, n) = client.get_config().unwrap();
        assert_eq!((scheme.as_str(), n), ("centered:9", 5));
        client.enroll("alice", &clicks()).unwrap();
        let (decision, _) = client.login("alice", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        for i in 1..=3u32 {
            let (decision, failures) = client.login("alice", &wrong).unwrap();
            assert_eq!((decision, failures), (LoginDecision::Rejected, i));
        }
        let (decision, _) = client.login("alice", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::LockedOut);
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn pipelined_burst_with_corrupt_frame_stays_in_sync() {
        use crate::framing::FaultyBuffer;
        let handle = spawn(reactor_config());
        {
            let mut client = AuthClient::connect(handle.addr()).unwrap();
            client.enroll("alice", &clicks()).unwrap();
            client.quit().unwrap();
        }
        // Hand-build a 3-login pipeline with the middle payload corrupted
        // and push the raw bytes at the reactor.
        let mut faulty = FaultyBuffer::default().corrupt_frame_payload(1);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            for _ in 0..3 {
                writer
                    .write_frame(
                        &ClientMessage::Login {
                            username: "alice".into(),
                            clicks: clicks(),
                        }
                        .encode(),
                    )
                    .unwrap();
            }
        }
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&faulty.bytes).unwrap();
        let mut reader = FrameReader::new(&mut stream);
        let mut responses = Vec::new();
        for _ in 0..3 {
            responses.push(ServerMessage::decode(reader.read_frame().unwrap()).unwrap());
        }
        assert_eq!(
            responses[0],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert!(
            matches!(&responses[1], ServerMessage::Error { reason } if reason.contains("integrity"))
        );
        assert_eq!(
            responses[2],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            },
            "pipeline stays in sync across the corrupt frame"
        );
        assert!(!handle.server().lockout().is_locked("alice"));
        handle.shutdown();
    }

    #[test]
    fn enroll_then_login_in_one_pipelined_burst_sees_the_account() {
        // Per-account write barrier: a login pipelined right behind an
        // enroll for the same account must be prepared only after the
        // enrollment group-commits, even though both hash through the
        // compute pool.
        let handle = spawn(reactor_config());
        let mut client = AuthClient::connect(handle.addr()).unwrap();
        let burst = vec![
            ClientMessage::Enroll {
                username: "eve".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "eve".into(),
                clicks: clicks(),
            },
            ClientMessage::GetConfig,
        ];
        let responses = client.request_pipelined(&burst).unwrap();
        assert_eq!(responses[0], ServerMessage::EnrollOk);
        assert_eq!(
            responses[1],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert!(matches!(responses[2], ServerMessage::Config { .. }));
        // A duplicate enrollment mid-pipeline fails only itself.
        let responses = client
            .request_pipelined(&[
                ClientMessage::Enroll {
                    username: "eve".into(),
                    clicks: clicks(),
                },
                ClientMessage::Login {
                    username: "eve".into(),
                    clicks: clicks(),
                },
            ])
            .unwrap();
        assert!(
            matches!(&responses[0], ServerMessage::Error { reason } if reason.contains("already")
                || reason.contains("duplicate") || reason.contains("exists")),
            "duplicate enroll rejected: {:?}",
            responses[0]
        );
        assert_eq!(
            responses[1],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn login_racing_an_uncommitted_enroll_parks_its_slot_while_others_proceed() {
        let handle = spawn(reactor_config());
        {
            let mut client = AuthClient::connect(handle.addr()).unwrap();
            client.enroll("carol", &clicks()).unwrap();
            client.quit().unwrap();
        }
        // Hold victor's account barrier open, exactly as if his
        // enrollment's group commit were still in flight on another
        // connection.
        handle.server().pending().begin("victor");

        let mut racing = std::net::TcpStream::connect(handle.addr()).unwrap();
        racing
            .set_read_timeout(Some(Duration::from_millis(400)))
            .unwrap();
        let mut request = Vec::new();
        FrameWriter::new(&mut request)
            .write_frame(
                &ClientMessage::Login {
                    username: "victor".into(),
                    clicks: clicks(),
                }
                .encode(),
            )
            .unwrap();
        racing.write_all(&request).unwrap();

        // An unrelated account's login flows around the parked slot.
        let mut other = AuthClient::connect(handle.addr()).unwrap();
        let (decision, _) = other.login("carol", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        other.quit().unwrap();

        // The racing login is still parked: nothing on the wire.
        let mut buf = [0u8; 1];
        match racing.read(&mut buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            other => panic!("parked login answered before the barrier cleared: {other:?}"),
        }

        // Lift the barrier: `redrive_parked` re-prepares the slot within
        // one loop wake and the response arrives (Rejected — the account
        // was never actually enrolled in this test).
        handle.server().pending().end("victor");
        racing
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let frame = FrameReader::new(&mut racing).read_frame().unwrap();
        match ServerMessage::decode(frame).unwrap() {
            ServerMessage::Error { reason } => {
                assert!(reason.contains("unknown account"), "{reason}");
            }
            other => panic!("unexpected response: {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn batch_occupancy_grows_under_concurrent_pipelined_load() {
        let handle = spawn(reactor_config());
        for i in 0..32 {
            let mut client = AuthClient::connect(handle.addr()).unwrap();
            client.enroll(&format!("user{i}"), &clicks()).unwrap();
            client.quit().unwrap();
        }
        // Enrollment hashing also routes through the verifier; measure the
        // login load against a post-enrollment baseline.
        let enrolled_attempts = handle.stats().batch.attempts;
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = AuthClient::connect(addr).unwrap();
                    for round in 0..4 {
                        let burst: Vec<ClientMessage> = (0..8)
                            .map(|i| ClientMessage::Login {
                                username: format!("user{}", (t * 8 + i + round) % 32),
                                clicks: clicks(),
                            })
                            .collect();
                        let responses = client.request_pipelined(&burst).unwrap();
                        assert_eq!(responses.len(), 8);
                        for r in responses {
                            assert!(matches!(
                                r,
                                ServerMessage::LoginResult {
                                    decision: LoginDecision::Accepted,
                                    ..
                                }
                            ));
                        }
                    }
                    client.quit().unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.batch.attempts - enrolled_attempts, 4 * 4 * 8);
        assert!(
            stats.batch.max_run >= 8,
            "an 8-deep pipelined turn must fill ≥8 lanes of one run: {:?}",
            stats.batch
        );
        assert!(
            stats.batch.mean_batch() > 1.5,
            "concurrent pipelined load must coalesce: {:?}",
            stats.batch
        );
        // Requests were served by the reactor + compute pool.
        let total: u64 = stats.workers.iter().map(|w| w.requests).sum();
        assert!(total >= 4 * 4 * 8);
        handle.shutdown();
    }

    #[test]
    fn hundreds_of_idle_connections_do_not_block_serving() {
        // The pool would need one thread per connection to survive this;
        // the reactor holds them all with workers=2 (3 threads total).
        let config = ServerConfig {
            workers: 2,
            ..reactor_config()
        };
        let handle = spawn(config);
        let idle: Vec<std::net::TcpStream> = (0..128)
            .map(|_| std::net::TcpStream::connect(handle.addr()).expect("idle connect"))
            .collect();
        // With 128 parked connections, a real client is still served.
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        client.enroll("bob", &clicks()).unwrap();
        let (decision, _) = client.login("bob", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        client.quit().unwrap();
        let stats = handle.stats();
        assert!(stats.workers[0].connections >= 129);
        drop(idle);
        handle.shutdown();
    }

    #[test]
    fn idle_connections_are_swept_after_the_timeout() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(150),
            ..reactor_config()
        };
        let handle = spawn(config);
        let mut idle = std::net::TcpStream::connect(handle.addr()).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        let got = idle.read(&mut buf).expect("read after server close");
        assert_eq!(got, 0, "idle connection must be closed by the sweep");
        handle.shutdown();
    }

    #[test]
    fn max_connections_cap_refuses_by_immediate_close() {
        let config = ServerConfig {
            max_connections: 2,
            ..reactor_config()
        };
        let handle = spawn(config);
        let _a = std::net::TcpStream::connect(handle.addr()).unwrap();
        let _b = std::net::TcpStream::connect(handle.addr()).unwrap();
        // Give the reactor a moment to register both.
        std::thread::sleep(Duration::from_millis(100));
        let mut refused = std::net::TcpStream::connect(handle.addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        let got = refused.read(&mut buf).unwrap_or(0);
        assert_eq!(got, 0, "over-cap connection is closed immediately");
        handle.shutdown();
    }

    /// Encoded request bytes whose responses are each ~1 KiB: logins for
    /// unknown accounts echo the (maximally long, index-tagged) username
    /// in the error reason, so a few thousand requests produce megabytes
    /// of response traffic — more than kernel socket buffers absorb,
    /// which is what forces the 256 KiB write-backpressure cap and the
    /// EPOLLOUT partial-write path over real TCP.
    fn bulky_request_bytes(count: usize) -> Vec<u8> {
        let filler = "x".repeat(960);
        let mut bytes = Vec::new();
        let mut writer = FrameWriter::new(&mut bytes);
        for i in 0..count {
            writer
                .write_frame_buffered(
                    &ClientMessage::Login {
                        username: format!("u{i:05}-{filler}"),
                        clicks: clicks(),
                    }
                    .encode(),
                )
                .unwrap();
        }
        bytes
    }

    #[test]
    fn peer_that_stops_reading_is_swept_after_the_write_timeout() {
        // ~6 MiB of responses for a peer that reads nothing: the server's
        // write buffer must stall at the backpressure cap, and a stall
        // that makes no progress for `write_timeout` must close the
        // connection — otherwise the peer pins its buffers and a
        // `max_connections` slot forever.
        let config = ServerConfig {
            write_timeout: Duration::from_millis(300),
            ..reactor_config()
        };
        let handle = spawn(config);
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let bytes = bulky_request_bytes(6000);
        let mut write_half = stream.try_clone().unwrap();
        let writer_thread = std::thread::spawn(move || {
            // Stalls once the server pauses reading at its cap; errors
            // out when the sweep resets the connection.  Either way it
            // must not outlive the sweep window by much.
            let _ = write_half.write_all(&bytes);
        });
        // Accept nothing for well past the write timeout.
        std::thread::sleep(Duration::from_millis(1200));
        // The sweep must have closed the connection: reads drain whatever
        // the kernel already buffered and then hit EOF or a reset —
        // never a receive timeout.
        let deadline = Instant::now() + Duration::from_secs(8);
        let mut sink = [0u8; 65536];
        loop {
            match stream.read(&mut sink) {
                Ok(0) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    panic!("read timed out: stalled connection was never swept");
                }
                // Reset: the server dropped us with data in flight.
                Err(_) => break,
                Ok(_) => {}
            }
            assert!(
                Instant::now() < deadline,
                "stalled connection was never swept"
            );
        }
        writer_thread.join().unwrap();
        // The slot is free again: a well-behaved client is served.
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        client.enroll("dave", &clicks()).unwrap();
        let (decision, _) = client.login("dave", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn write_backpressure_survives_a_slow_reader() {
        // ~4 MiB of responses bursted while the client reads nothing for
        // 300 ms, then drained: forces the cap, EPOLLOUT partial writes
        // and the read-pause/resume cycle — and every response must still
        // come back in order (the index-tagged username proves it).
        let handle = spawn(reactor_config());
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let count = 4000;
        let bytes = bulky_request_bytes(count);
        let mut write_half = stream.try_clone().unwrap();
        let writer_thread = std::thread::spawn(move || {
            write_half
                .write_all(&bytes)
                .expect("request burst delivered");
        });
        // Let the server hit the cap while we read nothing (well under
        // the 5 s default write_timeout, so it must NOT be swept).
        std::thread::sleep(Duration::from_millis(300));
        {
            let mut reader = FrameReader::new(&mut stream);
            for i in 0..count {
                let frame = reader
                    .read_frame()
                    .unwrap_or_else(|e| panic!("response {i} missing: {e}"));
                match ServerMessage::decode(frame).unwrap() {
                    ServerMessage::Error { reason } => assert!(
                        reason.contains(&format!("u{i:05}-")),
                        "response {i} out of order: {}",
                        &reason[..reason.len().min(40)]
                    ),
                    other => panic!("unexpected response {i}: {other:?}"),
                }
            }
        }
        writer_thread.join().unwrap();
        // The connection survived the whole cycle and is still in sync.
        let mut probe = Vec::new();
        FrameWriter::new(&mut probe)
            .write_frame(&ClientMessage::GetConfig.encode())
            .unwrap();
        stream.write_all(&probe).unwrap();
        let frame = FrameReader::new(&mut stream).read_frame().unwrap();
        assert!(matches!(
            ServerMessage::decode(frame).unwrap(),
            ServerMessage::Config { .. }
        ));
        handle.shutdown();
    }
}
