//! WAL-streaming replication between cluster nodes.
//!
//! Each node runs a *replication listener* alongside its auth listener.
//! When a primary accepts an enrollment it appends the record to its own
//! WAL as usual, then streams the **same WAL payload bytes** (see
//! [`gp_passwords::WalEntry::to_payload`]) to the account's backup — the
//! key's second ring successor.  The backup appends the record to *its*
//! durable store (WAL-first, via
//! [`gp_passwords::ShardedPasswordStore::apply_replicated`]) before
//! acknowledging, so a synchronous-mode `EnrollOk` means the account is
//! durable on two nodes.  Applying is insert-or-replace, which makes
//! redelivery after a reconnect or a primary retry harmless.
//!
//! Wire format: the same length-prefixed, integrity-checked frames as the
//! client protocol ([`crate::framing`]), carrying [`ReplicaMessage`]s in
//! their own tag space:
//!
//! ```text
//! Hello   { node_id }        sender introduces itself (once per conn)
//! HelloOk { node_id }        listener's reply
//! Record  { seq, payload }   one WAL entry, payload = WalEntry::to_payload
//! Ack     { seq }            the record is durable on the replica
//! ```
//!
//! `seq` is assigned under the per-connection write lock, so records hit
//! the stream in sequence order and acks (which the listener sends in
//! processing order) advance a high-water mark: `acked >= seq` proves
//! *this* record was applied.
//!
//! Failure handling is crash-only: a send failure is retried once on a
//! fresh connection (transient drop), after which the peer is declared
//! dead and removed from the sender's ring — the next successor (or, with
//! no live peer left, local-only operation) takes over.  A dead peer that
//! restarts is re-admitted with [`Replicator::revive`].

use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gp_passwords::wal::WalEntry;
use gp_passwords::{HashRing, ShardedPasswordStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// How often blocked replication I/O loops wake to poll the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

const TAG_HELLO: u8 = 0x41;
const TAG_HELLO_OK: u8 = 0x42;
const TAG_RECORD: u8 = 0x43;
const TAG_ACK: u8 = 0x44;

/// Maximum node-ID length accepted in a handshake.
const MAX_NODE_ID_LEN: usize = 256;

/// Messages exchanged on a replication connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaMessage {
    /// The sender introduces itself (first frame on every connection).
    Hello {
        /// Sending node's ID.
        node_id: String,
    },
    /// The listener's handshake reply.
    HelloOk {
        /// Listening node's ID.
        node_id: String,
    },
    /// One WAL entry to apply.
    Record {
        /// Connection-scoped sequence number (monotone per sender).
        seq: u64,
        /// [`WalEntry::to_payload`] bytes — bit-identical to the bytes the
        /// primary appended to its own WAL.
        payload: Vec<u8>,
    },
    /// The record with this sequence number is durable on the replica.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
}

fn malformed(reason: &str) -> NetAuthError {
    NetAuthError::Malformed {
        reason: reason.to_string(),
    }
}

fn put_node_id(buf: &mut BytesMut, id: &str) {
    buf.put_u16(id.len() as u16);
    buf.put_slice(id.as_bytes());
}

fn get_node_id(buf: &mut Bytes) -> Result<String, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated node id length"));
    }
    let len = buf.get_u16() as usize;
    if len > MAX_NODE_ID_LEN {
        return Err(malformed("node id too long"));
    }
    if buf.remaining() < len {
        return Err(malformed("truncated node id"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8 in node id"))
}

impl ReplicaMessage {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ReplicaMessage::Hello { node_id } => {
                buf.put_u8(TAG_HELLO);
                put_node_id(&mut buf, node_id);
            }
            ReplicaMessage::HelloOk { node_id } => {
                buf.put_u8(TAG_HELLO_OK);
                put_node_id(&mut buf, node_id);
            }
            ReplicaMessage::Record { seq, payload } => {
                buf.put_u8(TAG_RECORD);
                buf.put_u64(*seq);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
            ReplicaMessage::Ack { seq } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64(*seq);
            }
        }
        buf.freeze()
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, NetAuthError> {
        if buf.is_empty() {
            return Err(malformed("empty replication message"));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_HELLO => ReplicaMessage::Hello {
                node_id: get_node_id(&mut buf)?,
            },
            TAG_HELLO_OK => ReplicaMessage::HelloOk {
                node_id: get_node_id(&mut buf)?,
            },
            TAG_RECORD => {
                if buf.remaining() < 12 {
                    return Err(malformed("truncated record header"));
                }
                let seq = buf.get_u64();
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(malformed("truncated record payload"));
                }
                let payload = buf.copy_to_bytes(len).to_vec();
                ReplicaMessage::Record { seq, payload }
            }
            TAG_ACK => {
                if buf.remaining() < 8 {
                    return Err(malformed("truncated ack"));
                }
                ReplicaMessage::Ack { seq: buf.get_u64() }
            }
            other => return Err(malformed(&format!("unknown replication tag {other:#04x}"))),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes after replication message"));
        }
        Ok(msg)
    }
}

/// When an enrollment is acknowledged to the client relative to
/// replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Wait for the backup's `Ack` before releasing `EnrollOk` — an acked
    /// enrollment is durable on two nodes and survives a primary kill.
    Sync,
    /// Release `EnrollOk` after the local WAL append; the record streams
    /// to the backup in the background.  Faster, but an enrollment acked
    /// in the window before the backup applies it is lost if the primary
    /// dies.
    Async,
}

/// Something a server can hand each locally-durable enrollment to for
/// replication before acknowledging the client.
pub trait ReplicationSink: Send + Sync + std::fmt::Debug {
    /// Replicate `entry`; in synchronous mode, returns only once a backup
    /// has acknowledged durability (or no live backup exists).
    fn replicate(&self, entry: &WalEntry) -> Result<(), NetAuthError>;

    /// Replicate a whole group-commit batch.  The default serializes one
    /// `replicate` round-trip per entry; [`Replicator`] overrides it to
    /// pipeline each backup's records and wait on a single ack high-water
    /// mark, so sync-mode backup acks join the group barrier instead of
    /// queueing behind it.
    fn replicate_group(&self, entries: &[WalEntry]) -> Result<(), NetAuthError> {
        for entry in entries {
            self.replicate(entry)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Listener (replica side)
// ---------------------------------------------------------------------------

/// Handle to a running replication listener.
///
/// The listener accepts connections from peer primaries and applies every
/// [`ReplicaMessage::Record`] to the node's own durable store before
/// acking.  Dropping the handle shuts the listener down.
#[derive(Debug)]
pub struct ReplicationHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
}

impl ReplicationHandle {
    /// Address peers should stream records to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of records applied to the local store so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Stop accepting and applying.  Connection threads notice within one
    /// poll tick; records already applied stay durable (crash-only — there
    /// is no other stop path for the fault harness to diverge from).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ReplicationHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn a replication listener on an ephemeral loopback port, applying
/// records to `store`.
pub fn spawn_replication_listener(
    node_id: &str,
    store: Arc<ShardedPasswordStore>,
) -> Result<ReplicationHandle, NetAuthError> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));
    let node_id = node_id.to_string();

    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        let applied = Arc::clone(&applied);
        std::thread::Builder::new()
            .name(format!("repl-accept-{node_id}"))
            .spawn(move || {
                let mut conn_joins = Vec::new();
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let store = Arc::clone(&store);
                            let shutdown = Arc::clone(&shutdown);
                            let applied = Arc::clone(&applied);
                            let node_id = node_id.clone();
                            if let Ok(join) = std::thread::Builder::new()
                                .name(format!("repl-conn-{node_id}"))
                                .spawn(move || {
                                    serve_replica_conn(
                                        stream, &node_id, &store, &shutdown, &applied,
                                    )
                                })
                            {
                                conn_joins.push(join);
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for join in conn_joins {
                    let _ = join.join();
                }
            })?
    };

    Ok(ReplicationHandle {
        addr,
        shutdown,
        accept_join: Some(accept_join),
        applied,
    })
}

/// One inbound replication connection: handshake, then apply-and-ack
/// records until the peer hangs up or shutdown is requested.
fn serve_replica_conn(
    stream: TcpStream,
    node_id: &str,
    store: &ShardedPasswordStore,
    shutdown: &AtomicBool,
    applied: &AtomicU64,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(BufReader::new(read_half));
    let mut writer = FrameWriter::new(BufWriter::new(stream));

    let mut greeted = false;
    while !shutdown.load(Ordering::SeqCst) {
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(NetAuthError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let message = match ReplicaMessage::decode(frame) {
            Ok(message) => message,
            Err(_) => return,
        };
        match message {
            ReplicaMessage::Hello { .. } if !greeted => {
                greeted = true;
                let reply = ReplicaMessage::HelloOk {
                    node_id: node_id.to_string(),
                };
                if writer.write_frame(&reply.encode()).is_err() {
                    return;
                }
            }
            ReplicaMessage::Record { seq, payload } if greeted => {
                let Ok(entry) = WalEntry::from_payload(&payload) else {
                    return;
                };
                // Durable (WAL-first) apply *before* the ack leaves: an
                // acked record survives this node crashing right after.
                if store.apply_replicated(&entry).is_err() {
                    return;
                }
                applied.fetch_add(1, Ordering::Relaxed);
                if writer
                    .write_frame(&ReplicaMessage::Ack { seq }.encode())
                    .is_err()
                {
                    return;
                }
            }
            // Hello out of order, HelloOk/Ack from a sender, or a record
            // before the handshake: protocol violation, drop the conn.
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Replicator (primary side)
// ---------------------------------------------------------------------------

/// Tuning for a [`Replicator`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicatorConfig {
    /// Sync (ack-gated) or async (fire-and-forget) replication.
    pub mode: ReplicationMode,
    /// How long a synchronous send waits for the backup's ack before
    /// treating the attempt as failed.
    pub ack_timeout: Duration,
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        Self {
            mode: ReplicationMode::Sync,
            ack_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
        }
    }
}

/// Ack high-water mark for one outbound connection.
#[derive(Debug, Default)]
struct AckState {
    highest: StdMutex<u64>,
    advanced: Condvar,
    broken: AtomicBool,
}

impl AckState {
    fn record(&self, seq: u64) {
        let mut highest = self.highest.lock().unwrap_or_else(|e| e.into_inner());
        if seq > *highest {
            *highest = seq;
        }
        drop(highest);
        self.advanced.notify_all();
    }

    fn mark_broken(&self) {
        self.broken.store(true, Ordering::SeqCst);
        self.advanced.notify_all();
    }

    /// Wait until the high-water mark reaches `seq`, the connection
    /// breaks, or `timeout` elapses.
    fn wait_for(&self, seq: u64, timeout: Duration) -> Result<(), NetAuthError> {
        let deadline = Instant::now() + timeout;
        let mut highest = self.highest.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *highest >= seq {
                return Ok(());
            }
            if self.broken.load(Ordering::SeqCst) {
                return Err(NetAuthError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "replication connection broke before the ack",
                )));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetAuthError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for replication ack",
                )));
            }
            let (guard, _) = self
                .advanced
                .wait_timeout(highest, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            highest = guard;
        }
    }
}

/// One live outbound connection to a peer's replication listener.
#[derive(Debug)]
struct PeerConn {
    /// Kept for [`TcpStream::shutdown`] on teardown (the writer owns a
    /// buffered clone of the same socket).
    stream: TcpStream,
    writer: FrameWriter<BufWriter<TcpStream>>,
    acks: Arc<AckState>,
}

impl Drop for PeerConn {
    fn drop(&mut self) {
        // Wake the detached ack-reader thread so it exits promptly.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[derive(Debug)]
struct PeerState {
    /// Behind a lock so a restarted node's fresh ephemeral port can be
    /// installed ([`Replicator::update_peer`]) without rebuilding the map.
    addr: Mutex<SocketAddr>,
    conn: Mutex<Option<PeerConn>>,
}

/// The primary-side replication sender.
///
/// Owns a [`HashRing`] over the full cluster membership (itself included)
/// and, for each entry, streams the WAL payload to the entry's backup —
/// the first ring successor of the account that is not this node.  Peers
/// that fail a send twice are declared dead and leave the ring, shifting
/// subsequent traffic to the next successor.
#[derive(Debug)]
pub struct Replicator {
    node_id: String,
    config: ReplicatorConfig,
    ring: Mutex<HashRing>,
    peers: BTreeMap<String, PeerState>,
    next_seq: AtomicU64,
}

impl Replicator {
    /// A replicator for node `node_id` with the given peer replication
    /// addresses (`node_id` itself must not be in `peers`).
    pub fn new(
        node_id: &str,
        peers: BTreeMap<String, SocketAddr>,
        config: ReplicatorConfig,
    ) -> Self {
        let mut ring = HashRing::with_nodes(peers.keys());
        ring.join(node_id);
        Self {
            node_id: node_id.to_string(),
            config,
            ring: Mutex::new(ring),
            peers: peers
                .into_iter()
                .map(|(id, addr)| {
                    (
                        id,
                        PeerState {
                            addr: Mutex::new(addr),
                            conn: Mutex::new(None),
                        },
                    )
                })
                .collect(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// This node's ID.
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// The configured replication mode.
    pub fn mode(&self) -> ReplicationMode {
        self.config.mode
    }

    /// Whether `node` is currently considered live.
    pub fn is_live(&self, node: &str) -> bool {
        self.ring.lock().contains(node)
    }

    /// Re-admit a previously dead peer (e.g. after an operator restarts
    /// it); the ring is deterministic, so its old key ranges come back.
    pub fn revive(&self, node: &str) -> bool {
        self.peers.contains_key(node) && self.ring.lock().join(node)
    }

    /// Point `node` at a new replication address (a restarted node binds a
    /// fresh ephemeral port) and re-admit it to the ring.  Returns whether
    /// the node was known.
    pub fn update_peer(&self, node: &str, addr: SocketAddr) -> bool {
        let Some(peer) = self.peers.get(node) else {
            return false;
        };
        *peer.addr.lock() = addr;
        *peer.conn.lock() = None;
        self.ring.lock().join(node);
        true
    }

    /// Drop every open outbound connection (fault-injection hook: the next
    /// send sees a cold connection, exactly as after a network blip).
    pub fn drop_connections(&self) {
        for peer in self.peers.values() {
            *peer.conn.lock() = None;
        }
    }

    /// Connect to `peer` and start its detached ack-reader thread.
    fn connect(&self, peer: &PeerState) -> Result<PeerConn, NetAuthError> {
        let addr = *peer.addr.lock();
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(SHUTDOWN_POLL))?;
        let acks = Arc::new(AckState::default());
        let write_half = stream.try_clone()?;
        let mut conn = PeerConn {
            stream,
            writer: FrameWriter::new(BufWriter::new(write_half)),
            acks: Arc::clone(&acks),
        };
        let hello = ReplicaMessage::Hello {
            node_id: self.node_id.clone(),
        };
        conn.writer.write_frame(&hello.encode())?;
        // The ack reader owns the read half until the socket dies; it is
        // detached — PeerConn::drop shuts the socket down to unpark it.
        let _ = std::thread::Builder::new()
            .name(format!("repl-acks-{}", self.node_id))
            .spawn(move || {
                let mut reader = FrameReader::new(BufReader::new(read_half));
                loop {
                    match reader.read_frame() {
                        Ok(frame) => match ReplicaMessage::decode(frame) {
                            Ok(ReplicaMessage::Ack { seq }) => acks.record(seq),
                            Ok(ReplicaMessage::HelloOk { .. }) => {}
                            _ => {
                                acks.mark_broken();
                                return;
                            }
                        },
                        Err(NetAuthError::Io(e))
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => {
                            acks.mark_broken();
                            return;
                        }
                    }
                }
            });
        Ok(conn)
    }

    /// One send attempt: write the record on `peer`'s connection (opening
    /// it if needed) and, in sync mode, wait for the ack.
    fn send_once(&self, peer: &PeerState, payload: &[u8]) -> Result<(), NetAuthError> {
        self.send_group_once(peer, &[payload])
    }

    /// One grouped send attempt: pipeline every payload onto `peer`'s
    /// connection (opening it if needed) back-to-back, then — in sync mode
    /// — wait once for the *last* record's ack.  The listener acks in
    /// processing order, so `acked >= last seq` proves the whole group was
    /// applied; one ack-latency covers the batch.
    fn send_group_once(&self, peer: &PeerState, payloads: &[&[u8]]) -> Result<(), NetAuthError> {
        let (last_seq, acks) = {
            let mut guard = peer.conn.lock();
            if guard.is_none() {
                *guard = Some(self.connect(peer)?);
            }
            let conn = guard.as_mut().expect("connection just ensured");
            // Seqs assigned under the write lock: stream order == seq
            // order, so `acked >= seq` proves this record was applied.
            let mut last_seq = 0;
            let mut failed = None;
            for payload in payloads {
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
                let message = ReplicaMessage::Record {
                    seq,
                    payload: payload.to_vec(),
                };
                if let Err(e) = conn.writer.write_frame_buffered(&message.encode()) {
                    failed = Some(e);
                    break;
                }
                last_seq = seq;
            }
            if failed.is_none() {
                if let Err(e) = conn.writer.flush() {
                    failed = Some(e);
                }
            }
            if let Some(e) = failed {
                *guard = None;
                return Err(e);
            }
            (last_seq, Arc::clone(&conn.acks))
        };
        match self.config.mode {
            ReplicationMode::Async => Ok(()),
            ReplicationMode::Sync => {
                let waited = acks.wait_for(last_seq, self.config.ack_timeout);
                if waited.is_err() {
                    // The connection is suspect; force a fresh one next time.
                    *peer.conn.lock() = None;
                }
                waited
            }
        }
    }
}

impl ReplicationSink for Replicator {
    /// Stream `entry` to its backup, walking the successor list on
    /// failure.  With no live peer left the entry is accepted locally
    /// (single-survivor operation) — the alternative is refusing all
    /// writes, which the crash-only design rejects.
    fn replicate(&self, entry: &WalEntry) -> Result<(), NetAuthError> {
        let payload = entry.to_payload();
        let key = entry.username();
        loop {
            let target = {
                let ring = self.ring.lock();
                let n = ring.node_count();
                ring.successors(key, n)
                    .into_iter()
                    .find(|node| *node != self.node_id)
                    .map(String::from)
            };
            let Some(target) = target else {
                return Ok(());
            };
            let peer = self
                .peers
                .get(&target)
                .expect("every ring member except self has a peer entry");
            if self.send_once(peer, &payload).is_ok() {
                return Ok(());
            }
            // Retry once on a fresh connection: a listener restart or a
            // dropped socket looks identical to a dead peer on the first
            // failed write.
            *peer.conn.lock() = None;
            if self.send_once(peer, &payload).is_ok() {
                return Ok(());
            }
            // Two straight failures: declare the peer dead and let the
            // ring promote the next successor for all its keys.
            self.ring.lock().leave(&target);
        }
    }

    /// Group-commit path: route every entry to its backup, pipeline each
    /// backup's records on one connection, and (in sync mode) wait for one
    /// ack high-water mark per backup instead of one round-trip per entry.
    /// Failure handling matches [`Replicator::replicate`]: a target that
    /// fails a grouped send twice is evicted, and its entries are re-routed
    /// to the next successor on the following pass (or accepted locally
    /// once no live peer remains).
    fn replicate_group(&self, entries: &[WalEntry]) -> Result<(), NetAuthError> {
        if entries.len() == 1 {
            return self.replicate(&entries[0]);
        }
        let payloads: Vec<Vec<u8>> = entries.iter().map(WalEntry::to_payload).collect();
        let mut pending: Vec<usize> = (0..entries.len()).collect();
        while !pending.is_empty() {
            // Re-resolve each entry's backup per pass: an eviction below
            // shifts its keys to the next successor.
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            {
                let ring = self.ring.lock();
                let n = ring.node_count();
                for &i in &pending {
                    let target = ring
                        .successors(entries[i].username(), n)
                        .into_iter()
                        .find(|node| *node != self.node_id)
                        .map(String::from);
                    if let Some(target) = target {
                        groups.entry(target).or_default().push(i);
                    }
                    // No live peer: accepted locally (single-survivor
                    // operation), nothing to send.
                }
            }
            if groups.is_empty() {
                return Ok(());
            }
            let mut still_pending = Vec::new();
            for (target, indices) in groups {
                let peer = self
                    .peers
                    .get(&target)
                    .expect("every ring member except self has a peer entry");
                let batch: Vec<&[u8]> = indices.iter().map(|&i| payloads[i].as_slice()).collect();
                if self.send_group_once(peer, &batch).is_ok() {
                    continue;
                }
                // Retry once on a fresh connection, as in `replicate`.
                *peer.conn.lock() = None;
                if self.send_group_once(peer, &batch).is_ok() {
                    continue;
                }
                self.ring.lock().leave(&target);
                still_pending.extend(indices);
            }
            pending = still_pending;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::Point;
    use gp_passwords::prelude::*;
    use gp_passwords::DurabilityOptions;

    fn messages() -> Vec<ReplicaMessage> {
        vec![
            ReplicaMessage::Hello {
                node_id: "node-0".into(),
            },
            ReplicaMessage::HelloOk {
                node_id: "node-1".into(),
            },
            ReplicaMessage::Record {
                seq: 42,
                payload: vec![1, 2, 3, 4],
            },
            ReplicaMessage::Record {
                seq: u64::MAX,
                payload: vec![],
            },
            ReplicaMessage::Ack { seq: 7 },
        ]
    }

    #[test]
    fn replica_messages_round_trip() {
        for m in messages() {
            let decoded = ReplicaMessage::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn truncated_and_unknown_replica_messages_rejected() {
        assert!(ReplicaMessage::decode(Bytes::new()).is_err());
        assert!(ReplicaMessage::decode(Bytes::from_static(&[0x7f])).is_err());
        for m in messages() {
            let full = m.encode();
            for len in 0..full.len() {
                assert!(
                    ReplicaMessage::decode(full.slice(0..len)).is_err(),
                    "prefix of {len} bytes of {m:?}"
                );
            }
            let mut trailing = full.to_vec();
            trailing.push(0xff);
            assert!(ReplicaMessage::decode(Bytes::from(trailing)).is_err());
        }
    }

    fn system() -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            2,
        )
    }

    fn clicks(seed: u32) -> Vec<Point> {
        (0..5)
            .map(|i| {
                let x = 30.0 + f64::from(seed % 50) + 70.0 * f64::from(i);
                let y = 20.0 + f64::from(seed / 50 % 40) + 55.0 * f64::from(i);
                Point::new(x, y)
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gp-replication-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// End-to-end over loopback: a replicator streams enrollments to a
    /// listener backed by a durable store; after a simulated backup crash
    /// (listener handle dropped) the store recovers every acked record.
    #[test]
    fn sync_replication_is_durable_on_the_replica() {
        let sys = system();
        let dir = temp_dir("sync");
        let store = Arc::new(
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap(),
        );
        let mut listener = spawn_replication_listener("backup", Arc::clone(&store)).unwrap();

        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());
        for i in 0..8u32 {
            let record = sys.enroll(&format!("user{i}"), &clicks(i)).unwrap();
            replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        }
        assert_eq!(listener.applied(), 8);
        // Redelivery is harmless (insert-or-replace).
        let record = sys.enroll("user0", &clicks(0)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert_eq!(store.len(), 8);

        listener.shutdown();
        drop(store);
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 8);
        for i in 0..8u32 {
            assert!(recovered
                .verify(&sys, &format!("user{i}"), &clicks(i))
                .unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A dead backup (nothing listening) must not wedge the primary: the
    /// peer is declared dead after the retry and the entry is accepted
    /// locally (no other member on the ring).
    #[test]
    fn dead_backup_is_evicted_and_the_primary_keeps_serving() {
        let sys = system();
        // Grab a port that is then closed again: connection refused.
        let dead_addr = TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        let peers = BTreeMap::from([("backup".to_string(), dead_addr)]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());
        assert!(replicator.is_live("backup"));
        let record = sys.enroll("alice", &clicks(1)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert!(!replicator.is_live("backup"), "two failures evict the peer");
        // Revive readmits it (and the next send would reconnect).
        assert!(replicator.revive("backup"));
        assert!(replicator.is_live("backup"));
        assert!(!replicator.revive("unknown"), "unknown nodes stay out");
    }

    /// Dropping the outbound connection mid-stream is transparent: the
    /// next replicate() reconnects and the record still lands.
    #[test]
    fn connection_drop_is_retried_transparently() {
        let sys = system();
        let store = Arc::new(ShardedPasswordStore::new(2));
        let mut listener = spawn_replication_listener("backup", Arc::clone(&store)).unwrap();
        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());

        let record = sys.enroll("alice", &clicks(1)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        replicator.drop_connections();
        let record = sys.enroll("bob", &clicks(2)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert!(replicator.is_live("backup"), "a drop is not a death");
        assert_eq!(store.len(), 2);
        listener.shutdown();
    }
}
