//! WAL-streaming replication between cluster nodes.
//!
//! Each node runs a *replication listener* alongside its auth listener.
//! When a primary accepts an enrollment it appends the record to its own
//! WAL as usual, then streams the **same WAL payload bytes** (see
//! [`gp_passwords::WalEntry::to_payload`]) to the account's backup — the
//! key's second ring successor.  The backup appends the record to *its*
//! durable store (WAL-first, via
//! [`gp_passwords::ShardedPasswordStore::apply_replicated`]) before
//! acknowledging, so a synchronous-mode `EnrollOk` means the account is
//! durable on two nodes.  Applying is insert-or-replace, which makes
//! redelivery after a reconnect or a primary retry harmless.
//!
//! Wire format: the same length-prefixed, integrity-checked frames as the
//! client protocol ([`crate::framing`]), carrying [`ReplicaMessage`]s in
//! their own tag space:
//!
//! ```text
//! Hello          { node_id }                  sender introduces itself (once per conn)
//! HelloOk        { node_id }                  listener's reply
//! Record         { seq, payload }             one WAL entry, payload = WalEntry::to_payload
//! Ack            { seq }                      the record is durable on the replica
//! CatchupRequest { node_id, members }         stream me every record I back under `members`
//! CatchupDone    { count }                    end of a Record stream (catch-up or pull)
//! DigestRequest  { primary, backup, members } anti-entropy: digest your (primary→backup) range
//! DigestReply    { count, sum, xor }          the flat per-range digest
//! RangeRequest   { primary, backup, members } divergence found: list the range's records
//! RangeReply     { done, entries }            (username, record hash) pairs, chunked
//! PullRequest    { usernames }                stream me these records (repair / rejoin pull)
//! ```
//!
//! `seq` is assigned under the per-connection write lock, so records hit
//! the stream in sequence order and acks (which the listener sends in
//! processing order) advance a high-water mark: `acked >= seq` proves
//! *this* record was applied.
//!
//! Failure handling is crash-only: a send failure is retried once on a
//! fresh connection (transient drop), after which the peer is declared
//! dead and removed from the sender's ring — the next successor (or, with
//! no live peer left, local-only operation) takes over.  A dead peer that
//! restarts is re-admitted with [`Replicator::revive`].
//!
//! # Catch-up and anti-entropy
//!
//! Live streaming only covers *new* records, so two back-fill paths keep
//! replicas complete (see the README's replication section):
//!
//! * **Catch-up** ([`catch_up_from_peers`]) — a (re)joining node asks
//!   every live peer for a shard-consistent snapshot of the records it
//!   now backs.  Placement is a pure function of membership, so the
//!   request carries the member list and the serving peer reconstructs
//!   the same [`HashRing`] to filter its records.  Applying reuses
//!   [`ShardedPasswordStore::apply_replicated`] (WAL-first
//!   insert-or-replace), so an interrupted transfer replays idempotently
//!   on retry.
//! * **Anti-entropy** ([`Replicator::anti_entropy_round`], run
//!   periodically by [`spawn_anti_entropy`]) — for each live backup, the
//!   primary compares flat per-range digests
//!   ([`gp_passwords::RangeDigest`] over the keys whose replica pair is
//!   `(primary, backup)`); on divergence the sides exchange sorted
//!   `(username, record-hash)` lists and repair record-by-record: the
//!   primary pushes records the backup lacks and pulls records written
//!   while it was away.  Repair counters surface in
//!   [`ReplicationStats`].

use crate::acks::AckState;
use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gp_passwords::wal::WalEntry;
use gp_passwords::{diff_range_entries, HashRing, RangeDigest, ShardedPasswordStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked replication I/O loops wake to poll the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

const TAG_HELLO: u8 = 0x41;
const TAG_HELLO_OK: u8 = 0x42;
const TAG_RECORD: u8 = 0x43;
const TAG_ACK: u8 = 0x44;
const TAG_CATCHUP_REQUEST: u8 = 0x45;
const TAG_CATCHUP_DONE: u8 = 0x46;
const TAG_DIGEST_REQUEST: u8 = 0x47;
const TAG_DIGEST_REPLY: u8 = 0x48;
const TAG_RANGE_REQUEST: u8 = 0x49;
const TAG_RANGE_REPLY: u8 = 0x4a;
const TAG_PULL_REQUEST: u8 = 0x4b;

/// Maximum node-ID length accepted in a handshake.
const MAX_NODE_ID_LEN: usize = 256;

/// Maximum entries in one list-carrying sync message (member lists, pull
/// requests, range-reply chunks).  Senders chunk at [`SYNC_CHUNK`]; the
/// decode bound is defensive headroom above it.
const MAX_SYNC_LIST: usize = 4096;

/// Entries per `RangeReply` / `PullRequest` chunk — keeps every sync
/// frame far under [`crate::framing::MAX_FRAME_LEN`] even with
/// maximum-length account names.
const SYNC_CHUNK: usize = 128;

/// Messages exchanged on a replication connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaMessage {
    /// The sender introduces itself (first frame on every connection).
    Hello {
        /// Sending node's ID.
        node_id: String,
    },
    /// The listener's handshake reply.
    HelloOk {
        /// Listening node's ID.
        node_id: String,
    },
    /// One WAL entry to apply.
    Record {
        /// Connection-scoped sequence number (monotone per sender).
        seq: u64,
        /// [`WalEntry::to_payload`] bytes — bit-identical to the bytes the
        /// primary appended to its own WAL.
        payload: Vec<u8>,
    },
    /// The record with this sequence number is durable on the replica.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// A (re)joining node asks the listener to stream every record the
    /// requester backs under the given membership (placement is a pure
    /// function of the member set, so both sides compute the same ranges).
    CatchupRequest {
        /// The joining node (the one that will hold the streamed records).
        node_id: String,
        /// Full cluster membership the ranges are computed under.
        members: Vec<String>,
    },
    /// Terminates a `Record` stream started by a `CatchupRequest` or a
    /// `PullRequest`: exactly `count` records were sent.
    CatchupDone {
        /// Records streamed before this marker.
        count: u64,
    },
    /// Anti-entropy: compute the flat digest of the listener's records in
    /// the `(primary → backup)` range under `members`.
    DigestRequest {
        /// The range's primary node.
        primary: String,
        /// The range's backup node (normally the listener itself).
        backup: String,
        /// Membership the range is computed under.
        members: Vec<String>,
    },
    /// The listener's [`gp_passwords::RangeDigest`] for the requested range.
    DigestReply {
        /// Number of records in the range.
        count: u64,
        /// Wrapping sum of the records' content hashes.
        sum: u64,
        /// Xor of the records' content hashes.
        xor: u64,
    },
    /// Divergence detected: list the `(username, record hash)` entries of
    /// the listener's copy of the range, so the requester can diff.
    RangeRequest {
        /// The range's primary node.
        primary: String,
        /// The range's backup node.
        backup: String,
        /// Membership the range is computed under.
        members: Vec<String>,
    },
    /// One chunk of a range listing; `done` marks the final chunk.
    RangeReply {
        /// Whether this is the last chunk of the listing.
        done: bool,
        /// `(username, record hash)` pairs, sorted by name across chunks.
        entries: Vec<(String, u64)>,
    },
    /// Ask the listener to stream its records for these accounts (repair
    /// pull).  Answered with `Record` frames then a `CatchupDone`.
    PullRequest {
        /// Account names to stream (absent accounts are skipped).
        usernames: Vec<String>,
    },
}

fn malformed(reason: &str) -> NetAuthError {
    NetAuthError::Malformed {
        reason: reason.to_string(),
    }
}

fn put_node_id(buf: &mut BytesMut, id: &str) {
    buf.put_u16(id.len() as u16);
    buf.put_slice(id.as_bytes());
}

fn get_node_id(buf: &mut Bytes) -> Result<String, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated node id length"));
    }
    let len = buf.get_u16() as usize;
    if len > MAX_NODE_ID_LEN {
        return Err(malformed("node id too long"));
    }
    if buf.remaining() < len {
        return Err(malformed("truncated node id"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8 in node id"))
}

fn put_str_list(buf: &mut BytesMut, items: &[String]) {
    buf.put_u16(items.len() as u16);
    for item in items {
        put_node_id(buf, item);
    }
}

fn get_str_list(buf: &mut Bytes) -> Result<Vec<String>, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated list length"));
    }
    let count = buf.get_u16() as usize;
    if count > MAX_SYNC_LIST {
        return Err(malformed("sync list too long"));
    }
    (0..count).map(|_| get_node_id(buf)).collect()
}

fn put_entries(buf: &mut BytesMut, entries: &[(String, u64)]) {
    buf.put_u16(entries.len() as u16);
    for (name, hash) in entries {
        put_node_id(buf, name);
        buf.put_u64(*hash);
    }
}

fn get_entries(buf: &mut Bytes) -> Result<Vec<(String, u64)>, NetAuthError> {
    if buf.remaining() < 2 {
        return Err(malformed("truncated entry list length"));
    }
    let count = buf.get_u16() as usize;
    if count > MAX_SYNC_LIST {
        return Err(malformed("entry list too long"));
    }
    (0..count)
        .map(|_| {
            let name = get_node_id(buf)?;
            if buf.remaining() < 8 {
                return Err(malformed("truncated entry hash"));
            }
            Ok((name, buf.get_u64()))
        })
        .collect()
}

impl ReplicaMessage {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ReplicaMessage::Hello { node_id } => {
                buf.put_u8(TAG_HELLO);
                put_node_id(&mut buf, node_id);
            }
            ReplicaMessage::HelloOk { node_id } => {
                buf.put_u8(TAG_HELLO_OK);
                put_node_id(&mut buf, node_id);
            }
            ReplicaMessage::Record { seq, payload } => {
                buf.put_u8(TAG_RECORD);
                buf.put_u64(*seq);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
            ReplicaMessage::Ack { seq } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64(*seq);
            }
            ReplicaMessage::CatchupRequest { node_id, members } => {
                buf.put_u8(TAG_CATCHUP_REQUEST);
                put_node_id(&mut buf, node_id);
                put_str_list(&mut buf, members);
            }
            ReplicaMessage::CatchupDone { count } => {
                buf.put_u8(TAG_CATCHUP_DONE);
                buf.put_u64(*count);
            }
            ReplicaMessage::DigestRequest {
                primary,
                backup,
                members,
            } => {
                buf.put_u8(TAG_DIGEST_REQUEST);
                put_node_id(&mut buf, primary);
                put_node_id(&mut buf, backup);
                put_str_list(&mut buf, members);
            }
            ReplicaMessage::DigestReply { count, sum, xor } => {
                buf.put_u8(TAG_DIGEST_REPLY);
                buf.put_u64(*count);
                buf.put_u64(*sum);
                buf.put_u64(*xor);
            }
            ReplicaMessage::RangeRequest {
                primary,
                backup,
                members,
            } => {
                buf.put_u8(TAG_RANGE_REQUEST);
                put_node_id(&mut buf, primary);
                put_node_id(&mut buf, backup);
                put_str_list(&mut buf, members);
            }
            ReplicaMessage::RangeReply { done, entries } => {
                buf.put_u8(TAG_RANGE_REPLY);
                buf.put_u8(u8::from(*done));
                put_entries(&mut buf, entries);
            }
            ReplicaMessage::PullRequest { usernames } => {
                buf.put_u8(TAG_PULL_REQUEST);
                put_str_list(&mut buf, usernames);
            }
        }
        buf.freeze()
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, NetAuthError> {
        if buf.is_empty() {
            return Err(malformed("empty replication message"));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_HELLO => ReplicaMessage::Hello {
                node_id: get_node_id(&mut buf)?,
            },
            TAG_HELLO_OK => ReplicaMessage::HelloOk {
                node_id: get_node_id(&mut buf)?,
            },
            TAG_RECORD => {
                if buf.remaining() < 12 {
                    return Err(malformed("truncated record header"));
                }
                let seq = buf.get_u64();
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(malformed("truncated record payload"));
                }
                let payload = buf.copy_to_bytes(len).to_vec();
                ReplicaMessage::Record { seq, payload }
            }
            TAG_ACK => {
                if buf.remaining() < 8 {
                    return Err(malformed("truncated ack"));
                }
                ReplicaMessage::Ack { seq: buf.get_u64() }
            }
            TAG_CATCHUP_REQUEST => ReplicaMessage::CatchupRequest {
                node_id: get_node_id(&mut buf)?,
                members: get_str_list(&mut buf)?,
            },
            TAG_CATCHUP_DONE => {
                if buf.remaining() < 8 {
                    return Err(malformed("truncated catch-up done"));
                }
                ReplicaMessage::CatchupDone {
                    count: buf.get_u64(),
                }
            }
            TAG_DIGEST_REQUEST => ReplicaMessage::DigestRequest {
                primary: get_node_id(&mut buf)?,
                backup: get_node_id(&mut buf)?,
                members: get_str_list(&mut buf)?,
            },
            TAG_DIGEST_REPLY => {
                if buf.remaining() < 24 {
                    return Err(malformed("truncated digest reply"));
                }
                ReplicaMessage::DigestReply {
                    count: buf.get_u64(),
                    sum: buf.get_u64(),
                    xor: buf.get_u64(),
                }
            }
            TAG_RANGE_REQUEST => ReplicaMessage::RangeRequest {
                primary: get_node_id(&mut buf)?,
                backup: get_node_id(&mut buf)?,
                members: get_str_list(&mut buf)?,
            },
            TAG_RANGE_REPLY => {
                if !buf.has_remaining() {
                    return Err(malformed("truncated range reply"));
                }
                let done = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(malformed("invalid range-reply done flag")),
                };
                ReplicaMessage::RangeReply {
                    done,
                    entries: get_entries(&mut buf)?,
                }
            }
            TAG_PULL_REQUEST => ReplicaMessage::PullRequest {
                usernames: get_str_list(&mut buf)?,
            },
            other => return Err(malformed(&format!("unknown replication tag {other:#04x}"))),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes after replication message"));
        }
        Ok(msg)
    }
}

/// When an enrollment is acknowledged to the client relative to
/// replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Wait for the backup's `Ack` before releasing `EnrollOk` — an acked
    /// enrollment is durable on two nodes and survives a primary kill.
    Sync,
    /// Release `EnrollOk` after the local WAL append; the record streams
    /// to the backup in the background.  Faster, but an enrollment acked
    /// in the window before the backup applies it is lost if the primary
    /// dies.
    Async,
}

/// Something a server can hand each locally-durable enrollment to for
/// replication before acknowledging the client.
pub trait ReplicationSink: Send + Sync + std::fmt::Debug {
    /// Replicate `entry`; in synchronous mode, returns only once a backup
    /// has acknowledged durability (or no live backup exists).
    fn replicate(&self, entry: &WalEntry) -> Result<(), NetAuthError>;

    /// Replicate a whole group-commit batch.  The default serializes one
    /// `replicate` round-trip per entry; [`Replicator`] overrides it to
    /// pipeline each backup's records and wait on a single ack high-water
    /// mark, so sync-mode backup acks join the group barrier instead of
    /// queueing behind it.
    fn replicate_group(&self, entries: &[WalEntry]) -> Result<(), NetAuthError> {
        for entry in entries {
            self.replicate(entry)?;
        }
        Ok(())
    }

    /// Replication and repair counters, if this sink tracks them.  The
    /// default (for test doubles) is `None`; [`Replicator`] returns its
    /// live [`ReplicationStats`].
    fn stats(&self) -> Option<ReplicationStats> {
        None
    }
}

// ---------------------------------------------------------------------------
// Listener (replica side)
// ---------------------------------------------------------------------------

/// Handle to a running replication listener.
///
/// The listener accepts connections from peer primaries and applies every
/// [`ReplicaMessage::Record`] to the node's own durable store before
/// acking.  Dropping the handle shuts the listener down.
#[derive(Debug)]
pub struct ReplicationHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
    served: Arc<AtomicU64>,
}

impl ReplicationHandle {
    /// Address peers should stream records to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of records applied to the local store so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Number of records streamed *out* to catching-up or repairing peers
    /// (catch-up and pull requests).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop accepting and applying.  Connection threads notice within one
    /// poll tick; records already applied stay durable (crash-only — there
    /// is no other stop path for the fault harness to diverge from).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ReplicationHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn a replication listener on an ephemeral loopback port, applying
/// records to `store`.
pub fn spawn_replication_listener(
    node_id: &str,
    store: Arc<ShardedPasswordStore>,
) -> Result<ReplicationHandle, NetAuthError> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let node_id = node_id.to_string();

    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        let applied = Arc::clone(&applied);
        let served = Arc::clone(&served);
        std::thread::Builder::new()
            .name(format!("repl-accept-{node_id}"))
            .spawn(move || {
                let mut conn_joins = Vec::new();
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let store = Arc::clone(&store);
                            let shutdown = Arc::clone(&shutdown);
                            let applied = Arc::clone(&applied);
                            let served = Arc::clone(&served);
                            let node_id = node_id.clone();
                            if let Ok(join) = std::thread::Builder::new()
                                .name(format!("repl-conn-{node_id}"))
                                .spawn(move || {
                                    serve_replica_conn(
                                        stream, &node_id, &store, &shutdown, &applied, &served,
                                    )
                                })
                            {
                                conn_joins.push(join);
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for join in conn_joins {
                    let _ = join.join();
                }
            })?
    };

    Ok(ReplicationHandle {
        addr,
        shutdown,
        accept_join: Some(accept_join),
        applied,
        served,
    })
}

/// The range predicate both sides of a digest exchange agree on: a key is
/// in the `(primary → backup)` range when those two nodes are exactly its
/// replica pair under the request's membership.
fn pair_range<'a>(
    ring: &'a HashRing,
    primary: &'a str,
    backup: &'a str,
) -> impl Fn(&str) -> bool + 'a {
    move |key: &str| ring.replica_pair(key) == Some((primary, Some(backup)))
}

/// One inbound replication connection: handshake, then apply-and-ack
/// records (and serve catch-up / anti-entropy requests) until the peer
/// hangs up or shutdown is requested.
fn serve_replica_conn(
    stream: TcpStream,
    node_id: &str,
    store: &ShardedPasswordStore,
    shutdown: &AtomicBool,
    applied: &AtomicU64,
    served: &AtomicU64,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(BufReader::new(read_half));
    let mut writer = FrameWriter::new(BufWriter::new(stream));

    let mut greeted = false;
    while !shutdown.load(Ordering::SeqCst) {
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(NetAuthError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let message = match ReplicaMessage::decode(frame) {
            Ok(message) => message,
            Err(_) => return,
        };
        match message {
            ReplicaMessage::Hello { .. } if !greeted => {
                greeted = true;
                let reply = ReplicaMessage::HelloOk {
                    node_id: node_id.to_string(),
                };
                if writer.write_frame(&reply.encode()).is_err() {
                    return;
                }
            }
            ReplicaMessage::Record { seq, payload } if greeted => {
                let Ok(entry) = WalEntry::from_payload(&payload) else {
                    return;
                };
                // Durable (WAL-first) apply *before* the ack leaves: an
                // acked record survives this node crashing right after.
                if store.apply_replicated(&entry).is_err() {
                    return;
                }
                applied.fetch_add(1, Ordering::Relaxed);
                if writer
                    .write_frame(&ReplicaMessage::Ack { seq }.encode())
                    .is_err()
                {
                    return;
                }
            }
            ReplicaMessage::CatchupRequest {
                node_id: joiner,
                members,
            } if greeted => {
                // Stream a shard-consistent snapshot of every record the
                // joiner backs under the requested membership.  A shutdown
                // mid-stream (the fault harness killing this node) drops
                // the connection with the stream half-sent — the joiner's
                // idempotent replay makes the retry safe.
                let ring = HashRing::with_nodes(&members);
                let records = store.records_in_range(|key| ring.holds(key, &joiner));
                let mut count = 0u64;
                for record in records {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    count += 1;
                    let message = ReplicaMessage::Record {
                        seq: count,
                        payload: WalEntry::Update(record).to_payload(),
                    };
                    if writer.write_frame_buffered(&message.encode()).is_err() {
                        return;
                    }
                }
                if writer
                    .write_frame(&ReplicaMessage::CatchupDone { count }.encode())
                    .is_err()
                {
                    return;
                }
                served.fetch_add(count, Ordering::Relaxed);
            }
            ReplicaMessage::DigestRequest {
                primary,
                backup,
                members,
            } if greeted => {
                let ring = HashRing::with_nodes(&members);
                let digest = store.range_digest(pair_range(&ring, &primary, &backup));
                let reply = ReplicaMessage::DigestReply {
                    count: digest.count,
                    sum: digest.sum,
                    xor: digest.xor,
                };
                if writer.write_frame(&reply.encode()).is_err() {
                    return;
                }
            }
            ReplicaMessage::RangeRequest {
                primary,
                backup,
                members,
            } if greeted => {
                let ring = HashRing::with_nodes(&members);
                let entries = store.range_entries(pair_range(&ring, &primary, &backup));
                for chunk in entries.chunks(SYNC_CHUNK) {
                    let reply = ReplicaMessage::RangeReply {
                        done: false,
                        entries: chunk.to_vec(),
                    };
                    if writer.write_frame_buffered(&reply.encode()).is_err() {
                        return;
                    }
                }
                let last = ReplicaMessage::RangeReply {
                    done: true,
                    entries: Vec::new(),
                };
                if writer.write_frame(&last.encode()).is_err() {
                    return;
                }
            }
            ReplicaMessage::PullRequest { usernames } if greeted => {
                let mut count = 0u64;
                for name in &usernames {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // An absent account is skipped, not an error: the
                    // requester diffed against a snapshot and the record
                    // may have been removed since.
                    let Some(record) = store.get(name) else {
                        continue;
                    };
                    count += 1;
                    let message = ReplicaMessage::Record {
                        seq: count,
                        payload: WalEntry::Update(record).to_payload(),
                    };
                    if writer.write_frame_buffered(&message.encode()).is_err() {
                        return;
                    }
                }
                if writer
                    .write_frame(&ReplicaMessage::CatchupDone { count }.encode())
                    .is_err()
                {
                    return;
                }
                served.fetch_add(count, Ordering::Relaxed);
            }
            // Hello out of order, HelloOk/Ack from a sender, or a record
            // before the handshake: protocol violation, drop the conn.
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Replicator (primary side)
// ---------------------------------------------------------------------------

/// Tuning for a [`Replicator`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicatorConfig {
    /// Sync (ack-gated) or async (fire-and-forget) replication.
    pub mode: ReplicationMode,
    /// How long a synchronous send waits for the backup's ack before
    /// treating the attempt as failed.
    pub ack_timeout: Duration,
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// How often the background anti-entropy thread
    /// ([`spawn_anti_entropy`]) runs a digest-exchange round against each
    /// live backup.  `Duration::ZERO` disables the thread (manual rounds
    /// via [`Replicator::anti_entropy_round`] still work).
    pub anti_entropy_interval: Duration,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        Self {
            mode: ReplicationMode::Sync,
            ack_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            anti_entropy_interval: Duration::from_secs(1),
        }
    }
}

/// One live outbound connection to a peer's replication listener.
#[derive(Debug)]
struct PeerConn {
    /// Kept for [`TcpStream::shutdown`] on teardown (the writer owns a
    /// buffered clone of the same socket).
    stream: TcpStream,
    writer: FrameWriter<BufWriter<TcpStream>>,
    acks: Arc<AckState>,
}

impl Drop for PeerConn {
    fn drop(&mut self) {
        // Wake the detached ack-reader thread so it exits promptly.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[derive(Debug)]
struct PeerState {
    /// Behind a lock so a restarted node's fresh ephemeral port can be
    /// installed ([`Replicator::update_peer`]) without rebuilding the map.
    addr: Mutex<SocketAddr>,
    conn: Mutex<Option<PeerConn>>,
}

/// Internal atomic counters behind [`ReplicationStats`].
#[derive(Debug, Default)]
struct SyncCounters {
    records_replicated: AtomicU64,
    anti_entropy_rounds: AtomicU64,
    ranges_checked: AtomicU64,
    ranges_divergent: AtomicU64,
    records_pushed: AtomicU64,
    records_pulled: AtomicU64,
    sync_failures: AtomicU64,
}

/// Snapshot of a [`Replicator`]'s replication and repair counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Records streamed to backups on the live (write-path) stream.
    pub records_replicated: u64,
    /// Completed anti-entropy rounds.
    pub anti_entropy_rounds: u64,
    /// Primary→backup ranges digest-checked across all rounds.
    pub ranges_checked: u64,
    /// Ranges whose digests disagreed (divergence detected).
    pub ranges_divergent: u64,
    /// Records pushed to backups during repair.
    pub records_pushed: u64,
    /// Records pulled from backups during repair.
    pub records_pulled: u64,
    /// Anti-entropy exchanges that failed on transport errors (the peer
    /// is skipped for the round, never evicted).
    pub sync_failures: u64,
}

/// The primary-side replication sender.
///
/// Owns a [`HashRing`] over the full cluster membership (itself included)
/// and, for each entry, streams the WAL payload to the entry's backup —
/// the first ring successor of the account that is not this node.  Peers
/// that fail a send twice are declared dead and leave the ring, shifting
/// subsequent traffic to the next successor.
#[derive(Debug)]
pub struct Replicator {
    node_id: String,
    config: ReplicatorConfig,
    ring: Mutex<HashRing>,
    peers: BTreeMap<String, PeerState>,
    next_seq: AtomicU64,
    counters: SyncCounters,
}

impl Replicator {
    /// A replicator for node `node_id` with the given peer replication
    /// addresses (`node_id` itself must not be in `peers`).
    pub fn new(
        node_id: &str,
        peers: BTreeMap<String, SocketAddr>,
        config: ReplicatorConfig,
    ) -> Self {
        let mut ring = HashRing::with_nodes(peers.keys());
        ring.join(node_id);
        Self {
            node_id: node_id.to_string(),
            config,
            ring: Mutex::new(ring),
            peers: peers
                .into_iter()
                .map(|(id, addr)| {
                    (
                        id,
                        PeerState {
                            addr: Mutex::new(addr),
                            conn: Mutex::new(None),
                        },
                    )
                })
                .collect(),
            next_seq: AtomicU64::new(0),
            counters: SyncCounters::default(),
        }
    }

    /// Snapshot of the replication and anti-entropy repair counters.
    pub fn replication_stats(&self) -> ReplicationStats {
        ReplicationStats {
            records_replicated: self.counters.records_replicated.load(Ordering::Relaxed),
            anti_entropy_rounds: self.counters.anti_entropy_rounds.load(Ordering::Relaxed),
            ranges_checked: self.counters.ranges_checked.load(Ordering::Relaxed),
            ranges_divergent: self.counters.ranges_divergent.load(Ordering::Relaxed),
            records_pushed: self.counters.records_pushed.load(Ordering::Relaxed),
            records_pulled: self.counters.records_pulled.load(Ordering::Relaxed),
            sync_failures: self.counters.sync_failures.load(Ordering::Relaxed),
        }
    }

    /// This node's ID.
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// The configured replication mode.
    pub fn mode(&self) -> ReplicationMode {
        self.config.mode
    }

    /// Whether `node` is currently considered live.
    pub fn is_live(&self, node: &str) -> bool {
        self.ring.lock().contains(node)
    }

    /// Re-admit a previously dead peer (e.g. after an operator restarts
    /// it); the ring is deterministic, so its old key ranges come back.
    pub fn revive(&self, node: &str) -> bool {
        self.peers.contains_key(node) && self.ring.lock().join(node)
    }

    /// Point `node` at a new replication address (a restarted node binds a
    /// fresh ephemeral port) and re-admit it to the ring.  Returns whether
    /// the node was known.
    pub fn update_peer(&self, node: &str, addr: SocketAddr) -> bool {
        let Some(peer) = self.peers.get(node) else {
            return false;
        };
        *peer.addr.lock() = addr;
        *peer.conn.lock() = None;
        self.ring.lock().join(node);
        true
    }

    /// Drop every open outbound connection (fault-injection hook: the next
    /// send sees a cold connection, exactly as after a network blip).
    pub fn drop_connections(&self) {
        for peer in self.peers.values() {
            *peer.conn.lock() = None;
        }
    }

    /// Connect to `peer` and start its detached ack-reader thread.
    fn connect(&self, peer: &PeerState) -> Result<PeerConn, NetAuthError> {
        let addr = *peer.addr.lock();
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(SHUTDOWN_POLL))?;
        let acks = Arc::new(AckState::default());
        let write_half = stream.try_clone()?;
        let mut conn = PeerConn {
            stream,
            writer: FrameWriter::new(BufWriter::new(write_half)),
            acks: Arc::clone(&acks),
        };
        let hello = ReplicaMessage::Hello {
            node_id: self.node_id.clone(),
        };
        conn.writer.write_frame(&hello.encode())?;
        // The ack reader owns the read half until the socket dies; it is
        // detached — PeerConn::drop shuts the socket down to unpark it.
        let _ = std::thread::Builder::new()
            .name(format!("repl-acks-{}", self.node_id))
            .spawn(move || {
                let mut reader = FrameReader::new(BufReader::new(read_half));
                loop {
                    match reader.read_frame() {
                        Ok(frame) => match ReplicaMessage::decode(frame) {
                            Ok(ReplicaMessage::Ack { seq }) => acks.record(seq),
                            Ok(ReplicaMessage::HelloOk { .. }) => {}
                            _ => {
                                acks.mark_broken();
                                return;
                            }
                        },
                        Err(NetAuthError::Io(e))
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => {
                            acks.mark_broken();
                            return;
                        }
                    }
                }
            });
        Ok(conn)
    }

    /// One send attempt: write the record on `peer`'s connection (opening
    /// it if needed) and, in sync mode, wait for the ack.
    fn send_once(&self, peer: &PeerState, payload: &[u8]) -> Result<(), NetAuthError> {
        self.send_group_once(peer, &[payload])
    }

    /// One grouped send attempt: pipeline every payload onto `peer`'s
    /// connection (opening it if needed) back-to-back, then — in sync mode
    /// — wait once for the *last* record's ack.  The listener acks in
    /// processing order, so `acked >= last seq` proves the whole group was
    /// applied; one ack-latency covers the batch.
    fn send_group_once(&self, peer: &PeerState, payloads: &[&[u8]]) -> Result<(), NetAuthError> {
        let (last_seq, acks) = {
            let mut guard = peer.conn.lock();
            if guard.is_none() {
                *guard = Some(self.connect(peer)?);
            }
            let Some(conn) = guard.as_mut() else {
                return Err(NetAuthError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "replication connection missing after connect",
                )));
            };
            // Seqs assigned under the write lock: stream order == seq
            // order, so `acked >= seq` proves this record was applied.
            let mut last_seq = 0;
            let mut failed = None;
            for payload in payloads {
                // AcqRel: the issued seq orders the ack protocol (the
                // waiter compares it against the reader thread's high-water
                // mark), so the RMW must not be reordered around the
                // frame write it numbers.
                let seq = self.next_seq.fetch_add(1, Ordering::AcqRel) + 1;
                let message = ReplicaMessage::Record {
                    seq,
                    payload: payload.to_vec(),
                };
                if let Err(e) = conn.writer.write_frame_buffered(&message.encode()) {
                    failed = Some(e);
                    break;
                }
                last_seq = seq;
            }
            if failed.is_none() {
                if let Err(e) = conn.writer.flush() {
                    failed = Some(e);
                }
            }
            if let Some(e) = failed {
                *guard = None;
                return Err(e);
            }
            (last_seq, Arc::clone(&conn.acks))
        };
        let result = match self.config.mode {
            ReplicationMode::Async => Ok(()),
            ReplicationMode::Sync => {
                let waited = acks.wait_for(last_seq, self.config.ack_timeout);
                if waited.is_err() {
                    // The connection is suspect; force a fresh one next time.
                    *peer.conn.lock() = None;
                }
                waited
            }
        };
        if result.is_ok() {
            self.counters
                .records_replicated
                .fetch_add(payloads.len() as u64, Ordering::Relaxed);
        }
        result
    }

    /// One anti-entropy round: for every live peer, digest-compare the
    /// `(self → peer)` range and repair any divergence record-by-record.
    ///
    /// The primary *pushes* records the backup lacks (or holds with
    /// different bytes — primary wins, it acked them) and *pulls* records
    /// only the backup holds (written while this node was away).  A peer
    /// that fails the exchange on a transport error is skipped for the
    /// round — never evicted: anti-entropy is a background repair, and
    /// eviction is the write path's crash-only detector.
    pub fn anti_entropy_round(&self, store: &ShardedPasswordStore) -> AntiEntropyRound {
        let (ring, members): (HashRing, Vec<String>) = {
            let ring = self.ring.lock();
            let members = ring.nodes().map(String::from).collect();
            (ring.clone(), members)
        };
        let mut round = AntiEntropyRound::default();
        for peer_id in &members {
            if *peer_id == self.node_id || !self.peers.contains_key(peer_id) {
                continue;
            }
            round.ranges_checked += 1;
            match self.sync_range_with(peer_id, &ring, &members, store) {
                Ok(None) => {}
                Ok(Some((pushed, pulled))) => {
                    round.ranges_divergent += 1;
                    round.records_pushed += pushed;
                    round.records_pulled += pulled;
                }
                Err(_) => {
                    round.failed_peers.push(peer_id.clone());
                    self.counters.sync_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters
            .anti_entropy_rounds
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .ranges_checked
            .fetch_add(round.ranges_checked, Ordering::Relaxed);
        self.counters
            .ranges_divergent
            .fetch_add(round.ranges_divergent, Ordering::Relaxed);
        self.counters
            .records_pushed
            .fetch_add(round.records_pushed, Ordering::Relaxed);
        self.counters
            .records_pulled
            .fetch_add(round.records_pulled, Ordering::Relaxed);
        round
    }

    /// Digest-compare the `(self → backup)` range with `backup` and repair
    /// a mismatch.  Returns `None` when the digests already agree, or the
    /// `(pushed, pulled)` record counts of the repair.
    fn sync_range_with(
        &self,
        backup: &str,
        ring: &HashRing,
        members: &[String],
        store: &ShardedPasswordStore,
    ) -> Result<Option<(u64, u64)>, NetAuthError> {
        let range = pair_range(ring, &self.node_id, backup);
        let local = store.range_digest(&range);
        let addr = *self.peers[backup].addr.lock();
        let mut conn = SyncConn::open(
            &self.node_id,
            addr,
            self.config.connect_timeout,
            self.config.ack_timeout,
        )?;
        conn.send(&ReplicaMessage::DigestRequest {
            primary: self.node_id.clone(),
            backup: backup.to_string(),
            members: members.to_vec(),
        })?;
        let remote = match conn.recv()? {
            ReplicaMessage::DigestReply { count, sum, xor } => RangeDigest { count, sum, xor },
            _ => return Err(malformed("expected digest reply")),
        };
        if remote == local {
            return Ok(None);
        }

        // Divergence: fetch the backup's record-level listing and diff.
        conn.send(&ReplicaMessage::RangeRequest {
            primary: self.node_id.clone(),
            backup: backup.to_string(),
            members: members.to_vec(),
        })?;
        let mut remote_entries: Vec<(String, u64)> = Vec::new();
        loop {
            match conn.recv()? {
                ReplicaMessage::RangeReply { done, entries } => {
                    remote_entries.extend(entries);
                    if done {
                        break;
                    }
                }
                _ => return Err(malformed("expected range reply")),
            }
        }
        let diff = diff_range_entries(&store.range_entries(&range), &remote_entries);

        // Push this side's copies; the listener acks each durable apply in
        // order, so waiting for the last ack covers the batch.
        let mut pushed = 0u64;
        for name in &diff.push {
            let Some(record) = store.get(name) else {
                continue;
            };
            pushed += 1;
            conn.send(&ReplicaMessage::Record {
                seq: pushed,
                payload: WalEntry::Update(record).to_payload(),
            })?;
        }
        for _ in 0..pushed {
            match conn.recv()? {
                ReplicaMessage::Ack { .. } => {}
                _ => return Err(malformed("expected repair ack")),
            }
        }

        // Pull records written while this node was away.
        let mut pulled = 0u64;
        for chunk in diff.pull.chunks(SYNC_CHUNK) {
            conn.send(&ReplicaMessage::PullRequest {
                usernames: chunk.to_vec(),
            })?;
            loop {
                match conn.recv()? {
                    ReplicaMessage::Record { payload, .. } => {
                        let entry = WalEntry::from_payload(&payload)
                            .map_err(|_| malformed("bad repair payload"))?;
                        store.apply_replicated(&entry).map_err(NetAuthError::from)?;
                        pulled += 1;
                    }
                    ReplicaMessage::CatchupDone { .. } => break,
                    _ => return Err(malformed("expected pulled record")),
                }
            }
        }
        Ok(Some((pushed, pulled)))
    }
}

// ---------------------------------------------------------------------------
// Synchronous sync connection (catch-up + anti-entropy client side)
// ---------------------------------------------------------------------------

/// A dedicated blocking request/response connection to a peer's
/// replication listener, used by catch-up and anti-entropy (the live
/// write path keeps its own pipelined [`PeerConn`]s with a detached ack
/// reader; sync traffic must not interleave with those acks).
struct SyncConn {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: FrameWriter<BufWriter<TcpStream>>,
    io_timeout: Duration,
}

impl SyncConn {
    /// Connect, handshake (`Hello` / `HelloOk`), and return the ready
    /// connection.
    fn open(
        self_id: &str,
        addr: SocketAddr,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<Self, NetAuthError> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        // Short read timeout + deadline loop in `recv`: blocked reads stay
        // interruptible without a dedicated reader thread.
        stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
        let read_half = stream.try_clone()?;
        let mut conn = Self {
            reader: FrameReader::new(BufReader::new(read_half)),
            writer: FrameWriter::new(BufWriter::new(stream)),
            io_timeout,
        };
        conn.send(&ReplicaMessage::Hello {
            node_id: self_id.to_string(),
        })?;
        match conn.recv()? {
            ReplicaMessage::HelloOk { .. } => Ok(conn),
            _ => Err(malformed("expected sync handshake reply")),
        }
    }

    fn send(&mut self, message: &ReplicaMessage) -> Result<(), NetAuthError> {
        self.writer.write_frame(&message.encode())
    }

    /// Read the next message, polling across read-timeout ticks until
    /// `io_timeout` elapses.
    fn recv(&mut self) -> Result<ReplicaMessage, NetAuthError> {
        let deadline = Instant::now() + self.io_timeout;
        loop {
            match self.reader.read_frame() {
                Ok(frame) => return ReplicaMessage::decode(frame),
                Err(NetAuthError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= deadline {
                        return Err(NetAuthError::Io(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "timed out waiting for sync reply",
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Catch-up (joiner side)
// ---------------------------------------------------------------------------

/// Tuning (and fault hooks) for [`catch_up_from_peers`].
#[derive(Debug, Clone, Copy)]
pub struct CatchupOptions {
    /// Per-peer TCP connect timeout.
    pub connect_timeout: Duration,
    /// How long to wait for each streamed frame before giving up on the
    /// peer.
    pub io_timeout: Duration,
    /// Fault-injection hook: abort the whole catch-up (dropping the
    /// connection, no retry) after applying this many records, simulating
    /// the joiner crashing mid-transfer.  `None` in production.
    pub abort_after_records: Option<u64>,
}

impl Default for CatchupOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            abort_after_records: None,
        }
    }
}

/// Outcome of catching up from one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerCatchup {
    /// The serving peer.
    pub node_id: String,
    /// Records applied from this peer's stream (counts partial streams).
    pub records: u64,
    /// Whether the peer's `CatchupDone` arrived and matched — only then
    /// is the range this peer covers considered caught-up.
    pub completed: bool,
}

/// Outcome of a full catch-up pass ([`catch_up_from_peers`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatchupReport {
    /// Per-peer outcomes, in peer order.
    pub peers: Vec<PeerCatchup>,
}

impl CatchupReport {
    /// Whether every peer's stream completed — the joiner's backed ranges
    /// are provably complete up to the snapshot points.
    pub fn completed(&self) -> bool {
        self.peers.iter().all(|p| p.completed)
    }

    /// Total records applied across all peers (including partial streams).
    pub fn records_applied(&self) -> u64 {
        self.peers.iter().map(|p| p.records).sum()
    }
}

/// One catch-up attempt against one peer: request the stream, apply every
/// record durably, verify the final count.
fn catch_up_from_peer(
    node_id: &str,
    members: &[String],
    peer_id: &str,
    addr: SocketAddr,
    store: &ShardedPasswordStore,
    options: &CatchupOptions,
) -> Result<PeerCatchup, NetAuthError> {
    let mut conn = SyncConn::open(node_id, addr, options.connect_timeout, options.io_timeout)?;
    conn.send(&ReplicaMessage::CatchupRequest {
        node_id: node_id.to_string(),
        members: members.to_vec(),
    })?;
    let mut applied = 0u64;
    loop {
        match conn.recv()? {
            ReplicaMessage::Record { payload, .. } => {
                let entry = WalEntry::from_payload(&payload)
                    .map_err(|_| malformed("bad catch-up payload"))?;
                // Durable, idempotent apply: a crash (or the abort hook)
                // right after leaves a prefix that replays harmlessly.
                store.apply_replicated(&entry).map_err(NetAuthError::from)?;
                applied += 1;
                if options
                    .abort_after_records
                    .is_some_and(|cap| applied >= cap)
                {
                    return Ok(PeerCatchup {
                        node_id: peer_id.to_string(),
                        records: applied,
                        completed: false,
                    });
                }
            }
            ReplicaMessage::CatchupDone { count } => {
                if count != applied {
                    return Err(malformed("catch-up stream count mismatch"));
                }
                return Ok(PeerCatchup {
                    node_id: peer_id.to_string(),
                    records: applied,
                    completed: true,
                });
            }
            _ => return Err(malformed("unexpected frame in catch-up stream")),
        }
    }
}

/// Catch a (re)joining node up from its live peers.
///
/// For every peer in `peers`, request a snapshot stream of the records
/// `node_id` backs under `members` and apply each durably via
/// [`ShardedPasswordStore::apply_replicated`].  Streams overlap (several
/// peers hold copies of the same range) and redelivery is insert-or-
/// replace, so double-applies are harmless.  A peer that fails is retried
/// once on a fresh connection; a second failure marks that peer's
/// [`PeerCatchup::completed`] `false` — the caller decides whether to
/// admit anyway (availability) or keep the traffic gate closed.
///
/// When [`CatchupOptions::abort_after_records`] is set the abort is
/// honored on the first attempt with no retry, so the fault harness can
/// observe the interrupted state deterministically.
pub fn catch_up_from_peers(
    node_id: &str,
    members: &[String],
    peers: &BTreeMap<String, SocketAddr>,
    store: &ShardedPasswordStore,
    options: &CatchupOptions,
) -> CatchupReport {
    let mut report = CatchupReport::default();
    for (peer_id, addr) in peers {
        if peer_id == node_id {
            continue;
        }
        let attempts = if options.abort_after_records.is_some() {
            1
        } else {
            2
        };
        let mut outcome = PeerCatchup {
            node_id: peer_id.clone(),
            records: 0,
            completed: false,
        };
        for _ in 0..attempts {
            match catch_up_from_peer(node_id, members, peer_id, *addr, store, options) {
                Ok(peer_outcome) => {
                    outcome.records += peer_outcome.records;
                    outcome.completed = peer_outcome.completed;
                    break;
                }
                Err(_) => {
                    // Partial stream already applied durably; the retry
                    // replays it idempotently from the top.
                }
            }
        }
        report.peers.push(outcome);
    }
    report
}

// ---------------------------------------------------------------------------
// Anti-entropy (background repair)
// ---------------------------------------------------------------------------

/// Outcome of one [`Replicator::anti_entropy_round`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AntiEntropyRound {
    /// Primary→backup ranges digest-checked this round.
    pub ranges_checked: u64,
    /// Ranges whose digests disagreed.
    pub ranges_divergent: u64,
    /// Records pushed to backups during repair.
    pub records_pushed: u64,
    /// Records pulled from backups during repair.
    pub records_pulled: u64,
    /// Peers skipped on transport errors (not evicted).
    pub failed_peers: Vec<String>,
}

/// Handle to a background anti-entropy thread ([`spawn_anti_entropy`]).
/// Dropping the handle stops the thread.
#[derive(Debug)]
pub struct AntiEntropyHandle {
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl AntiEntropyHandle {
    /// Stop the thread; returns once it has exited (within one poll tick).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for AntiEntropyHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run [`Replicator::anti_entropy_round`] against `store` every
/// `interval` on a background thread, until the handle is shut down.
pub fn spawn_anti_entropy(
    replicator: Arc<Replicator>,
    store: Arc<ShardedPasswordStore>,
    interval: Duration,
) -> AntiEntropyHandle {
    let shutdown = Arc::new(AtomicBool::new(false));
    let join = {
        let shutdown = Arc::clone(&shutdown);
        let name = format!("anti-entropy-{}", replicator.node_id());
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !shutdown.load(Ordering::SeqCst) {
                    if Instant::now() >= next {
                        let _ = replicator.anti_entropy_round(&store);
                        next = Instant::now() + interval;
                    }
                    std::thread::sleep(SHUTDOWN_POLL.min(interval));
                }
            })
            .ok()
    };
    AntiEntropyHandle { shutdown, join }
}

impl ReplicationSink for Replicator {
    /// Stream `entry` to its backup, walking the successor list on
    /// failure.  With no live peer left the entry is accepted locally
    /// (single-survivor operation) — the alternative is refusing all
    /// writes, which the crash-only design rejects.
    fn replicate(&self, entry: &WalEntry) -> Result<(), NetAuthError> {
        let payload = entry.to_payload();
        let key = entry.username();
        loop {
            let target = {
                let ring = self.ring.lock();
                let n = ring.node_count();
                ring.successors(key, n)
                    .into_iter()
                    .find(|node| *node != self.node_id)
                    .map(String::from)
            };
            let Some(target) = target else {
                return Ok(());
            };
            let Some(peer) = self.peers.get(&target) else {
                // A ring member without a peer entry can only come from a
                // stale ring view; evict it and re-route to the next
                // successor rather than bringing the commit path down.
                self.ring.lock().leave(&target);
                continue;
            };
            if self.send_once(peer, &payload).is_ok() {
                return Ok(());
            }
            // Retry once on a fresh connection: a listener restart or a
            // dropped socket looks identical to a dead peer on the first
            // failed write.
            *peer.conn.lock() = None;
            if self.send_once(peer, &payload).is_ok() {
                return Ok(());
            }
            // Two straight failures: declare the peer dead and let the
            // ring promote the next successor for all its keys.
            self.ring.lock().leave(&target);
        }
    }

    /// Group-commit path: route every entry to its backup, pipeline each
    /// backup's records on one connection, and (in sync mode) wait for one
    /// ack high-water mark per backup instead of one round-trip per entry.
    /// Failure handling matches [`Replicator::replicate`]: a target that
    /// fails a grouped send twice is evicted, and its entries are re-routed
    /// to the next successor on the following pass (or accepted locally
    /// once no live peer remains).
    fn replicate_group(&self, entries: &[WalEntry]) -> Result<(), NetAuthError> {
        if entries.len() == 1 {
            return self.replicate(&entries[0]);
        }
        let payloads: Vec<Vec<u8>> = entries.iter().map(WalEntry::to_payload).collect();
        let mut pending: Vec<usize> = (0..entries.len()).collect();
        while !pending.is_empty() {
            // Re-resolve each entry's backup per pass: an eviction below
            // shifts its keys to the next successor.
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            {
                let ring = self.ring.lock();
                let n = ring.node_count();
                for &i in &pending {
                    let target = ring
                        .successors(entries[i].username(), n)
                        .into_iter()
                        .find(|node| *node != self.node_id)
                        .map(String::from);
                    if let Some(target) = target {
                        groups.entry(target).or_default().push(i);
                    }
                    // No live peer: accepted locally (single-survivor
                    // operation), nothing to send.
                }
            }
            if groups.is_empty() {
                return Ok(());
            }
            let mut still_pending = Vec::new();
            for (target, indices) in groups {
                let Some(peer) = self.peers.get(&target) else {
                    // Same stale-ring defense as `replicate`: evict and
                    // re-route these entries on the next pass.
                    self.ring.lock().leave(&target);
                    still_pending.extend(indices);
                    continue;
                };
                let batch: Vec<&[u8]> = indices.iter().map(|&i| payloads[i].as_slice()).collect();
                if self.send_group_once(peer, &batch).is_ok() {
                    continue;
                }
                // Retry once on a fresh connection, as in `replicate`.
                *peer.conn.lock() = None;
                if self.send_group_once(peer, &batch).is_ok() {
                    continue;
                }
                self.ring.lock().leave(&target);
                still_pending.extend(indices);
            }
            pending = still_pending;
        }
        Ok(())
    }

    fn stats(&self) -> Option<ReplicationStats> {
        Some(self.replication_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::Point;
    use gp_passwords::prelude::*;
    use gp_passwords::DurabilityOptions;

    fn messages() -> Vec<ReplicaMessage> {
        vec![
            ReplicaMessage::Hello {
                node_id: "node-0".into(),
            },
            ReplicaMessage::HelloOk {
                node_id: "node-1".into(),
            },
            ReplicaMessage::Record {
                seq: 42,
                payload: vec![1, 2, 3, 4],
            },
            ReplicaMessage::Record {
                seq: u64::MAX,
                payload: vec![],
            },
            ReplicaMessage::Ack { seq: 7 },
            ReplicaMessage::CatchupRequest {
                node_id: "node-2".into(),
                members: vec!["node-0".into(), "node-1".into(), "node-2".into()],
            },
            ReplicaMessage::CatchupDone { count: 99 },
            ReplicaMessage::DigestRequest {
                primary: "node-0".into(),
                backup: "node-1".into(),
                members: vec!["node-0".into(), "node-1".into()],
            },
            ReplicaMessage::DigestReply {
                count: 3,
                sum: u64::MAX,
                xor: 0x1234_5678_9abc_def0,
            },
            ReplicaMessage::RangeRequest {
                primary: "node-1".into(),
                backup: "node-0".into(),
                members: vec!["node-0".into(), "node-1".into()],
            },
            ReplicaMessage::RangeReply {
                done: false,
                entries: vec![("alice".into(), 1), ("bob".into(), u64::MAX)],
            },
            ReplicaMessage::RangeReply {
                done: true,
                entries: vec![],
            },
            ReplicaMessage::PullRequest {
                usernames: vec!["alice".into(), "bob".into()],
            },
        ]
    }

    #[test]
    fn replica_messages_round_trip() {
        for m in messages() {
            let decoded = ReplicaMessage::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn truncated_and_unknown_replica_messages_rejected() {
        assert!(ReplicaMessage::decode(Bytes::new()).is_err());
        assert!(ReplicaMessage::decode(Bytes::from_static(&[0x7f])).is_err());
        for m in messages() {
            let full = m.encode();
            for len in 0..full.len() {
                assert!(
                    ReplicaMessage::decode(full.slice(0..len)).is_err(),
                    "prefix of {len} bytes of {m:?}"
                );
            }
            let mut trailing = full.to_vec();
            trailing.push(0xff);
            assert!(ReplicaMessage::decode(Bytes::from(trailing)).is_err());
        }
    }

    fn system() -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            2,
        )
    }

    fn clicks(seed: u32) -> Vec<Point> {
        (0..5)
            .map(|i| {
                let x = 30.0 + f64::from(seed % 50) + 70.0 * f64::from(i);
                let y = 20.0 + f64::from(seed / 50 % 40) + 55.0 * f64::from(i);
                Point::new(x, y)
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gp-replication-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// End-to-end over loopback: a replicator streams enrollments to a
    /// listener backed by a durable store; after a simulated backup crash
    /// (listener handle dropped) the store recovers every acked record.
    #[test]
    fn sync_replication_is_durable_on_the_replica() {
        let sys = system();
        let dir = temp_dir("sync");
        let store = Arc::new(
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap(),
        );
        let mut listener = spawn_replication_listener("backup", Arc::clone(&store)).unwrap();

        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());
        for i in 0..8u32 {
            let record = sys.enroll(&format!("user{i}"), &clicks(i)).unwrap();
            replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        }
        assert_eq!(listener.applied(), 8);
        // Redelivery is harmless (insert-or-replace).
        let record = sys.enroll("user0", &clicks(0)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert_eq!(store.len(), 8);

        listener.shutdown();
        drop(store);
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 8);
        for i in 0..8u32 {
            assert!(recovered
                .verify(&sys, &format!("user{i}"), &clicks(i))
                .unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A dead backup (nothing listening) must not wedge the primary: the
    /// peer is declared dead after the retry and the entry is accepted
    /// locally (no other member on the ring).
    #[test]
    fn dead_backup_is_evicted_and_the_primary_keeps_serving() {
        let sys = system();
        // Grab a port that is then closed again: connection refused.
        let dead_addr = TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        let peers = BTreeMap::from([("backup".to_string(), dead_addr)]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());
        assert!(replicator.is_live("backup"));
        let record = sys.enroll("alice", &clicks(1)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert!(!replicator.is_live("backup"), "two failures evict the peer");
        // Revive readmits it (and the next send would reconnect).
        assert!(replicator.revive("backup"));
        assert!(replicator.is_live("backup"));
        assert!(!replicator.revive("unknown"), "unknown nodes stay out");
    }

    /// Dropping the outbound connection mid-stream is transparent: the
    /// next replicate() reconnects and the record still lands.
    #[test]
    fn connection_drop_is_retried_transparently() {
        let sys = system();
        let store = Arc::new(ShardedPasswordStore::new(2));
        let mut listener = spawn_replication_listener("backup", Arc::clone(&store)).unwrap();
        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());

        let record = sys.enroll("alice", &clicks(1)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        replicator.drop_connections();
        let record = sys.enroll("bob", &clicks(2)).unwrap();
        replicator.replicate(&WalEntry::Enroll(record)).unwrap();
        assert!(replicator.is_live("backup"), "a drop is not a death");
        assert_eq!(store.len(), 2);
        listener.shutdown();
    }

    /// Catch-up streams exactly the records the joiner backs under the
    /// requested membership, and completes with a verified count.
    #[test]
    fn catch_up_streams_the_joiners_ranges() {
        let sys = system();
        let members: Vec<String> = vec!["node-a".into(), "node-b".into()];
        let peer_store = Arc::new(ShardedPasswordStore::new(2));
        for i in 0..32u32 {
            let record = sys.enroll(&format!("user{i}"), &clicks(i)).unwrap();
            peer_store.insert(record).unwrap();
        }
        let mut listener = spawn_replication_listener("node-a", Arc::clone(&peer_store)).unwrap();

        let joiner_store = ShardedPasswordStore::new(2);
        let peers = BTreeMap::from([("node-a".to_string(), listener.addr())]);
        let report = catch_up_from_peers(
            "node-b",
            &members,
            &peers,
            &joiner_store,
            &CatchupOptions::default(),
        );
        assert!(report.completed());

        // With two members every key's replica pair is (owner, other), so
        // node-b backs everything: the full store must have streamed over.
        assert_eq!(report.records_applied(), 32);
        assert_eq!(joiner_store.len(), 32);
        assert_eq!(listener.served(), 32);
        for i in 0..32u32 {
            assert!(joiner_store
                .verify(&sys, &format!("user{i}"), &clicks(i))
                .unwrap());
        }
        listener.shutdown();
    }

    /// The abort hook leaves a consistent prefix; the retry replays the
    /// stream idempotently and completes.
    #[test]
    fn interrupted_catch_up_replays_idempotently() {
        let sys = system();
        let members: Vec<String> = vec!["node-a".into(), "node-b".into()];
        let peer_store = Arc::new(ShardedPasswordStore::new(2));
        for i in 0..16u32 {
            let record = sys.enroll(&format!("user{i}"), &clicks(i)).unwrap();
            peer_store.insert(record).unwrap();
        }
        let mut listener = spawn_replication_listener("node-a", Arc::clone(&peer_store)).unwrap();
        let peers = BTreeMap::from([("node-a".to_string(), listener.addr())]);
        let joiner_store = ShardedPasswordStore::new(2);

        let aborted = catch_up_from_peers(
            "node-b",
            &members,
            &peers,
            &joiner_store,
            &CatchupOptions {
                abort_after_records: Some(5),
                ..CatchupOptions::default()
            },
        );
        assert!(!aborted.completed(), "an aborted stream is not caught-up");
        assert_eq!(aborted.records_applied(), 5);
        assert_eq!(joiner_store.len(), 5, "prefix applied, nothing torn");

        let retried = catch_up_from_peers(
            "node-b",
            &members,
            &peers,
            &joiner_store,
            &CatchupOptions::default(),
        );
        assert!(retried.completed());
        assert_eq!(joiner_store.len(), 16, "replay converges to the full set");
        listener.shutdown();
    }

    /// A peer with nothing listening yields an incomplete (not panicking,
    /// not half-counted) report.
    #[test]
    fn catch_up_from_a_dead_peer_reports_incomplete() {
        let dead_addr = TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        let members: Vec<String> = vec!["node-a".into(), "node-b".into()];
        let peers = BTreeMap::from([("node-a".to_string(), dead_addr)]);
        let store = ShardedPasswordStore::new(2);
        let report = catch_up_from_peers(
            "node-b",
            &members,
            &peers,
            &store,
            &CatchupOptions::default(),
        );
        assert!(!report.completed());
        assert_eq!(report.records_applied(), 0);
        assert_eq!(report.peers.len(), 1);
    }

    /// One anti-entropy round repairs divergence in both directions: the
    /// primary pushes records the backup lost and pulls records written
    /// while the primary was away.
    #[test]
    fn anti_entropy_round_repairs_divergence_both_ways() {
        let sys = system();
        let primary_store = Arc::new(ShardedPasswordStore::new(2));
        let backup_store = Arc::new(ShardedPasswordStore::new(2));
        // The primary's round checks only the range it *owns* (each node
        // repairs its own ranges; the peer's round covers the reverse
        // direction), so pick usernames deterministically owned by it.
        let ring = HashRing::with_nodes(["primary", "backup"]);
        let mine: Vec<String> = (0..64u32)
            .map(|i| format!("user{i}"))
            .filter(|name| ring.owner(name) == Some("primary"))
            .take(13)
            .collect();
        assert_eq!(mine.len(), 13, "64 candidates must yield 13 owned names");
        // Shared base: both sides hold it.
        for (i, name) in mine.iter().take(12).enumerate() {
            let record = sys.enroll(name, &clicks(i as u32)).unwrap();
            primary_store.insert(record.clone()).unwrap();
            backup_store.insert(record).unwrap();
        }
        // Divergence: the backup lost one record, and holds one record
        // the primary never saw (written while the primary was away).
        let lost = &mine[2];
        let late = &mine[12];
        assert!(backup_store.remove(lost).unwrap(), "record was present");
        let unseen = sys.enroll(late, &clicks(77)).unwrap();
        backup_store.insert(unseen).unwrap();

        let mut listener = spawn_replication_listener("backup", Arc::clone(&backup_store)).unwrap();
        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());

        let round = replicator.anti_entropy_round(&primary_store);
        assert_eq!(round.ranges_checked, 1);
        assert_eq!(round.ranges_divergent, 1);
        assert!(round.failed_peers.is_empty());
        assert!(round.records_pushed >= 1, "the lost record must be pushed");
        assert!(round.records_pulled >= 1, "the late record must be pulled");

        // Both sides now agree record-for-record.
        assert!(backup_store.get(lost).is_some());
        assert!(primary_store.get(late).is_some());
        assert_eq!(
            primary_store.range_digest(|_| true),
            backup_store.range_digest(|_| true)
        );

        // A second round finds nothing to do.
        let quiet = replicator.anti_entropy_round(&primary_store);
        assert_eq!(quiet.ranges_divergent, 0);
        let stats = replicator.replication_stats();
        assert_eq!(stats.anti_entropy_rounds, 2);
        assert_eq!(stats.ranges_checked, 2);
        assert_eq!(stats.ranges_divergent, 1);
        assert_eq!(stats.sync_failures, 0);
        listener.shutdown();
    }

    /// Anti-entropy against an unreachable peer skips it (sync_failures)
    /// without evicting it from the ring.
    #[test]
    fn anti_entropy_skips_unreachable_peers_without_eviction() {
        let dead_addr = TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap();
        let peers = BTreeMap::from([("backup".to_string(), dead_addr)]);
        let replicator = Replicator::new("primary", peers, ReplicatorConfig::default());
        let store = ShardedPasswordStore::new(2);
        let round = replicator.anti_entropy_round(&store);
        assert_eq!(round.failed_peers, vec!["backup".to_string()]);
        assert!(
            replicator.is_live("backup"),
            "anti-entropy must never evict"
        );
        assert_eq!(replicator.replication_stats().sync_failures, 1);
    }

    /// The background thread runs rounds on its own and stops cleanly.
    #[test]
    fn spawned_anti_entropy_thread_runs_and_shuts_down() {
        let backup_store = Arc::new(ShardedPasswordStore::new(2));
        let mut listener = spawn_replication_listener("backup", Arc::clone(&backup_store)).unwrap();
        let peers = BTreeMap::from([("backup".to_string(), listener.addr())]);
        let replicator = Arc::new(Replicator::new(
            "primary",
            peers,
            ReplicatorConfig::default(),
        ));
        let primary_store = Arc::new(ShardedPasswordStore::new(2));
        let mut handle = spawn_anti_entropy(
            Arc::clone(&replicator),
            Arc::clone(&primary_store),
            Duration::from_millis(20),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while replicator.replication_stats().anti_entropy_rounds < 2 {
            assert!(Instant::now() < deadline, "rounds never ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
        let after = replicator.replication_stats().anti_entropy_rounds;
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(
            replicator.replication_stats().anti_entropy_rounds,
            after,
            "no rounds after shutdown"
        );
        listener.shutdown();
    }
}
